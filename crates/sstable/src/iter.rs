//! Whole-table iteration in internal-key order.
//!
//! Tiles are visited in fence order; within a tile the pages (which
//! overlap in sort-key space when `h > 1`) are merged with a small
//! linear-scan tournament — `h` is tens at most, so a heap would cost
//! more than it saves. Pages whose dkey band is covered by a supplied
//! range tombstone are *dropped*: never read, counted in
//! [`Table::counters`](crate::reader::ReadCounters).

use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

use acheron_types::key::{compare_internal, InternalKeyRef};
use acheron_types::{Entry, RangeTombstone, Result};
use bytes::Bytes;

use crate::block::BlockIter;
use crate::reader::{entry_from_parts, Table};

/// Iterator over every live entry of a table.
pub struct TableIterator {
    table: Arc<Table>,
    rts: Vec<RangeTombstone>,
    tile_idx: usize,
    /// Block cursors for the current tile's live pages.
    active: Vec<BlockIter>,
    /// Index into `active` of the smallest current key.
    current: Option<usize>,
    /// Admit pages read by this iterator to the block cache. One-pass
    /// readers (compaction) iterate with `false` so a bulk merge never
    /// evicts the point-read working set.
    fill_cache: bool,
}

impl TableIterator {
    pub(crate) fn new(
        table: Arc<Table>,
        rts: Vec<RangeTombstone>,
        fill_cache: bool,
    ) -> TableIterator {
        TableIterator {
            table,
            rts,
            tile_idx: 0,
            active: Vec::new(),
            current: None,
            fill_cache,
        }
    }

    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Position at the first entry of the table.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.tile_idx = 0;
        self.load_tile_from_start()?;
        Ok(())
    }

    /// Position at the first entry with internal key `>= target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        match self.table.find_tile(target) {
            None => {
                self.active.clear();
                self.current = None;
                self.tile_idx = self.table.tiles().len();
                Ok(())
            }
            Some(idx) => {
                self.tile_idx = idx;
                self.open_tile(idx, Some(target))?;
                if self.current.is_none() {
                    // Everything in the fence tile was below target only
                    // if pages were dropped; fall through to the next.
                    self.tile_idx += 1;
                    self.load_tile_from_start()?;
                }
                Ok(())
            }
        }
    }

    /// Advance to the next entry.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Result<()> {
        let cur = self.current.expect("next() on invalid iterator");
        self.active[cur].next()?;
        if !self.active[cur].valid() {
            self.active.swap_remove(cur);
        }
        self.pick_current();
        if self.current.is_none() {
            self.tile_idx += 1;
            self.load_tile_from_start()?;
        }
        Ok(())
    }

    /// The current internal key.
    pub fn key(&self) -> &[u8] {
        self.active[self.current.expect("key() on invalid iterator")].key()
    }

    /// The current entry's secondary delete key.
    pub fn dkey(&self) -> u64 {
        self.active[self.current.expect("dkey() on invalid iterator")].dkey()
    }

    /// The current value.
    pub fn value(&self) -> &Bytes {
        self.active[self.current.expect("value() on invalid iterator")].value()
    }

    /// Materialize the current position as an [`Entry`].
    pub fn entry(&self) -> Result<Entry> {
        let key = InternalKeyRef::decode(self.key())
            .ok_or_else(|| acheron_types::Error::corruption("short key in table iterator"))?;
        entry_from_parts(key, self.dkey(), self.value().clone())
    }

    /// Starting at `self.tile_idx`, open the first tile that yields an
    /// entry (tiles can come up empty when all pages are dropped).
    fn load_tile_from_start(&mut self) -> Result<()> {
        loop {
            if self.tile_idx >= self.table.tiles().len() {
                self.active.clear();
                self.current = None;
                return Ok(());
            }
            self.open_tile(self.tile_idx, None)?;
            if self.current.is_some() {
                return Ok(());
            }
            self.tile_idx += 1;
        }
    }

    /// Open tile `idx`, positioning each live page at `target` (or its
    /// first entry), and pick the smallest.
    ///
    /// Drop soundness (newest-version-decides semantics):
    ///
    /// * **single-version tiles** (no key has two versions in the tile)
    ///   drop covered pages *individually* — removing an entry can never
    ///   expose an in-tile sibling version, because there is none;
    /// * **multi-version tiles** drop only *tile-atomically* (every page
    ///   covered) — dropping one page could remove a key's newest
    ///   version while an uncovered older version survives in a sibling
    ///   page and would wrongly decide reads.
    ///
    /// Tiles are cut at user-key boundaries by the builder, so a dropped
    /// tile takes every in-file version of its keys with it.
    fn open_tile(&mut self, idx: usize, target: Option<&[u8]>) -> Result<()> {
        self.active.clear();
        self.current = None;
        let tile = &self.table.tiles()[idx];
        if !self.rts.is_empty()
            && tile.multi_version
            && tile
                .pages
                .iter()
                .all(|p| Table::page_droppable(p, &self.rts))
        {
            self.table
                .counters
                .pages_dropped
                .fetch_add(tile.pages.len() as u64, AtomicOrdering::Relaxed);
            return Ok(());
        }
        for page in &tile.pages {
            if !tile.multi_version && Table::page_droppable(page, &self.rts) {
                self.table
                    .counters
                    .pages_dropped
                    .fetch_add(1, AtomicOrdering::Relaxed);
                continue;
            }
            let block = self.table.read_page_opts(page.handle, self.fill_cache)?;
            let mut it = block.iter();
            match target {
                Some(t) => it.seek(t)?,
                None => it.seek_to_first()?,
            }
            if it.valid() {
                self.active.push(it);
            }
        }
        self.pick_current();
        Ok(())
    }

    fn pick_current(&mut self) {
        self.current = self
            .active
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| compare_internal(a.key(), b.key()))
            .map(|(i, _)| i);
    }

    /// Collect every remaining entry (test/bench convenience).
    pub fn drain(&mut self) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        while self.valid() {
            out.push(self.entry()?);
            self.next()?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TableOptions;
    use crate::writer::TableBuilder;
    use acheron_types::{DeleteKeyRange, InternalKey};
    use acheron_vfs::{MemFs, Vfs};

    fn build(entries: &[Entry], opts: TableOptions) -> Arc<Table> {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, opts).unwrap();
        for e in entries {
            b.add(e).unwrap();
        }
        b.finish().unwrap();
        Table::open(fs.open("t.sst").unwrap()).unwrap()
    }

    fn dataset(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                Entry::put(
                    format!("key{i:05}").into_bytes(),
                    format!("v{i}").into_bytes(),
                    1000 + i as u64,
                    (i % 64) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        for h in [1usize, 2, 8] {
            let entries = dataset(600);
            let opts = TableOptions {
                pages_per_tile: h,
                page_size: 256,
                ..Default::default()
            };
            let table = build(&entries, opts);
            let mut it = table.iter(vec![]);
            it.seek_to_first().unwrap();
            let got = it.drain().unwrap();
            assert_eq!(got.len(), entries.len(), "h={h}");
            assert_eq!(got, entries, "h={h}: scan must be in internal-key order");
        }
    }

    #[test]
    fn seek_positions_mid_table() {
        let entries = dataset(300);
        let opts = TableOptions {
            pages_per_tile: 4,
            page_size: 256,
            ..Default::default()
        };
        let table = build(&entries, opts);
        let mut it = table.iter(vec![]);
        let target = InternalKey::for_seek(b"key00150", u64::MAX >> 8);
        it.seek(target.encoded()).unwrap();
        assert!(it.valid());
        let got = it.drain().unwrap();
        assert_eq!(got.len(), 150);
        assert_eq!(&got[0].key[..], b"key00150");
    }

    #[test]
    fn seek_past_end_is_invalid() {
        let entries = dataset(10);
        let table = build(&entries, TableOptions::default());
        let mut it = table.iter(vec![]);
        it.seek(InternalKey::for_seek(b"zzz", 1).encoded()).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn empty_table_iterates_nothing() {
        let table = build(&[], TableOptions::default());
        let mut it = table.iter(vec![]);
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn fully_covered_tiles_are_dropped_from_scan() {
        let entries = dataset(600);
        let opts = TableOptions {
            pages_per_tile: 8,
            page_size: 256,
            ..Default::default()
        };
        let table = build(&entries, opts);
        // Covers every dkey in the dataset (0..63): every page of every
        // tile is covered, so whole tiles drop.
        let rt = RangeTombstone {
            seqno: u64::MAX >> 8,
            range: DeleteKeyRange::new(0, 63),
        };
        let mut it = table.iter(vec![rt]);
        it.seek_to_first().unwrap();
        let got = it.drain().unwrap();
        let dropped = table.counters.pages_dropped.load(AtomicOrdering::Relaxed);
        assert!(got.is_empty(), "every entry is covered");
        assert_eq!(
            dropped,
            table.stats().page_count,
            "all pages must be dropped without being read"
        );
    }

    #[test]
    fn single_version_tiles_drop_covered_pages_individually() {
        // Every key has exactly one version, so per-page drops are sound
        // and partial coverage reclaims the covered pages.
        let entries = dataset(600);
        let opts = TableOptions {
            pages_per_tile: 8,
            page_size: 256,
            ..Default::default()
        };
        let table = build(&entries, opts);
        let rt = RangeTombstone {
            seqno: u64::MAX >> 8,
            range: DeleteKeyRange::new(0, 31),
        };
        let mut it = table.iter(vec![rt]);
        it.seek_to_first().unwrap();
        let got = it.drain().unwrap();
        let dropped = table.counters.pages_dropped.load(AtomicOrdering::Relaxed);
        assert!(
            dropped > 0,
            "covered pages of single-version tiles must drop"
        );
        assert!(got.len() < entries.len());
        // Nothing uncovered may be lost.
        for e in entries.iter().filter(|e| e.dkey > 31) {
            assert!(got.iter().any(|g| g.key == e.key), "lost {:?}", e.key);
        }
    }

    #[test]
    fn multi_version_tiles_drop_only_atomically() {
        // Two versions per key: per-page drops would be unsound, so a
        // partially covered tile must be read in full.
        let mut entries = Vec::new();
        for i in 0..300usize {
            entries.push(Entry::put(
                format!("key{i:05}").into_bytes(),
                b"new".to_vec(),
                2_000 + i as u64,
                (i % 64) as u64,
            ));
            entries.push(Entry::put(
                format!("key{i:05}").into_bytes(),
                b"old".to_vec(),
                1_000 + i as u64,
                200 + (i % 64) as u64,
            ));
        }
        let opts = TableOptions {
            pages_per_tile: 8,
            page_size: 256,
            ..Default::default()
        };
        let table = build(&entries, opts);
        assert!(table.tiles().iter().any(|t| t.multi_version));
        // Covers the newer versions' dkey band only.
        let rt = RangeTombstone {
            seqno: u64::MAX >> 8,
            range: DeleteKeyRange::new(0, 63),
        };
        let mut it = table.iter(vec![rt]);
        it.seek_to_first().unwrap();
        let got = it.drain().unwrap();
        assert_eq!(
            table.counters.pages_dropped.load(AtomicOrdering::Relaxed),
            0,
            "partially covered multi-version tiles must not drop pages"
        );
        assert_eq!(got.len(), entries.len());
    }

    #[test]
    fn scan_with_h1_drops_nothing_partially() {
        // With h = 1 pages mix dkeys, so nothing is droppable unless the
        // tombstone covers the page's whole band.
        let entries = dataset(100);
        let table = build(&entries, TableOptions::default());
        let rt = RangeTombstone {
            seqno: u64::MAX >> 8,
            range: DeleteKeyRange::new(0, 10),
        };
        let mut it = table.iter(vec![rt]);
        it.seek_to_first().unwrap();
        let got = it.drain().unwrap();
        assert_eq!(
            got.len(),
            entries.len(),
            "partial coverage must not drop pages"
        );
    }

    #[test]
    fn interleaved_seeks_and_scans() {
        let entries = dataset(200);
        let opts = TableOptions {
            pages_per_tile: 2,
            page_size: 256,
            ..Default::default()
        };
        let table = build(&entries, opts);
        let mut it = table.iter(vec![]);
        for probe in [0usize, 199, 73, 100, 1] {
            let key = format!("key{probe:05}");
            it.seek(InternalKey::for_seek(key.as_bytes(), u64::MAX >> 8).encoded())
                .unwrap();
            assert!(it.valid(), "probe {probe}");
            assert_eq!(it.entry().unwrap().key, entries[probe].key);
        }
    }
}
