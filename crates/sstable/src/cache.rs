//! A sharded LRU cache for decoded data pages.
//!
//! Keyed by `(table cache-id, page offset)`. Tables get a process-unique
//! cache id at open, so reusing file numbers across databases cannot
//! alias. Sharding (16 ways by key hash) keeps lock contention off the
//! read path; within a shard, recency is tracked with a monotone
//! generation counter and a `BTreeMap<generation, key>` index — O(log n)
//! per touch, no unsafe linked lists.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::block::Block;

const SHARDS: usize = 16;

/// Key of one cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// The owning table's process-unique cache id.
    pub table: u64,
    /// Byte offset of the page within its file.
    pub offset: u64,
}

struct Shard {
    map: HashMap<PageKey, (Block, u64, usize)>,
    lru: BTreeMap<u64, PageKey>,
    bytes: usize,
    capacity: usize,
}

impl Shard {
    fn get(&mut self, key: &PageKey, generation: u64) -> Option<Block> {
        let (block, gen_slot, _) = self.map.get_mut(key)?;
        let old = *gen_slot;
        *gen_slot = generation;
        let block = block.clone();
        self.lru.remove(&old);
        self.lru.insert(generation, *key);
        Some(block)
    }

    fn insert(&mut self, key: PageKey, block: Block, size: usize, generation: u64) {
        if size > self.capacity {
            return; // larger than the whole shard: not cacheable
        }
        if let Some((_, old_gen, old_size)) = self.map.remove(&key) {
            self.lru.remove(&old_gen);
            self.bytes -= old_size;
        }
        self.map.insert(key, (block, generation, size));
        self.lru.insert(generation, key);
        self.bytes += size;
        while self.bytes > self.capacity {
            let (&victim_gen, &victim_key) =
                self.lru.iter().next().expect("bytes > 0 implies entries");
            self.lru.remove(&victim_gen);
            let (_, _, victim_size) = self.map.remove(&victim_key).expect("lru and map in sync");
            self.bytes -= victim_size;
        }
    }
}

/// A byte-bounded LRU over decoded pages, shared by all tables of a
/// database.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BlockCache {
    /// A cache bounded by `capacity_bytes` (split evenly across shards).
    pub fn new(capacity_bytes: usize) -> BlockCache {
        let per_shard = (capacity_bytes / SHARDS).max(1);
        BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        lru: BTreeMap::new(),
                        bytes: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &PageKey) -> &Mutex<Shard> {
        // Cheap mix of table and offset; offsets are page-aligned-ish so
        // fold the high bits in.
        let h = key
            .table
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.offset >> 6);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Look up a page.
    pub fn get(&self, key: &PageKey) -> Option<Block> {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed);
        let got = self.shard_of(key).lock().get(key, generation);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Insert a page of `size` bytes.
    pub fn insert(&self, key: PageKey, block: Block, size: usize) {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed);
        self.shard_of(&key)
            .lock()
            .insert(key, block, size, generation);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total cached bytes (approximate across shards).
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }
}

/// Allocate a process-unique table cache id.
pub fn next_table_cache_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use acheron_types::{InternalKey, ValueKind};
    use bytes::Bytes;

    fn block(tag: u8) -> (Block, usize) {
        let mut b = BlockBuilder::new(4);
        let ik = InternalKey::new(&[tag], 1, ValueKind::Put);
        b.add(ik.encoded(), 0, &[tag; 100]);
        let raw = b.finish();
        let size = raw.len();
        (Block::new(Bytes::from(raw)).unwrap(), size)
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        assert!(cache.get(&key).is_none());
        let (b, size) = block(7);
        cache.insert(key, b, size);
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_tables_do_not_alias() {
        let cache = BlockCache::new(1 << 20);
        let (b, size) = block(1);
        cache.insert(
            PageKey {
                table: 1,
                offset: 64,
            },
            b,
            size,
        );
        assert!(cache
            .get(&PageKey {
                table: 2,
                offset: 64
            })
            .is_none());
        assert!(cache
            .get(&PageKey {
                table: 1,
                offset: 64
            })
            .is_some());
    }

    #[test]
    fn eviction_is_lru() {
        // Single-shard-sized cache: keep it deterministic by using keys
        // that land in the same shard (same table, offsets multiple of
        // 64 * SHARDS so the shard index matches).
        let cache = BlockCache::new(16 * 200); // per-shard capacity 200
        let base = PageKey {
            table: 3,
            offset: 0,
        };
        let stride = 64 * (SHARDS as u64); // same shard for all keys
        let (b, size) = block(0);
        assert!(
            size > 100 && size < 200,
            "one block fits, two must overflow a shard: {size}"
        );
        cache.insert(base, b, size);
        let second = PageKey {
            table: 3,
            offset: stride,
        };
        let (b2, s2) = block(1);
        // Touch the first so it is most-recent, then insert a second
        // that overflows the shard; only one of them can remain.
        cache.get(&base);
        cache.insert(second, b2, s2);
        assert!(
            cache.get(&base).is_some() ^ cache.get(&second).is_some(),
            "exactly one of the two blocks fits"
        );
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = BlockCache::new(16); // per-shard capacity 1
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        let (b, size) = block(9);
        cache.insert(key, b, size);
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting() {
        let cache = BlockCache::new(1 << 20);
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        let (b1, s1) = block(1);
        let (b2, s2) = block(2);
        cache.insert(key, b1, s1);
        cache.insert(key, b2, s2);
        assert_eq!(cache.used_bytes(), s2);
        let got = cache.get(&key).unwrap();
        let mut it = got.iter();
        it.seek_to_first().unwrap();
        assert_eq!(&it.value()[..], &[2u8; 100][..]);
    }

    #[test]
    fn unique_ids_are_unique() {
        let a = next_table_cache_id();
        let b = next_table_cache_id();
        assert_ne!(a, b);
    }
}
