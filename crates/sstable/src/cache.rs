//! A sharded, scan-resistant page cache for decoded data pages.
//!
//! Keyed by `(table cache-id, page offset)`. Tables get a process-unique
//! cache id at open, so reusing file numbers across databases cannot
//! alias. Sharding (16 ways by key hash) keeps lock contention off the
//! read path; within a shard, recency is an intrusive doubly-linked
//! list over a slab of nodes (indices, no unsafe) — O(1) per touch,
//! insert, and eviction.
//!
//! # Scan resistance
//!
//! Each shard runs a segmented LRU: new pages enter a *probation*
//! segment and are promoted to the *protected* segment (capped at
//! `PROTECTED_NUM`/`PROTECTED_DEN` of the shard) only on a repeat
//! hit. Evictions drain probation first, so a one-pass scan or a cold
//! compaction read stream churns through probation without displacing
//! the hot set that has proven itself with re-references. Overflowing
//! the protected cap demotes its tail back to probation rather than
//! evicting outright, preserving a second chance.
//!
//! # Dynamic resize
//!
//! [`BlockCache::resize`] retargets the byte budget at runtime and
//! evicts to fit immediately. The memory arbiter in `acheron-core`
//! uses this to shift budget between the write buffer and the cache
//! while the database is serving traffic; concurrent gets and inserts
//! see only a per-shard lock, never a global pause.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::block::Block;

const SHARDS: usize = 16;

/// Numerator of the protected segment's share of a shard's capacity.
const PROTECTED_NUM: usize = 4;
/// Denominator of the protected segment's share of a shard's capacity.
const PROTECTED_DEN: usize = 5;

/// Sentinel index terminating an intrusive list.
const NIL: u32 = u32::MAX;

/// Key of one cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// The owning table's process-unique cache id.
    pub table: u64,
    /// Byte offset of the page within its file.
    pub offset: u64,
}

/// Which recency segment a node currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// One slab slot: a cached page threaded into its segment's list.
struct Node {
    key: PageKey,
    /// `None` while the slot sits on the free list.
    block: Option<Block>,
    size: usize,
    prev: u32,
    next: u32,
    seg: Segment,
}

/// Head/tail of one intrusive list plus its byte accounting.
struct List {
    head: u32,
    tail: u32,
    bytes: usize,
}

impl List {
    fn new() -> List {
        List {
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }
}

/// Eviction work done inside one shard call, reported back so the
/// cache-wide counters can be bumped outside the shard lock.
#[derive(Default, Clone, Copy)]
struct Evicted {
    count: u64,
    bytes: u64,
}

struct Shard {
    map: HashMap<PageKey, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    probation: List,
    protected: List,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            probation: List::new(),
            protected: List::new(),
            capacity,
        }
    }

    fn bytes(&self) -> usize {
        self.probation.bytes + self.protected.bytes
    }

    fn protected_cap(&self) -> usize {
        self.capacity / PROTECTED_DEN * PROTECTED_NUM
    }

    fn list_mut(&mut self, seg: Segment) -> &mut List {
        match seg {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    /// Detach `idx` from whichever list holds it.
    fn unlink(&mut self, idx: u32) {
        let (prev, next, seg, size) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next, n.seg, n.size)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.list_mut(seg).head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.list_mut(seg).tail = prev;
        }
        self.list_mut(seg).bytes -= size;
    }

    /// Attach `idx` at the MRU end of `seg`.
    fn push_front(&mut self, idx: u32, seg: Segment) {
        let size = self.nodes[idx as usize].size;
        let old_head = self.list_mut(seg).head;
        {
            let n = &mut self.nodes[idx as usize];
            n.seg = seg;
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        }
        let list = self.list_mut(seg);
        list.head = idx;
        if list.tail == NIL {
            list.tail = idx;
        }
        list.bytes += size;
    }

    /// Return `idx` to the free list.
    fn release(&mut self, idx: u32) {
        let n = &mut self.nodes[idx as usize];
        n.block = None;
        n.size = 0;
        self.free.push(idx);
    }

    /// Evict one page — probation tail first, protected tail only when
    /// probation is empty. Returns the bytes freed (0 means empty).
    fn evict_one(&mut self) -> usize {
        let victim = if self.probation.tail != NIL {
            self.probation.tail
        } else if self.protected.tail != NIL {
            self.protected.tail
        } else {
            return 0;
        };
        let (key, size) = {
            let n = &self.nodes[victim as usize];
            (n.key, n.size)
        };
        self.unlink(victim);
        self.map.remove(&key);
        self.release(victim);
        size
    }

    /// Evict until the shard fits its capacity (plus `incoming` bytes
    /// about to be inserted).
    fn evict_to_fit(&mut self, incoming: usize) -> Evicted {
        let mut ev = Evicted::default();
        while self.bytes() + incoming > self.capacity {
            let freed = self.evict_one();
            if freed == 0 {
                break;
            }
            ev.count += 1;
            ev.bytes += freed as u64;
        }
        ev
    }

    fn get(&mut self, key: &PageKey) -> Option<Block> {
        let idx = *self.map.get(key)?;
        let block = self.nodes[idx as usize]
            .block
            .clone()
            .expect("mapped node holds a block");
        // A repeat reference earns protection; a protected hit just
        // refreshes recency. Either way the touch is O(1) list surgery.
        self.unlink(idx);
        self.push_front(idx, Segment::Protected);
        // Keep the protected segment inside its cap by demoting its
        // tail — a second chance in probation, not an eviction.
        while self.protected.bytes > self.protected_cap()
            && self.protected.tail != self.protected.head
        {
            let tail = self.protected.tail;
            self.unlink(tail);
            self.push_front(tail, Segment::Probation);
        }
        Some(block)
    }

    fn insert(&mut self, key: PageKey, block: Block, size: usize) -> Evicted {
        if size > self.capacity {
            return Evicted::default(); // larger than the whole shard: not cacheable
        }
        if let Some(&old) = self.map.get(&key) {
            self.unlink(old);
            self.map.remove(&key);
            self.release(old);
        }
        let ev = self.evict_to_fit(size);
        let idx = match self.free.pop() {
            Some(i) => {
                let n = &mut self.nodes[i as usize];
                n.key = key;
                n.block = Some(block);
                n.size = size;
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node {
                    key,
                    block: Some(block),
                    size,
                    prev: NIL,
                    next: NIL,
                    seg: Segment::Probation,
                });
                i
            }
        };
        self.map.insert(key, idx);
        // New pages start on probation; only a repeat hit promotes.
        self.push_front(idx, Segment::Probation);
        ev
    }

    fn resize(&mut self, capacity: usize) -> Evicted {
        self.capacity = capacity;
        let mut ev = self.evict_to_fit(0);
        // Entries that fit the old shard but exceed the new one linger
        // until evicted; a too-small protected cap self-corrects on the
        // next hit. Nothing else to do eagerly.
        if self.bytes() > self.capacity {
            // Capacity below the smallest resident entry: drop all.
            while self.bytes() > 0 {
                let freed = self.evict_one();
                ev.count += 1;
                ev.bytes += freed as u64;
            }
        }
        ev
    }
}

/// A byte-bounded, scan-resistant page cache shared by all tables of a
/// database — or, under sharded deployments, by the whole fleet (the
/// budget is global, not per shard-database).
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    inserted_bytes: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity.load(Ordering::Relaxed))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BlockCache {
    /// A cache bounded by `capacity_bytes` (split evenly across shards).
    pub fn new(capacity_bytes: usize) -> BlockCache {
        let per_shard = (capacity_bytes / SHARDS).max(1);
        BlockCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            capacity: AtomicUsize::new(capacity_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            inserted_bytes: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &PageKey) -> &Mutex<Shard> {
        // Cheap mix of table and offset; offsets are page-aligned-ish so
        // fold the high bits in.
        let h = key
            .table
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.offset >> 6);
        &self.shards[(h as usize) % SHARDS]
    }

    fn record_evicted(&self, ev: Evicted) {
        if ev.count > 0 {
            self.evictions.fetch_add(ev.count, Ordering::Relaxed);
            self.evicted_bytes.fetch_add(ev.bytes, Ordering::Relaxed);
        }
    }

    /// Look up a page.
    pub fn get(&self, key: &PageKey) -> Option<Block> {
        let got = self.shard_of(key).lock().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Insert a page of `size` bytes.
    pub fn insert(&self, key: PageKey, block: Block, size: usize) {
        let ev = self.shard_of(&key).lock().insert(key, block, size);
        self.inserted_bytes
            .fetch_add(size as u64, Ordering::Relaxed);
        self.record_evicted(ev);
    }

    /// Retarget the total byte budget and evict to fit. Safe to call
    /// while the cache is serving traffic: each shard resizes under its
    /// own lock, so readers at most wait one shard's eviction sweep.
    pub fn resize(&self, capacity_bytes: usize) {
        self.capacity.store(capacity_bytes, Ordering::Relaxed);
        let per_shard = (capacity_bytes / SHARDS).max(1);
        for shard in &self.shards {
            let ev = shard.lock().resize(per_shard);
            self.record_evicted(ev);
        }
    }

    /// The current total byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages evicted so far (capacity pressure, not replacement).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes evicted so far.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Bytes inserted so far (admitted or not; oversized pages count as
    /// offered work on the fill path).
    pub fn inserted_bytes(&self) -> u64 {
        self.inserted_bytes.load(Ordering::Relaxed)
    }

    /// Total cached bytes (approximate across shards).
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes()).sum()
    }
}

/// Allocate a process-unique table cache id.
pub fn next_table_cache_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use acheron_types::{InternalKey, ValueKind};
    use bytes::Bytes;

    fn block(tag: u8) -> (Block, usize) {
        let mut b = BlockBuilder::new(4);
        let ik = InternalKey::new(&[tag], 1, ValueKind::Put);
        b.add(ik.encoded(), 0, &[tag; 100]);
        let raw = b.finish();
        let size = raw.len();
        (Block::new(Bytes::from(raw)).unwrap(), size)
    }

    /// Keys guaranteed to land in one shard: same table, offsets strided
    /// by `64 * SHARDS` so the shard index is identical.
    fn same_shard_key(table: u64, i: u64) -> PageKey {
        PageKey {
            table,
            offset: i * 64 * (SHARDS as u64),
        }
    }

    #[test]
    fn hit_and_miss() {
        let cache = BlockCache::new(1 << 20);
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        assert!(cache.get(&key).is_none());
        let (b, size) = block(7);
        cache.insert(key, b, size);
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.inserted_bytes(), size as u64);
    }

    #[test]
    fn distinct_tables_do_not_alias() {
        let cache = BlockCache::new(1 << 20);
        let (b, size) = block(1);
        cache.insert(
            PageKey {
                table: 1,
                offset: 64,
            },
            b,
            size,
        );
        assert!(cache
            .get(&PageKey {
                table: 2,
                offset: 64
            })
            .is_none());
        assert!(cache
            .get(&PageKey {
                table: 1,
                offset: 64
            })
            .is_some());
    }

    #[test]
    fn eviction_prefers_cold_entries() {
        // Single-shard-sized cache: keep it deterministic by using keys
        // that land in the same shard.
        let cache = BlockCache::new(16 * 200); // per-shard capacity 200
        let base = same_shard_key(3, 0);
        let (b, size) = block(0);
        assert!(
            size > 100 && size < 200,
            "one block fits, two must overflow a shard: {size}"
        );
        cache.insert(base, b, size);
        let second = same_shard_key(3, 1);
        let (b2, s2) = block(1);
        // Touch the first so it is most-recent, then insert a second
        // that overflows the shard; only one of them can remain.
        cache.get(&base);
        cache.insert(second, b2, s2);
        assert!(
            cache.get(&base).is_some() ^ cache.get(&second).is_some(),
            "exactly one of the two blocks fits"
        );
        assert!(cache.evictions() >= 1);
        assert!(cache.evicted_bytes() >= size.min(s2) as u64);
    }

    #[test]
    fn repeat_hits_survive_a_cold_scan() {
        // Scan resistance: a page with repeat hits sits in the protected
        // segment, and a one-pass stream of cold pages (each inserted
        // and never touched again) churns probation without displacing
        // it.
        let (b, size) = block(0);
        let cache = BlockCache::new(16 * (size * 4)); // shard holds ~4 blocks
        let hot = same_shard_key(5, 0);
        cache.insert(hot, b, size);
        assert!(cache.get(&hot).is_some(), "promote to protected");
        for i in 1..50u64 {
            let (cold, s) = block((i % 250) as u8);
            cache.insert(same_shard_key(5, i), cold, s);
        }
        assert!(
            cache.get(&hot).is_some(),
            "a 50-block cold scan must not evict the re-referenced page"
        );
    }

    #[test]
    fn resize_evicts_to_fit() {
        let (_b, size) = block(0);
        let cache = BlockCache::new(16 * (size * 8));
        for i in 0..8u64 {
            let (blk, s) = block(i as u8);
            cache.insert(same_shard_key(7, i), blk, s);
        }
        let before = cache.used_bytes();
        assert!(before >= size * 8);
        cache.resize(16 * (size * 2));
        assert!(
            cache.used_bytes() <= cache.capacity_bytes(),
            "resize must evict to fit: {} used vs {} capacity",
            cache.used_bytes(),
            cache.capacity_bytes()
        );
        assert!(cache.evictions() >= 6);
        // Growing back does not resurrect evicted pages.
        cache.resize(16 * (size * 8));
        assert!(cache.used_bytes() <= size * 2 * 16);
        // And the cache still works.
        let (blk, s) = block(42);
        let key = same_shard_key(7, 99);
        cache.insert(key, blk, s);
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = BlockCache::new(16); // per-shard capacity 1
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        let (b, size) = block(9);
        cache.insert(key, b, size);
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting() {
        let cache = BlockCache::new(1 << 20);
        let key = PageKey {
            table: 1,
            offset: 0,
        };
        let (b1, s1) = block(1);
        let (b2, s2) = block(2);
        cache.insert(key, b1, s1);
        cache.insert(key, b2, s2);
        assert_eq!(cache.used_bytes(), s2);
        let got = cache.get(&key).unwrap();
        let mut it = got.iter();
        it.seek_to_first().unwrap();
        assert_eq!(&it.value()[..], &[2u8; 100][..]);
    }

    #[test]
    fn accounting_stays_exact_under_churn() {
        // Slab reuse, promotion, demotion, and eviction must keep the
        // byte ledger exact: at quiescence, used == sum of live sizes.
        let (probe, size) = block(0);
        drop(probe);
        let cache = BlockCache::new(16 * (size * 3));
        for round in 0..20u64 {
            for i in 0..6u64 {
                let (blk, s) = block(((round * 6 + i) % 250) as u8);
                cache.insert(same_shard_key(9, i), blk, s);
                cache.get(&same_shard_key(9, (i + round) % 6));
            }
        }
        assert!(cache.used_bytes() <= cache.capacity_bytes());
        // Every resident key must still be readable.
        let mut live = 0;
        for i in 0..6u64 {
            if cache.get(&same_shard_key(9, i)).is_some() {
                live += 1;
            }
        }
        assert!(live >= 1, "churn must not empty the shard");
    }

    #[test]
    fn unique_ids_are_unique() {
        let a = next_table_cache_id();
        let b = next_table_cache_id();
        assert_ne!(a, b);
    }
}
