//! Table builder: buffers a tile's worth of sorted entries, *weaves*
//! them (re-orders the tile's pages by delete key), and streams pages to
//! the file.
//!
//! Input contract: entries arrive in strictly increasing internal-key
//! order (the order every flush/compaction source produces). The builder
//! cuts the stream into tiles of ~`pages_per_tile * page_size` bytes;
//! within a tile it sorts entries by delete key, packs them into pages,
//! and restores sort-key order *inside* each page. With
//! `pages_per_tile == 1` the weave is the identity and the output is a
//! classic SSTable.

use std::collections::BTreeMap;

use acheron_types::checksum;
use acheron_types::key::compare_internal;
use acheron_types::{
    Entry, Error, InternalKey, KeyRangeTombstone, Result, ValueKind, ValuePointer,
};
use acheron_vfs::WritableFile;
use bytes::Bytes;

use crate::block::BlockBuilder;
use crate::bloom::BloomFilter;
use crate::format::{BlockHandle, Footer, TableOptions, FORMAT_VERSION};
use crate::meta::{encode_tiles, PageMeta, TableStats, TileMeta, VlogRef};

struct PendingEntry {
    ikey: Vec<u8>,
    dkey: u64,
    value: Bytes,
    is_tombstone: bool,
}

impl PendingEntry {
    fn payload_size(&self) -> usize {
        self.ikey.len() + self.value.len() + 16
    }
}

/// Streams sorted entries into an Acheron table file.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    opts: TableOptions,
    tile_buffer: Vec<PendingEntry>,
    tile_buffer_bytes: usize,
    tiles: Vec<TileMeta>,
    filter_buf: Vec<u8>,
    stats: TableStats,
    /// Per-segment (bytes, max frame end) accumulated from value
    /// pointers; folded into `stats.vlog_refs` at finish.
    vlog_refs: BTreeMap<u64, (u64, u64)>,
    last_ikey: Vec<u8>,
    offset: u64,
    finished: bool,
}

impl TableBuilder {
    /// Start building into `file` with the given options.
    pub fn new(file: Box<dyn WritableFile>, opts: TableOptions) -> Result<TableBuilder> {
        opts.validate()?;
        let stats = TableStats {
            min_dkey: u64::MAX,
            max_dkey: 0,
            min_seqno: u64::MAX,
            pages_per_tile: opts.pages_per_tile as u64,
            ..TableStats::default()
        };
        Ok(TableBuilder {
            file,
            opts,
            tile_buffer: Vec::new(),
            tile_buffer_bytes: 0,
            tiles: Vec::new(),
            filter_buf: Vec::new(),
            stats,
            vlog_refs: BTreeMap::new(),
            last_ikey: Vec::new(),
            offset: 0,
            finished: false,
        })
    }

    /// Append an entry. Must be called in strictly increasing
    /// internal-key order.
    pub fn add(&mut self, entry: &Entry) -> Result<()> {
        debug_assert!(!self.finished);
        let ikey = entry.internal_key().encoded().to_vec();
        if !self.last_ikey.is_empty()
            && compare_internal(&self.last_ikey, &ikey) != std::cmp::Ordering::Less
        {
            return Err(Error::invalid_argument(format!(
                "table entries out of order: {:?} then {:?}",
                InternalKey::decode(Bytes::copy_from_slice(&self.last_ikey)),
                entry.internal_key(),
            )));
        }
        self.last_ikey.clone_from(&ikey);

        // Table-wide stats.
        if self.stats.entry_count == 0 {
            self.stats.min_user_key = entry.key.clone();
        }
        self.stats.max_user_key = entry.key.clone();
        self.stats.entry_count += 1;
        if entry.is_tombstone() {
            self.stats.tombstone_count += 1;
            self.stats.oldest_tombstone_tick = Some(match self.stats.oldest_tombstone_tick {
                Some(t) => t.min(entry.dkey),
                None => entry.dkey,
            });
        }
        self.stats.min_dkey = self.stats.min_dkey.min(entry.dkey);
        self.stats.max_dkey = self.stats.max_dkey.max(entry.dkey);
        self.stats.user_bytes += (entry.key.len() + entry.value.len()) as u64;
        self.stats.max_seqno = self.stats.max_seqno.max(entry.seqno);
        self.stats.min_seqno = self.stats.min_seqno.min(entry.seqno);
        if entry.kind == ValueKind::ValuePointer {
            let ptr = ValuePointer::decode(&entry.value).ok_or_else(|| {
                Error::invalid_argument(format!(
                    "value-pointer entry for key {:?} has a malformed {}-byte pointer",
                    entry.key,
                    entry.value.len()
                ))
            })?;
            let slot = self.vlog_refs.entry(ptr.segment).or_insert((0, 0));
            slot.0 += u64::from(ptr.len);
            slot.1 = slot.1.max(ptr.end());
        }

        let pending = PendingEntry {
            ikey,
            dkey: entry.dkey,
            value: entry.value.clone(),
            is_tombstone: entry.is_tombstone(),
        };
        // Flush *before* the tile would exceed its budget, so a finished
        // tile never packs into more than `pages_per_tile` pages (modulo
        // single entries larger than a page). Tiles are additionally cut
        // only at user-key boundaries: a key's version chain never spans
        // tiles, which is what makes whole-tile drops sound.
        let budget = self.opts.page_size * self.opts.pages_per_tile;
        let user_key_boundary = self
            .tile_buffer
            .last()
            .is_none_or(|last| last.ikey[..last.ikey.len() - 8] != entry.key[..]);
        if !self.tile_buffer.is_empty()
            && user_key_boundary
            && self.tile_buffer_bytes + pending.payload_size() > budget
        {
            self.flush_tile()?;
        }
        self.tile_buffer_bytes += pending.payload_size();
        self.tile_buffer.push(pending);
        Ok(())
    }

    /// Entries added so far.
    pub fn entry_count(&self) -> u64 {
        self.stats.entry_count
    }

    /// Bytes written to the file so far (data pages only until finish).
    pub fn file_bytes(&self) -> u64 {
        self.offset + self.tile_buffer_bytes as u64
    }

    /// Weave and write out the buffered tile.
    fn flush_tile(&mut self) -> Result<()> {
        if self.tile_buffer.is_empty() {
            return Ok(());
        }
        // The fence is the largest internal key in the tile; entries
        // arrived sorted, so it is the last one buffered.
        let last_ikey = Bytes::copy_from_slice(&self.tile_buffer.last().expect("non-empty").ikey);

        let mut entries = std::mem::take(&mut self.tile_buffer);
        self.tile_buffer_bytes = 0;

        // Entries arrive in internal-key order, so multiple versions of a
        // user key are adjacent.
        let multi_version = entries
            .windows(2)
            .any(|w| w[0].ikey[..w[0].ikey.len() - 8] == w[1].ikey[..w[1].ikey.len() - 8]);

        // The weave: order the tile's entries by delete key so each page
        // covers a contiguous dkey band. Stable sort keeps the sort-key
        // order within equal dkeys, and is skipped entirely for h = 1
        // (one page — the band is the whole tile).
        if self.opts.pages_per_tile > 1 {
            entries.sort_by(|a, b| {
                a.dkey
                    .cmp(&b.dkey)
                    .then_with(|| compare_internal(&a.ikey, &b.ikey))
            });
        }

        // Greedily pack dkey-ordered entries into pages of ~page_size.
        let mut pages: Vec<Vec<PendingEntry>> = Vec::with_capacity(self.opts.pages_per_tile);
        let mut current: Vec<PendingEntry> = Vec::new();
        let mut current_bytes = 0usize;
        for e in entries {
            let sz = e.payload_size();
            if !current.is_empty() && current_bytes + sz > self.opts.page_size {
                pages.push(std::mem::take(&mut current));
                current_bytes = 0;
            }
            current_bytes += sz;
            current.push(e);
        }
        if !current.is_empty() {
            pages.push(current);
        }

        let mut page_metas = Vec::with_capacity(pages.len());
        for mut page in pages {
            // Restore sort-key order inside the page.
            page.sort_by(|a, b| compare_internal(&a.ikey, &b.ikey));

            let dkey_min = page.iter().map(|e| e.dkey).min().expect("non-empty page");
            let dkey_max = page.iter().map(|e| e.dkey).max().expect("non-empty page");
            let max_seqno = page
                .iter()
                .map(|e| {
                    InternalKey::decode(Bytes::copy_from_slice(&e.ikey))
                        .expect("valid ikey")
                        .seqno()
                })
                .max()
                .expect("non-empty page");
            let tombstone_count = page.iter().filter(|e| e.is_tombstone).count() as u64;

            let mut block = BlockBuilder::new(self.opts.restart_interval);
            for e in &page {
                block.add(&e.ikey, e.dkey, &e.value);
            }
            let handle = self.write_block(&block.finish())?;

            // Per-page Bloom filter over user keys.
            let (filter_offset, filter_len) = if self.opts.bloom_bits_per_key > 0 {
                let user_keys: Vec<&[u8]> =
                    page.iter().map(|e| &e.ikey[..e.ikey.len() - 8]).collect();
                let filter =
                    BloomFilter::build(user_keys.iter().copied(), self.opts.bloom_bits_per_key);
                let off = self.filter_buf.len() as u64;
                self.filter_buf.extend_from_slice(&filter.encode());
                (off, self.filter_buf.len() as u64 - off)
            } else {
                (0, 0)
            };

            page_metas.push(PageMeta {
                handle,
                dkey_min,
                dkey_max,
                max_seqno,
                entry_count: page.len() as u64,
                tombstone_count,
                filter_offset,
                filter_len,
            });
            self.stats.page_count += 1;
        }

        self.tiles.push(TileMeta {
            last_ikey,
            pages: page_metas,
            multi_version,
        });
        self.stats.tile_count += 1;
        Ok(())
    }

    /// Write raw block contents plus the `type | crc` trailer.
    fn write_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: contents.len() as u64,
        };
        self.file.append(contents)?;
        let mut trailer = [0u8; 5];
        trailer[0] = 0; // compression: none
        let crc = checksum::mask(checksum::extend(checksum::crc32c(contents), &trailer[..1]));
        trailer[1..].copy_from_slice(&crc.to_le_bytes());
        self.file.append(&trailer)?;
        self.offset += contents.len() as u64 + trailer.len() as u64;
        Ok(handle)
    }

    /// Attach the sort-key range tombstones this table carries; they are
    /// persisted in the stats block by [`TableBuilder::finish`]. The
    /// tombstone seqnos fold into the table's seqno span so recovery and
    /// retirement logic account for them — a table may carry range
    /// tombstones and zero entries.
    pub fn set_range_tombstones(&mut self, krts: Vec<KeyRangeTombstone>) {
        debug_assert!(!self.finished);
        for krt in &krts {
            self.stats.max_seqno = self.stats.max_seqno.max(krt.seqno);
            self.stats.min_seqno = self.stats.min_seqno.min(krt.seqno);
        }
        self.stats.range_tombstones = krts;
    }

    /// Flush the final tile, write filter/meta/stats/footer, and finish
    /// the file. Returns the table's statistics.
    pub fn finish(mut self) -> Result<TableStats> {
        self.flush_tile()?;
        self.finished = true;
        if self.stats.entry_count == 0 {
            // Normalize sentinel fences for an empty table.
            self.stats.min_dkey = 0;
        }
        self.stats.vlog_refs = std::mem::take(&mut self.vlog_refs)
            .into_iter()
            .map(|(segment, (bytes, max_end))| VlogRef {
                segment,
                bytes,
                max_end,
            })
            .collect();
        let filter = std::mem::take(&mut self.filter_buf);
        let filter_handle = self.write_block(&filter)?;
        let tile_meta = encode_tiles(&self.tiles);
        let tile_meta_handle = self.write_block(&tile_meta)?;
        let stats_block = self.stats.encode();
        let stats_handle = self.write_block(&stats_block)?;
        let footer = Footer {
            filter: filter_handle,
            tile_meta: tile_meta_handle,
            stats: stats_handle,
            version: FORMAT_VERSION,
        };
        self.file.append(&footer.encode())?;
        self.file.sync()?;
        self.file.finish()?;
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_vfs::{MemFs, Vfs};

    fn build_table(entries: &[Entry], opts: TableOptions) -> (MemFs, TableStats) {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, opts).unwrap();
        for e in entries {
            b.add(e).unwrap();
        }
        let stats = b.finish().unwrap();
        (fs, stats)
    }

    fn puts(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                Entry::put(
                    format!("key{i:05}").into_bytes(),
                    vec![b'v'; 20],
                    (n + i) as u64,
                    (i % 97) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn stats_reflect_contents() {
        let mut entries = puts(500);
        entries[100] = Entry::tombstone(entries[100].key.clone(), entries[100].seqno, 7);
        entries[200] = Entry::tombstone(entries[200].key.clone(), entries[200].seqno, 3);
        let (_fs, stats) = build_table(&entries, TableOptions::default());
        assert_eq!(stats.entry_count, 500);
        assert_eq!(stats.tombstone_count, 2);
        assert_eq!(stats.oldest_tombstone_tick, Some(3));
        assert_eq!(&stats.min_user_key[..], b"key00000");
        assert_eq!(&stats.max_user_key[..], b"key00499");
        assert!(stats.page_count >= 2, "500 entries should span pages");
        assert_eq!(
            stats.tile_count, stats.page_count,
            "h = 1 means one page per tile"
        );
    }

    #[test]
    fn weave_produces_multi_page_tiles() {
        let opts = TableOptions {
            pages_per_tile: 4,
            page_size: 512,
            ..Default::default()
        };
        let (_fs, stats) = build_table(&puts(500), opts);
        assert!(
            stats.tile_count < stats.page_count,
            "tiles should contain multiple pages"
        );
        assert!(
            stats.page_count <= stats.tile_count * 5,
            "pages per tile should be near h: {} tiles, {} pages",
            stats.tile_count,
            stats.page_count
        );
    }

    #[test]
    fn out_of_order_input_rejected() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        b.add(&Entry::put(&b"b"[..], &b"v"[..], 1, 0)).unwrap();
        let err = b.add(&Entry::put(&b"a"[..], &b"v"[..], 2, 0)).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn duplicate_internal_key_rejected() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        let e = Entry::put(&b"a"[..], &b"v"[..], 1, 0);
        b.add(&e).unwrap();
        assert!(b.add(&e).is_err());
    }

    #[test]
    fn same_user_key_versions_in_descending_seqno_accepted() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        b.add(&Entry::put(&b"a"[..], &b"v3"[..], 3, 0)).unwrap();
        b.add(&Entry::put(&b"a"[..], &b"v2"[..], 2, 0)).unwrap();
        b.add(&Entry::tombstone(&b"a"[..], 1, 0)).unwrap();
        let stats = b.finish().unwrap();
        assert_eq!(stats.entry_count, 3);
        assert_eq!(stats.max_seqno, 3);
        assert_eq!(stats.min_seqno, 1);
    }

    #[test]
    fn empty_table_finishes() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let b = TableBuilder::new(file, TableOptions::default()).unwrap();
        let stats = b.finish().unwrap();
        assert_eq!(stats.entry_count, 0);
        assert_eq!(stats.tile_count, 0);
        assert!(fs.file_size("t.sst").unwrap() > 0, "footer still written");
    }

    #[test]
    fn range_tombstones_persist_in_stats() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        b.add(&Entry::put(&b"a"[..], &b"v"[..], 5, 0)).unwrap();
        b.set_range_tombstones(vec![KeyRangeTombstone {
            start: Bytes::from_static(b"b"),
            end: Bytes::from_static(b"f"),
            seqno: 9,
            dkey: 42,
        }]);
        let stats = b.finish().unwrap();
        assert_eq!(stats.range_tombstones.len(), 1);
        assert_eq!(stats.oldest_range_tombstone_tick(), Some(42));
        assert_eq!(stats.max_seqno, 9, "krt seqno folds into the span");
        assert_eq!(stats.min_seqno, 5);
        let reopened = crate::reader::Table::open(fs.open("t.sst").unwrap()).unwrap();
        assert_eq!(reopened.stats().range_tombstones, stats.range_tombstones);
    }

    #[test]
    fn carrier_table_with_only_range_tombstones() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        b.set_range_tombstones(vec![KeyRangeTombstone {
            start: Bytes::from_static(b"k1"),
            end: Bytes::from_static(b"k9"),
            seqno: 7,
            dkey: 3,
        }]);
        let stats = b.finish().unwrap();
        assert_eq!(stats.entry_count, 0);
        assert_eq!(stats.max_seqno, 7);
        assert_eq!(stats.min_seqno, 7);
        let reopened = crate::reader::Table::open(fs.open("t.sst").unwrap()).unwrap();
        assert_eq!(reopened.stats().range_tombstones.len(), 1);
        assert_eq!(reopened.stats().entry_count, 0);
    }

    #[test]
    fn vlog_refs_accumulate_per_segment() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        let ptrs = [
            ValuePointer {
                segment: 1,
                offset: 0,
                len: 100,
            },
            ValuePointer {
                segment: 1,
                offset: 100,
                len: 50,
            },
            ValuePointer {
                segment: 3,
                offset: 4096,
                len: 200,
            },
        ];
        for (i, ptr) in ptrs.iter().enumerate() {
            b.add(&Entry::value_pointer(
                format!("k{i}").into_bytes(),
                *ptr,
                (i + 1) as u64,
                0,
            ))
            .unwrap();
        }
        b.add(&Entry::put(&b"zz"[..], &b"inline"[..], 9, 0))
            .unwrap();
        let stats = b.finish().unwrap();
        assert_eq!(
            stats.vlog_refs,
            vec![
                crate::meta::VlogRef {
                    segment: 1,
                    bytes: 150,
                    max_end: 150,
                },
                crate::meta::VlogRef {
                    segment: 3,
                    bytes: 200,
                    max_end: 4296,
                },
            ]
        );
        let reopened = crate::reader::Table::open(fs.open("t.sst").unwrap()).unwrap();
        assert_eq!(reopened.stats().vlog_refs, stats.vlog_refs);
    }

    #[test]
    fn malformed_value_pointer_rejected() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, TableOptions::default()).unwrap();
        let bogus = Entry {
            key: Bytes::from_static(b"k"),
            seqno: 1,
            kind: acheron_types::ValueKind::ValuePointer,
            dkey: 0,
            value: Bytes::from_static(b"short"),
        };
        assert!(b.add(&bogus).is_err());
    }

    #[test]
    fn invalid_options_rejected_at_construction() {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let opts = TableOptions {
            page_size: 1,
            ..Default::default()
        };
        assert!(TableBuilder::new(file, opts).is_err());
    }
}
