//! Table metadata: per-page descriptors, tile fences, and table-wide
//! statistics (the tombstone bookkeeping FADE consumes).

use acheron_types::codec::{
    put_length_prefixed, put_varint64, require_length_prefixed, require_varint64,
};
use acheron_types::{Error, KeyRangeTombstone, Result, SeqNo, Tick};
use bytes::Bytes;

use crate::format::{BlockHandle, FORMAT_VERSION};

/// Descriptor of one page (data block) inside a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    /// Where the page's data block lives.
    pub handle: BlockHandle,
    /// Smallest secondary delete key in the page.
    pub dkey_min: u64,
    /// Largest secondary delete key in the page.
    pub dkey_max: u64,
    /// Largest sequence number in the page (for range-tombstone
    /// dominance tests).
    pub max_seqno: SeqNo,
    /// Number of entries.
    pub entry_count: u64,
    /// Number of point tombstones in the page.
    pub tombstone_count: u64,
    /// This page's Bloom filter: byte range inside the filter block.
    pub filter_offset: u64,
    /// Length of the Bloom filter bytes (0 = no filter).
    pub filter_len: u64,
}

/// Descriptor of one delete tile: a fence key plus its pages, which are
/// ordered by `dkey_min` (the key-weaving order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMeta {
    /// The largest internal key in the tile (the fence pointer).
    pub last_ikey: Bytes,
    /// The tile's pages in delete-key order.
    pub pages: Vec<PageMeta>,
    /// True if any user key in the tile has more than one version.
    /// Single-version tiles permit *page-level* range-tombstone drops;
    /// multi-version tiles only permit tile-atomic drops (dropping one
    /// page could remove a key's newest version while an older one
    /// survives in a sibling page).
    pub multi_version: bool,
}

impl TileMeta {
    /// Smallest delete key across the tile's pages.
    pub fn dkey_min(&self) -> u64 {
        self.pages
            .iter()
            .map(|p| p.dkey_min)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Largest delete key across the tile's pages.
    pub fn dkey_max(&self) -> u64 {
        self.pages.iter().map(|p| p.dkey_max).max().unwrap_or(0)
    }
}

/// Encode the tile-meta block.
pub fn encode_tiles(tiles: &[TileMeta]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * tiles.len());
    put_varint64(&mut out, tiles.len() as u64);
    for tile in tiles {
        put_length_prefixed(&mut out, &tile.last_ikey);
        out.push(u8::from(tile.multi_version));
        put_varint64(&mut out, tile.pages.len() as u64);
        for p in &tile.pages {
            p.handle.encode_to(&mut out);
            put_varint64(&mut out, p.dkey_min);
            put_varint64(&mut out, p.dkey_max);
            put_varint64(&mut out, p.max_seqno);
            put_varint64(&mut out, p.entry_count);
            put_varint64(&mut out, p.tombstone_count);
            put_varint64(&mut out, p.filter_offset);
            put_varint64(&mut out, p.filter_len);
        }
    }
    out
}

/// Decode the tile-meta block.
pub fn decode_tiles(mut src: &[u8]) -> Result<Vec<TileMeta>> {
    let (n_tiles, rest) = require_varint64(src, "tile meta: tile count")?;
    src = rest;
    let mut tiles = Vec::with_capacity(n_tiles.min(1 << 20) as usize);
    for t in 0..n_tiles {
        let (last_ikey, rest) = require_length_prefixed(src, "tile meta: fence key")?;
        src = rest;
        let (&mv_byte, rest) = src
            .split_first()
            .ok_or_else(|| Error::corruption("tile meta: truncated multi-version flag"))?;
        src = rest;
        let multi_version = match mv_byte {
            0 => false,
            1 => true,
            other => {
                return Err(Error::corruption(format!(
                    "tile meta: bad multi-version flag {other}"
                )))
            }
        };
        let (n_pages, rest) = require_varint64(src, "tile meta: page count")?;
        src = rest;
        if n_pages == 0 {
            return Err(Error::corruption(format!("tile {t} has zero pages")));
        }
        let mut pages = Vec::with_capacity(n_pages.min(1 << 16) as usize);
        for _ in 0..n_pages {
            let (handle, rest) = BlockHandle::decode_from(src)
                .ok_or_else(|| Error::corruption("tile meta: bad page handle"))?;
            src = rest;
            let mut fields = [0u64; 7];
            for f in fields.iter_mut() {
                let (v, rest) = require_varint64(src, "tile meta: page field")?;
                *f = v;
                src = rest;
            }
            pages.push(PageMeta {
                handle,
                dkey_min: fields[0],
                dkey_max: fields[1],
                max_seqno: fields[2],
                entry_count: fields[3],
                tombstone_count: fields[4],
                filter_offset: fields[5],
                filter_len: fields[6],
            });
        }
        tiles.push(TileMeta {
            last_ikey: Bytes::copy_from_slice(last_ikey),
            pages,
            multi_version,
        });
    }
    if !src.is_empty() {
        return Err(Error::corruption("tile meta: trailing bytes"));
    }
    Ok(tiles)
}

/// Per-segment summary of the value-log pointers a table holds — the
/// Lethe-style per-file delete metadata applied to the vlog: enough to
/// rebuild live-byte accounting per segment at recovery (sum the refs
/// of every live table) without scanning any data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlogRef {
    /// The referenced value-log segment.
    pub segment: u64,
    /// Total framed bytes this table's pointers cover in the segment.
    pub bytes: u64,
    /// Largest frame end offset referenced (bounds check seed for
    /// doctor's dangling-pointer scan).
    pub max_end: u64,
}

/// Table-wide statistics, persisted in the stats block and mirrored into
/// the engine's manifest. These are the O(1)-per-file metadata
/// Acheron/Lethe attach to make compaction delete-aware.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Total entries (puts + tombstones).
    pub entry_count: u64,
    /// Point tombstones in the table.
    pub tombstone_count: u64,
    /// Tick of the oldest tombstone (None if tombstone-free).
    pub oldest_tombstone_tick: Option<Tick>,
    /// Delete-key fence across all entries.
    pub min_dkey: u64,
    /// Delete-key fence across all entries.
    pub max_dkey: u64,
    /// Sum of key+value payload bytes.
    pub user_bytes: u64,
    /// The `h` the table was built with.
    pub pages_per_tile: u64,
    /// Largest seqno in the table.
    pub max_seqno: SeqNo,
    /// Smallest seqno in the table (u64::MAX for an empty table); used
    /// to decide when a range tombstone can be retired.
    pub min_seqno: SeqNo,
    /// Smallest user key.
    pub min_user_key: Bytes,
    /// Largest user key.
    pub max_user_key: Bytes,
    /// Number of pages.
    pub page_count: u64,
    /// Number of tiles.
    pub tile_count: u64,
    /// Sort-key range tombstones carried by this table. They shadow
    /// entries in lower runs and are purged by bottommost compactions;
    /// a table may hold range tombstones and zero entries (a "carrier").
    pub range_tombstones: Vec<KeyRangeTombstone>,
    /// Value-log segments referenced by this table's value pointers,
    /// sorted by segment id. Format v3+; always empty when decoding a
    /// v2 table.
    pub vlog_refs: Vec<VlogRef>,
}

impl TableStats {
    /// Tombstones as a fraction of entries (0 for an empty table).
    pub fn tombstone_density(&self) -> f64 {
        if self.entry_count == 0 {
            0.0
        } else {
            self.tombstone_count as f64 / self.entry_count as f64
        }
    }

    /// Tick of the oldest sort-key range tombstone, if any.
    pub fn oldest_range_tombstone_tick(&self) -> Option<Tick> {
        self.range_tombstones.iter().map(|t| t.dkey).min()
    }

    /// Oldest unresolved delete of either flavor: min of the point and
    /// range tombstone ticks. This is the age seed FADE deadlines use.
    pub fn oldest_any_tombstone_tick(&self) -> Option<Tick> {
        match (
            self.oldest_tombstone_tick,
            self.oldest_range_tombstone_tick(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Serialize the stats block.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_varint64(&mut out, self.entry_count);
        put_varint64(&mut out, self.tombstone_count);
        match self.oldest_tombstone_tick {
            Some(t) => {
                out.push(1);
                put_varint64(&mut out, t);
            }
            None => out.push(0),
        }
        put_varint64(&mut out, self.min_dkey);
        put_varint64(&mut out, self.max_dkey);
        put_varint64(&mut out, self.user_bytes);
        put_varint64(&mut out, self.pages_per_tile);
        put_varint64(&mut out, self.max_seqno);
        put_varint64(&mut out, self.min_seqno);
        put_length_prefixed(&mut out, &self.min_user_key);
        put_length_prefixed(&mut out, &self.max_user_key);
        put_varint64(&mut out, self.page_count);
        put_varint64(&mut out, self.tile_count);
        put_varint64(&mut out, self.range_tombstones.len() as u64);
        for krt in &self.range_tombstones {
            krt.encode(&mut out);
        }
        put_varint64(&mut out, self.vlog_refs.len() as u64);
        for r in &self.vlog_refs {
            put_varint64(&mut out, r.segment);
            put_varint64(&mut out, r.bytes);
            put_varint64(&mut out, r.max_end);
        }
        out
    }

    /// Deserialize a stats block written at the current format version.
    pub fn decode(src: &[u8]) -> Result<TableStats> {
        Self::decode_versioned(src, FORMAT_VERSION)
    }

    /// Deserialize a stats block written at table format `version`.
    /// Version 2 blocks end at the range-tombstone section; version 3
    /// blocks must carry the vlog-ref section (possibly with zero refs).
    pub fn decode_versioned(mut src: &[u8], version: u32) -> Result<TableStats> {
        let mut next = |what: &str| -> Result<u64> {
            let (v, rest) = require_varint64(src, what)?;
            src = rest;
            Ok(v)
        };
        let entry_count = next("stats: entry count")?;
        let tombstone_count = next("stats: tombstone count")?;
        let (&flag, rest) = src
            .split_first()
            .ok_or_else(|| Error::corruption("stats: truncated tombstone-tick flag"))?;
        src = rest;
        let oldest_tombstone_tick = match flag {
            0 => None,
            1 => {
                let (v, rest) = require_varint64(src, "stats: oldest tombstone tick")?;
                src = rest;
                Some(v)
            }
            other => {
                return Err(Error::corruption(format!("stats: bad flag byte {other}")));
            }
        };
        let mut next = |what: &str| -> Result<u64> {
            let (v, rest) = require_varint64(src, what)?;
            src = rest;
            Ok(v)
        };
        let min_dkey = next("stats: min dkey")?;
        let max_dkey = next("stats: max dkey")?;
        let user_bytes = next("stats: user bytes")?;
        let pages_per_tile = next("stats: pages per tile")?;
        let max_seqno = next("stats: max seqno")?;
        let min_seqno = next("stats: min seqno")?;
        let (min_user_key, rest) = require_length_prefixed(src, "stats: min user key")?;
        let (max_user_key, rest) = require_length_prefixed(rest, "stats: max user key")?;
        src = rest;
        let mut next = |what: &str| -> Result<u64> {
            let (v, rest) = require_varint64(src, what)?;
            src = rest;
            Ok(v)
        };
        let page_count = next("stats: page count")?;
        let tile_count = next("stats: tile count")?;
        let krt_count = next("stats: range tombstone count")?;
        let mut range_tombstones = Vec::with_capacity(krt_count.min(1 << 16) as usize);
        for _ in 0..krt_count {
            let (krt, rest) = KeyRangeTombstone::decode(src, "stats: range tombstone")?;
            src = rest;
            range_tombstones.push(krt);
        }
        let mut vlog_refs = Vec::new();
        if version >= 3 {
            let mut next = |what: &str| -> Result<u64> {
                let (v, rest) = require_varint64(src, what)?;
                src = rest;
                Ok(v)
            };
            let ref_count = next("stats: vlog ref count")?;
            vlog_refs.reserve(ref_count.min(1 << 16) as usize);
            for _ in 0..ref_count {
                let segment = next("stats: vlog ref segment")?;
                let bytes = next("stats: vlog ref bytes")?;
                let max_end = next("stats: vlog ref max end")?;
                vlog_refs.push(VlogRef {
                    segment,
                    bytes,
                    max_end,
                });
            }
        }
        if !src.is_empty() {
            return Err(Error::corruption("stats: trailing bytes"));
        }
        Ok(TableStats {
            entry_count,
            tombstone_count,
            oldest_tombstone_tick,
            min_dkey,
            max_dkey,
            user_bytes,
            pages_per_tile,
            max_seqno,
            min_seqno,
            min_user_key: Bytes::copy_from_slice(min_user_key),
            max_user_key: Bytes::copy_from_slice(max_user_key),
            page_count,
            tile_count,
            range_tombstones,
            vlog_refs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tiles() -> Vec<TileMeta> {
        vec![
            TileMeta {
                last_ikey: Bytes::from_static(b"fence-one\0\0\0\0\0\0\0\0"),
                multi_version: true,
                pages: vec![
                    PageMeta {
                        handle: BlockHandle {
                            offset: 0,
                            size: 4000,
                        },
                        dkey_min: 5,
                        dkey_max: 40,
                        max_seqno: 99,
                        entry_count: 120,
                        tombstone_count: 3,
                        filter_offset: 0,
                        filter_len: 150,
                    },
                    PageMeta {
                        handle: BlockHandle {
                            offset: 4005,
                            size: 3990,
                        },
                        dkey_min: 41,
                        dkey_max: 90,
                        max_seqno: 104,
                        entry_count: 118,
                        tombstone_count: 0,
                        filter_offset: 150,
                        filter_len: 149,
                    },
                ],
            },
            TileMeta {
                last_ikey: Bytes::from_static(b"fence-two\0\0\0\0\0\0\0\0"),
                multi_version: false,
                pages: vec![PageMeta {
                    handle: BlockHandle {
                        offset: 8000,
                        size: 1234,
                    },
                    dkey_min: 0,
                    dkey_max: u64::MAX,
                    max_seqno: 77,
                    entry_count: 10,
                    tombstone_count: 10,
                    filter_offset: 299,
                    filter_len: 20,
                }],
            },
        ]
    }

    #[test]
    fn tiles_round_trip() {
        let tiles = sample_tiles();
        let decoded = decode_tiles(&encode_tiles(&tiles)).unwrap();
        assert_eq!(decoded, tiles);
    }

    #[test]
    fn empty_tile_list_round_trips() {
        assert_eq!(
            decode_tiles(&encode_tiles(&[])).unwrap(),
            Vec::<TileMeta>::new()
        );
    }

    #[test]
    fn tiles_reject_truncation() {
        let enc = encode_tiles(&sample_tiles());
        for cut in 0..enc.len() {
            assert!(decode_tiles(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn tiles_reject_trailing_bytes() {
        let mut enc = encode_tiles(&sample_tiles());
        enc.push(0);
        assert!(decode_tiles(&enc).is_err());
    }

    #[test]
    fn tile_dkey_bounds() {
        let tiles = sample_tiles();
        assert_eq!(tiles[0].dkey_min(), 5);
        assert_eq!(tiles[0].dkey_max(), 90);
    }

    fn sample_stats() -> TableStats {
        TableStats {
            entry_count: 1000,
            tombstone_count: 50,
            oldest_tombstone_tick: Some(12345),
            min_dkey: 3,
            max_dkey: 900,
            user_bytes: 64_000,
            pages_per_tile: 4,
            max_seqno: 777,
            min_seqno: 12,
            min_user_key: Bytes::from_static(b"aaa"),
            max_user_key: Bytes::from_static(b"zzz"),
            page_count: 16,
            tile_count: 4,
            range_tombstones: vec![
                KeyRangeTombstone {
                    start: Bytes::from_static(b"ccc"),
                    end: Bytes::from_static(b"mmm"),
                    seqno: 600,
                    dkey: 11_000,
                },
                KeyRangeTombstone {
                    start: Bytes::from_static(b"ppp"),
                    end: Bytes::from_static(b"qqq"),
                    seqno: 650,
                    dkey: 12_500,
                },
            ],
            vlog_refs: vec![
                VlogRef {
                    segment: 1,
                    bytes: 9000,
                    max_end: 32_768,
                },
                VlogRef {
                    segment: 4,
                    bytes: 512,
                    max_end: 4096,
                },
            ],
        }
    }

    #[test]
    fn stats_round_trip() {
        let s = sample_stats();
        assert_eq!(TableStats::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn stats_without_tombstones_round_trip() {
        let s = TableStats {
            oldest_tombstone_tick: None,
            tombstone_count: 0,
            ..sample_stats()
        };
        assert_eq!(TableStats::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn stats_reject_truncation_and_trailing() {
        let enc = sample_stats().encode();
        for cut in 0..enc.len() {
            assert!(TableStats::decode(&enc[..cut]).is_err(), "cut={cut}");
        }
        let mut padded = enc;
        padded.push(7);
        assert!(TableStats::decode(&padded).is_err());
    }

    #[test]
    fn stats_without_vlog_refs_round_trip() {
        let s = TableStats {
            vlog_refs: Vec::new(),
            ..sample_stats()
        };
        assert_eq!(TableStats::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn stats_v2_block_decodes_without_refs_section() {
        // A version-2 block is exactly the v3 encoding minus the vlog-ref
        // section; with zero refs that section is a single 0x00 count.
        let expect = TableStats {
            vlog_refs: Vec::new(),
            ..sample_stats()
        };
        let enc = expect.encode();
        let v2 = &enc[..enc.len() - 1];
        assert_eq!(TableStats::decode_versioned(v2, 2).unwrap(), expect);
        // The same bytes are a truncated v3 block...
        assert!(TableStats::decode_versioned(v2, 3).is_err());
        // ...and a v3 block read as v2 has trailing bytes.
        assert!(TableStats::decode_versioned(&enc, 2).is_err());
    }

    #[test]
    fn stats_v2_rejects_truncation_and_trailing() {
        let base = TableStats {
            vlog_refs: Vec::new(),
            ..sample_stats()
        };
        let enc = base.encode();
        let v2 = &enc[..enc.len() - 1];
        for cut in 0..v2.len() {
            assert!(
                TableStats::decode_versioned(&v2[..cut], 2).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn tombstone_density() {
        let s = sample_stats();
        assert!((s.tombstone_density() - 0.05).abs() < 1e-9);
        assert_eq!(TableStats::default().tombstone_density(), 0.0);
    }

    #[test]
    fn stats_without_range_tombstones_round_trip() {
        let s = TableStats {
            range_tombstones: Vec::new(),
            ..sample_stats()
        };
        assert_eq!(TableStats::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.oldest_range_tombstone_tick(), None);
    }

    #[test]
    fn oldest_any_tombstone_tick_folds_both_flavors() {
        let s = sample_stats();
        assert_eq!(s.oldest_range_tombstone_tick(), Some(11_000));
        assert_eq!(s.oldest_any_tombstone_tick(), Some(11_000));
        let point_only = TableStats {
            range_tombstones: Vec::new(),
            ..sample_stats()
        };
        assert_eq!(point_only.oldest_any_tombstone_tick(), Some(12_345));
        let range_only = TableStats {
            oldest_tombstone_tick: None,
            ..sample_stats()
        };
        assert_eq!(range_only.oldest_any_tombstone_tick(), Some(11_000));
        assert_eq!(TableStats::default().oldest_any_tombstone_tick(), None);
    }
}
