//! SSTable format for the Acheron engine, including the KiWi
//! (Key-Weaving) delete-tile layout.
//!
//! # Physical layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | page 0 | page 1 | ... | page N-1 |  filter  |  tile meta |   |
//! | (data blocks, each CRC-trailed)  |  block   |  block     |...|
//! +--------------------------------------------------------------+
//! ... | stats block | footer (fixed size, magic + handles) |
//! ```
//!
//! Data is grouped into **delete tiles** of up to `h` pages:
//!
//! * tiles partition the table in **sort-key** order (tile fences are
//!   used exactly like classic fence pointers),
//! * pages *within* a tile are ordered by the **secondary delete key**
//!   (each page covers a contiguous dkey band of its tile), and
//! * entries *within* a page are ordered by sort key (internal key).
//!
//! With `h = 1` the weave degenerates to the standard LSM table layout —
//! which is how the engine builds its baseline tables, so baseline and
//! KiWi share one code path and differ only in the knob.
//!
//! Every page carries its own Bloom filter, its dkey band, and its max
//! sequence number, so
//!
//! * a point lookup touches only tile pages whose Bloom matches, and
//! * a secondary range delete can *drop* a page — skip it wholesale on
//!   reads and discard it without reading during compaction — when the
//!   page's dkey band is fully covered by a newer range tombstone
//!   ([`acheron_types::RangeTombstone::covers_region`]).

pub mod block;
pub mod bloom;
pub mod cache;
pub mod format;
pub mod iter;
pub mod meta;
pub mod reader;
pub mod writer;

pub use block::{Block, BlockBuilder, BlockIter};
pub use bloom::BloomFilter;
pub use cache::{BlockCache, PageKey};
pub use format::{BlockHandle, Footer, TableOptions, FOOTER_SIZE, TABLE_MAGIC};
pub use iter::TableIterator;
pub use meta::{PageMeta, TableStats, TileMeta};
pub use reader::Table;
pub use writer::TableBuilder;
