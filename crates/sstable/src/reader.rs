//! Table reader: point lookups through tile fences and per-page Bloom
//! filters, with range-tombstone page skipping.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use acheron_types::checksum;
use acheron_types::key::{compare_internal, InternalKeyRef};
use acheron_types::{Entry, Error, InternalKey, RangeTombstone, Result, SeqNo, ValueKind};
use acheron_vfs::RandomAccessFile;
use bytes::Bytes;

use crate::block::Block;
use crate::bloom::BloomFilter;
use crate::cache::{next_table_cache_id, BlockCache, PageKey};
use crate::format::{BlockHandle, Footer, BLOCK_TRAILER_SIZE, FOOTER_SIZE};
use crate::iter::TableIterator;
use crate::meta::{decode_tiles, PageMeta, TableStats, TileMeta};

/// Read-side counters for one table (used by the experiments to show
/// where KiWi saves or spends I/O).
#[derive(Debug, Default)]
pub struct ReadCounters {
    /// Data pages fetched and searched.
    pub pages_read: AtomicU64,
    /// Pages skipped because a range tombstone covers their dkey band.
    pub pages_dropped: AtomicU64,
    /// Pages skipped by a Bloom-filter miss.
    pub bloom_skips: AtomicU64,
}

/// An immutable, open SSTable.
///
/// Debug output is intentionally shallow (tile/page counts, not
/// contents).
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    tiles: Vec<TileMeta>,
    stats: TableStats,
    filter_data: Bytes,
    /// Shared page cache, if the database configured one.
    cache: Option<Arc<BlockCache>>,
    /// Process-unique id namespacing this table's pages in the cache.
    cache_id: u64,
    /// Read counters (shared by all iterators over this table).
    pub counters: ReadCounters,
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("tiles", &self.tiles.len())
            .field("entries", &self.stats.entry_count)
            .field("tombstones", &self.stats.tombstone_count)
            .finish_non_exhaustive()
    }
}

impl Table {
    /// Open a table file: read and validate footer and metadata blocks.
    pub fn open(file: Arc<dyn RandomAccessFile>) -> Result<Arc<Table>> {
        Self::open_with_cache(file, None)
    }

    /// Open with a shared page cache.
    pub fn open_with_cache(
        file: Arc<dyn RandomAccessFile>,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Arc<Table>> {
        let size = file.size();
        if size < FOOTER_SIZE as u64 {
            return Err(Error::corruption(format!(
                "table file of {size} bytes is smaller than the footer"
            )));
        }
        let footer_bytes = file.read_at(size - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_bytes)?;
        let tile_meta_raw = read_block_raw(file.as_ref(), footer.tile_meta)?;
        let tiles = decode_tiles(&tile_meta_raw)?;
        let stats_raw = read_block_raw(file.as_ref(), footer.stats)?;
        let stats = TableStats::decode_versioned(&stats_raw, footer.version)?;
        let filter_data = read_block_raw(file.as_ref(), footer.filter)?;
        Ok(Arc::new(Table {
            file,
            tiles,
            stats,
            filter_data,
            cache,
            cache_id: next_table_cache_id(),
            counters: ReadCounters::default(),
        }))
    }

    /// Table-wide statistics from the stats block.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Bytes this open table pins in memory for its lifetime: the
    /// filter block plus the decoded tile and page metadata. These
    /// bytes exist whether or not a page cache is configured, so the
    /// engine's memory arbiter charges them against the shared budget
    /// rather than pretending table opens are free.
    pub fn pinned_bytes(&self) -> usize {
        let tile_meta: usize = self
            .tiles
            .iter()
            .map(|t| t.last_ikey.len() + t.pages.len() * std::mem::size_of::<PageMeta>())
            .sum();
        self.filter_data.len() + tile_meta + self.tiles.len() * std::mem::size_of::<TileMeta>()
    }

    /// The tile descriptors.
    pub fn tiles(&self) -> &[TileMeta] {
        &self.tiles
    }

    /// Read and verify a data page (through the cache, if configured).
    pub(crate) fn read_page(&self, handle: BlockHandle) -> Result<Block> {
        self.read_page_opts(handle, true)
    }

    /// Read and verify a data page. With `fill_cache = false` the cache
    /// is bypassed entirely: one-pass readers (compaction, integrity
    /// scans) would otherwise flood the cache with bytes that will never
    /// be read again — and, worse, pollute the fill-traffic signal the
    /// memory arbiter uses to size the cache against the write buffer.
    pub(crate) fn read_page_opts(&self, handle: BlockHandle, fill_cache: bool) -> Result<Block> {
        if !fill_cache {
            let raw = read_block_raw(self.file.as_ref(), handle)?;
            self.counters
                .pages_read
                .fetch_add(1, AtomicOrdering::Relaxed);
            return Block::new(raw);
        }
        if let Some(cache) = &self.cache {
            let key = PageKey {
                table: self.cache_id,
                offset: handle.offset,
            };
            if let Some(block) = cache.get(&key) {
                return Ok(block);
            }
            let raw = read_block_raw(self.file.as_ref(), handle)?;
            self.counters
                .pages_read
                .fetch_add(1, AtomicOrdering::Relaxed);
            let block = Block::new(raw)?;
            cache.insert(key, block.clone(), handle.size as usize);
            return Ok(block);
        }
        let raw = read_block_raw(self.file.as_ref(), handle)?;
        self.counters
            .pages_read
            .fetch_add(1, AtomicOrdering::Relaxed);
        Block::new(raw)
    }

    /// Decode a page's Bloom filter, if it has one.
    pub(crate) fn page_filter(&self, page: &PageMeta) -> Option<BloomFilter> {
        if page.filter_len == 0 {
            return None;
        }
        let start = page.filter_offset as usize;
        let end = start + page.filter_len as usize;
        let slice = self.filter_data.get(start..end)?;
        BloomFilter::decode(slice)
    }

    /// True if a live range tombstone lets this page be skipped outright.
    pub(crate) fn page_droppable(page: &PageMeta, rts: &[RangeTombstone]) -> bool {
        rts.iter()
            .any(|rt| rt.covers_region(page.dkey_min, page.dkey_max, page.max_seqno))
    }

    /// Index of the first tile whose fence is `>= target`, or `None` if
    /// the target is past the last tile.
    pub(crate) fn find_tile(&self, target: &[u8]) -> Option<usize> {
        let idx = self.tiles.partition_point(|t| {
            compare_internal(&t.last_ikey, target) == std::cmp::Ordering::Less
        });
        (idx < self.tiles.len()).then_some(idx)
    }

    /// Point lookup: the newest entry for `user_key` visible at
    /// `snapshot`, ignoring entries shadowed page-wise by `rts`
    /// (entry-level range-tombstone shadowing is the engine's job).
    pub fn get(
        &self,
        user_key: &[u8],
        snapshot: SeqNo,
        rts: &[RangeTombstone],
    ) -> Result<Option<Entry>> {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let Some(mut tile_idx) = self.find_tile(seek_key.encoded()) else {
            return Ok(None);
        };
        while tile_idx < self.tiles.len() {
            let tile = &self.tiles[tile_idx];
            let mut best: Option<Entry> = None;
            for page in &tile.pages {
                if Self::page_droppable(page, rts) {
                    self.counters
                        .pages_dropped
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    continue;
                }
                if let Some(filter) = self.page_filter(page) {
                    if !filter.may_contain(user_key) {
                        self.counters
                            .bloom_skips
                            .fetch_add(1, AtomicOrdering::Relaxed);
                        continue;
                    }
                }
                let block = self.read_page(page.handle)?;
                let mut it = block.iter();
                it.seek(seek_key.encoded())?;
                if !it.valid() {
                    continue;
                }
                let found = InternalKeyRef::decode(it.key())
                    .ok_or_else(|| Error::corruption("short internal key in page"))?;
                if found.user_key() != user_key {
                    continue;
                }
                debug_assert!(found.seqno() <= snapshot);
                let entry = entry_from_parts(found, it.dkey(), it.value().clone())?;
                best = match best {
                    Some(b) if b.seqno >= entry.seqno => Some(b),
                    _ => Some(entry),
                };
            }
            if let Some(e) = best {
                return Ok(Some(e));
            }
            // No visible version in this tile. If the tile's fence user
            // key is beyond ours, no later tile can contain the key.
            let fence = InternalKeyRef::decode(&tile.last_ikey)
                .ok_or_else(|| Error::corruption("short tile fence key"))?;
            if fence.user_key() > user_key {
                return Ok(None);
            }
            tile_idx += 1;
        }
        Ok(None)
    }

    /// All versions of `user_key` visible at `snapshot`, newest first,
    /// excluding pages dropped under `rts` (the engine passes `&[]` on
    /// its read path: the newest version must always be observed, since
    /// it is what decides the key's visibility).
    pub fn get_versions(
        &self,
        user_key: &[u8],
        snapshot: SeqNo,
        rts: &[RangeTombstone],
    ) -> Result<Vec<Entry>> {
        let seek_key = InternalKey::for_seek(user_key, snapshot);
        let Some(first_tile) = self.find_tile(seek_key.encoded()) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for tile in &self.tiles[first_tile..] {
            let mut any_possible = false;
            for page in &tile.pages {
                if Self::page_droppable(page, rts) {
                    self.counters
                        .pages_dropped
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    continue;
                }
                if let Some(filter) = self.page_filter(page) {
                    if !filter.may_contain(user_key) {
                        self.counters
                            .bloom_skips
                            .fetch_add(1, AtomicOrdering::Relaxed);
                        continue;
                    }
                }
                any_possible = true;
                let block = self.read_page(page.handle)?;
                let mut it = block.iter();
                it.seek(seek_key.encoded())?;
                while it.valid() {
                    let found = InternalKeyRef::decode(it.key())
                        .ok_or_else(|| Error::corruption("short internal key in page"))?;
                    if found.user_key() != user_key {
                        break;
                    }
                    out.push(entry_from_parts(found, it.dkey(), it.value().clone())?);
                    it.next()?;
                }
            }
            let fence = InternalKeyRef::decode(&tile.last_ikey)
                .ok_or_else(|| Error::corruption("short tile fence key"))?;
            // Stop once the tile extends beyond our user key; later tiles
            // cannot contain it.
            if fence.user_key() > user_key {
                break;
            }
            let _ = any_possible;
        }
        // Pages within a tile overlap in key space, so merge-order the
        // collected versions newest-first.
        out.sort_by_key(|e| std::cmp::Reverse(e.seqno));
        Ok(out)
    }

    /// An iterator over the whole table, skipping pages droppable under
    /// `rts`.
    pub fn iter(self: &Arc<Self>, rts: Vec<RangeTombstone>) -> TableIterator {
        TableIterator::new(Arc::clone(self), rts, true)
    }

    /// Like [`Table::iter`], but pages read are never admitted to the
    /// block cache. For one-pass consumers (compaction inputs,
    /// integrity verification) whose reads carry no reuse: bypassing
    /// keeps a bulk merge from evicting the read path's working set.
    pub fn iter_nofill(self: &Arc<Self>, rts: Vec<RangeTombstone>) -> TableIterator {
        TableIterator::new(Arc::clone(self), rts, false)
    }
}

/// Reconstruct an [`Entry`] from block-iterator parts.
pub(crate) fn entry_from_parts(key: InternalKeyRef<'_>, dkey: u64, value: Bytes) -> Result<Entry> {
    let kind = ValueKind::from_u8(key.kind_byte()).ok_or_else(|| {
        Error::corruption(format!("bad kind byte {:#x} in table", key.kind_byte()))
    })?;
    Ok(Entry {
        key: Bytes::copy_from_slice(key.user_key()),
        seqno: key.seqno(),
        kind,
        dkey,
        value,
    })
}

/// Read block contents at `handle` and verify the `type | crc` trailer.
fn read_block_raw(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Bytes> {
    let total = handle.size as usize + BLOCK_TRAILER_SIZE;
    let raw = file.read_at(handle.offset, total)?;
    let (contents, trailer) = raw.split_at(handle.size as usize);
    let stored = u32::from_le_bytes(trailer[1..5].try_into().unwrap());
    let actual = checksum::mask(checksum::extend(checksum::crc32c(contents), &trailer[..1]));
    if stored != actual {
        return Err(Error::corruption(format!(
            "block checksum mismatch at offset {} (size {})",
            handle.offset, handle.size
        )));
    }
    Ok(raw.slice(..handle.size as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TableOptions;
    use crate::writer::TableBuilder;
    use acheron_types::DeleteKeyRange;
    use acheron_vfs::{MemFs, Vfs};

    fn build(entries: &[Entry], opts: TableOptions) -> (MemFs, Arc<Table>) {
        let fs = MemFs::new();
        let file = fs.create("t.sst").unwrap();
        let mut b = TableBuilder::new(file, opts).unwrap();
        for e in entries {
            b.add(e).unwrap();
        }
        b.finish().unwrap();
        let table = Table::open(fs.open("t.sst").unwrap()).unwrap();
        (fs, table)
    }

    fn dataset(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                Entry::put(
                    format!("key{i:05}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                    1000 + i as u64,
                    (i % 128) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn get_every_key_back() {
        for h in [1usize, 4] {
            let entries = dataset(800);
            let opts = TableOptions {
                pages_per_tile: h,
                page_size: 512,
                ..Default::default()
            };
            let (_fs, table) = build(&entries, opts);
            for e in &entries {
                let got = table.get(&e.key, u64::MAX >> 8, &[]).unwrap();
                assert_eq!(
                    got.as_ref().map(|g| &g.value),
                    Some(&e.value),
                    "h={h} key={:?}",
                    e.key
                );
                assert_eq!(got.unwrap().dkey, e.dkey);
            }
        }
    }

    #[test]
    fn get_missing_keys() {
        let entries = dataset(100);
        let (_fs, table) = build(&entries, TableOptions::default());
        assert_eq!(table.get(b"absent", u64::MAX >> 8, &[]).unwrap(), None);
        assert_eq!(table.get(b"key00100", u64::MAX >> 8, &[]).unwrap(), None);
        assert_eq!(table.get(b"", u64::MAX >> 8, &[]).unwrap(), None);
        assert_eq!(table.get(b"zzzzz", u64::MAX >> 8, &[]).unwrap(), None);
    }

    #[test]
    fn snapshot_filters_newer_versions() {
        let entries = vec![
            Entry::put(&b"k"[..], &b"new"[..], 10, 0),
            Entry::put(&b"k"[..], &b"old"[..], 5, 0),
        ];
        let (_fs, table) = build(&entries, TableOptions::default());
        assert_eq!(
            table.get(b"k", 20, &[]).unwrap().unwrap().value,
            Bytes::from_static(b"new")
        );
        assert_eq!(
            table.get(b"k", 7, &[]).unwrap().unwrap().value,
            Bytes::from_static(b"old")
        );
        assert_eq!(table.get(b"k", 4, &[]).unwrap(), None);
    }

    #[test]
    fn tombstones_are_returned_not_hidden() {
        // The reader surfaces tombstones; visibility policy is the
        // engine's job.
        let entries = vec![Entry::tombstone(&b"k"[..], 9, 55)];
        let (_fs, table) = build(&entries, TableOptions::default());
        let got = table.get(b"k", 100, &[]).unwrap().unwrap();
        assert!(got.is_tombstone());
        assert_eq!(got.dkey, 55);
    }

    #[test]
    fn bloom_skips_are_counted() {
        let entries = dataset(2000);
        let (_fs, table) = build(
            &entries,
            TableOptions {
                page_size: 1024,
                ..Default::default()
            },
        );
        for i in 0..200 {
            // Absent keys that fall *inside* the fence range, so a filter
            // must answer them.
            let key = format!("key{i:05}a");
            assert_eq!(table.get(key.as_bytes(), u64::MAX >> 8, &[]).unwrap(), None);
        }
        let skips = table.counters.bloom_skips.load(AtomicOrdering::Relaxed);
        let reads = table.counters.pages_read.load(AtomicOrdering::Relaxed);
        assert!(
            skips > 150,
            "most negative lookups should be answered by Bloom filters: {skips} skips, {reads} reads"
        );
    }

    #[test]
    fn range_tombstone_drops_covered_pages_on_read() {
        // All entries share one dkey band per page with h > 1; a covering
        // tombstone must skip those pages without reading them.
        let entries = dataset(800);
        let opts = TableOptions {
            pages_per_tile: 4,
            page_size: 512,
            ..Default::default()
        };
        let (_fs, table) = build(&entries, opts);
        let rt = RangeTombstone {
            seqno: 1_000_000,
            range: DeleteKeyRange::new(0, 63),
        };
        // Keys with dkey in [0,63] sit in covered pages.
        let covered = entries.iter().find(|e| e.dkey <= 63).unwrap();
        let got = table.get(&covered.key, u64::MAX >> 8, &[rt]).unwrap();
        assert_eq!(got, None, "entry in a dropped page must not be found");
        assert!(
            table.counters.pages_dropped.load(AtomicOrdering::Relaxed) > 0,
            "drop counter must advance"
        );
        // Keys outside the covered band are still found.
        let kept = entries.iter().find(|e| e.dkey > 63).unwrap();
        let got = table.get(&kept.key, u64::MAX >> 8, &[rt]).unwrap();
        assert_eq!(got.unwrap().value, kept.value);
    }

    #[test]
    fn get_versions_returns_chain_newest_first() {
        let entries = vec![
            Entry::put(&b"k"[..], &b"v3"[..], 9, 30),
            Entry::put(&b"k"[..], &b"v2"[..], 7, 20),
            Entry::tombstone(&b"k"[..], 4, 10),
        ];
        for h in [1usize, 4] {
            let opts = TableOptions {
                pages_per_tile: h,
                ..Default::default()
            };
            let (_fs, table) = build(&entries, opts);
            let vs = table.get_versions(b"k", 100, &[]).unwrap();
            let seqs: Vec<u64> = vs.iter().map(|e| e.seqno).collect();
            assert_eq!(seqs, vec![9, 7, 4], "h={h}");
            // Snapshot trims the head of the chain.
            let vs = table.get_versions(b"k", 7, &[]).unwrap();
            assert_eq!(vs.len(), 2);
            assert_eq!(vs[0].seqno, 7);
            assert!(table.get_versions(b"absent", 100, &[]).unwrap().is_empty());
        }
    }

    #[test]
    fn version_chains_never_span_tiles() {
        // The builder cuts tiles only at user-key boundaries (this is
        // what makes whole-tile drops sound), so even with pages far
        // smaller than the chain, both versions share a tile.
        let entries = vec![
            Entry::put(&b"k"[..], vec![b'x'; 120], 10, 0),
            Entry::put(&b"k"[..], vec![b'y'; 120], 5, 0),
            Entry::put(&b"z"[..], vec![b'z'; 120], 1, 0),
        ];
        let opts = TableOptions {
            page_size: 128,
            pages_per_tile: 1,
            ..Default::default()
        };
        let (_fs, table) = build(&entries, opts);
        assert!(table.tiles().len() >= 2, "distinct keys still split tiles");
        // Both versions of "k" are found, at every snapshot.
        let got = table.get(b"k", 7, &[]).unwrap().unwrap();
        assert_eq!(got.seqno, 5);
        let got = table.get(b"k", 100, &[]).unwrap().unwrap();
        assert_eq!(got.seqno, 10);
        // The chain sits entirely inside the first tile.
        let versions = table.get_versions(b"k", 100, &[]).unwrap();
        assert_eq!(versions.len(), 2);
    }

    #[test]
    fn corrupt_page_detected() {
        let entries = dataset(50);
        let (fs, table) = build(&entries, TableOptions::default());
        // Flip a byte in the first data page.
        let raw = fs.read_all("t.sst").unwrap().to_vec();
        let mut broken = raw.clone();
        broken[10] ^= 0xff;
        fs.write_all("t.sst", &broken).unwrap();
        let table2 = Table::open(fs.open("t.sst").unwrap()).unwrap();
        let err = table2.get(b"key00000", u64::MAX >> 8, &[]).unwrap_err();
        assert!(err.is_corruption());
        drop(table);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let fs = MemFs::new();
        fs.write_all("t.sst", b"tiny").unwrap();
        assert!(Table::open(fs.open("t.sst").unwrap()).is_err());
    }

    #[test]
    fn open_rejects_wrong_magic() {
        let fs = MemFs::new();
        fs.write_all("t.sst", &[0u8; 200]).unwrap();
        let err = Table::open(fs.open("t.sst").unwrap()).expect_err("must fail");
        assert!(err.is_corruption());
    }

    #[test]
    fn pinned_bytes_track_filters_and_meta() {
        let (_fs, small) = build(&dataset(100), TableOptions::default());
        let (_fs2, large) = build(&dataset(2000), TableOptions::default());
        assert!(small.pinned_bytes() > 0, "filters and tile meta are pinned");
        assert!(
            large.pinned_bytes() > small.pinned_bytes(),
            "pinned footprint grows with the table: {} vs {}",
            large.pinned_bytes(),
            small.pinned_bytes()
        );
    }

    #[test]
    fn stats_survive_round_trip() {
        let entries = dataset(300);
        let (_fs, table) = build(&entries, TableOptions::default());
        let s = table.stats();
        assert_eq!(s.entry_count, 300);
        assert_eq!(&s.min_user_key[..], b"key00000");
        assert_eq!(&s.max_user_key[..], b"key00299");
        assert_eq!(s.max_seqno, 1299);
    }
}
