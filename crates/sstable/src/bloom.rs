//! Bloom filters over user keys, one per page.
//!
//! The filter uses double hashing (Kirsch–Mitzenmacker) over a 64-bit
//! FNV-1a-style base hash, with the probe count derived from the
//! configured bits-per-key (`k = bits_per_key * ln2`, clamped to
//! `[1, 30]`), matching the construction whose false-positive rate the
//! usual `(1 - e^{-kn/m})^k` formula describes.
//!
//! Serialized form: `filter bits | k (1 byte)`.

/// An immutable Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u8,
}

fn base_hash(key: &[u8]) -> u64 {
    // FNV-1a 64-bit, then a finalizing mix (splitmix64 tail) to spread
    // short-key entropy into the high bits used by double hashing.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl BloomFilter {
    /// Build a filter for `keys` at `bits_per_key` density.
    pub fn build<'a>(
        keys: impl ExactSizeIterator<Item = &'a [u8]>,
        bits_per_key: usize,
    ) -> BloomFilter {
        let n = keys.len();
        let k = ((bits_per_key as f64 * std::f64::consts::LN_2) as u8).clamp(1, 30);
        // At least 64 bits to keep tiny filters from degenerating.
        let nbits = (n * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h = base_hash(key);
            let mut probe = h;
            let delta = h.rotate_left(31);
            for _ in 0..k {
                let bit = (probe % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
                probe = probe.wrapping_add(delta);
            }
        }
        BloomFilter { bits, k }
    }

    /// True if `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let nbits = (self.bits.len() * 8) as u64;
        if nbits == 0 {
            return true;
        }
        let h = base_hash(key);
        let mut probe = h;
        let delta = h.rotate_left(31);
        for _ in 0..self.k {
            let bit = (probe % nbits) as usize;
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            probe = probe.wrapping_add(delta);
        }
        true
    }

    /// Serialize (`bits | k`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits.len() + 1);
        out.extend_from_slice(&self.bits);
        out.push(self.k);
        out
    }

    /// Deserialize. Returns `None` on an empty slice.
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        let (&k, bits) = data.split_last()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: bits.to_vec(),
            k,
        })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, tag: &str) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("{tag}-{i:06}").into_bytes())
            .collect()
    }

    fn build(keyset: &[Vec<u8>], bpk: usize) -> BloomFilter {
        BloomFilter::build(keyset.iter().map(|k| k.as_slice()), bpk)
    }

    #[test]
    fn no_false_negatives() {
        for n in [1usize, 10, 100, 5000] {
            let ks = keys(n, "present");
            let f = build(&ks, 10);
            for k in &ks {
                assert!(
                    f.may_contain(k),
                    "false negative for {:?}",
                    String::from_utf8_lossy(k)
                );
            }
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(10_000, "member");
        let f = build(&ks, 10);
        let probes = keys(10_000, "absent");
        let fp = probes.iter().filter(|k| f.may_contain(k)).count();
        let rate = fp as f64 / probes.len() as f64;
        // Theory for 10 bits/key is ~0.8%-1.2%; allow generous headroom.
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn more_bits_fewer_false_positives() {
        let ks = keys(5_000, "member");
        let probes = keys(20_000, "absent");
        let mut rates = Vec::new();
        for bpk in [4usize, 8, 16] {
            let f = build(&ks, bpk);
            let fp = probes.iter().filter(|k| f.may_contain(k)).count();
            rates.push(fp as f64 / probes.len() as f64);
        }
        assert!(
            rates[0] > rates[1] && rates[1] >= rates[2],
            "rates not decreasing: {rates:?}"
        );
    }

    #[test]
    fn empty_key_set() {
        let f = BloomFilter::build(std::iter::empty(), 10);
        // An empty filter answers "no" for everything (all bits zero).
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn empty_key_is_representable() {
        let ks = vec![Vec::new()];
        let f = build(&ks, 10);
        assert!(f.may_contain(b""));
    }

    #[test]
    fn encode_decode_round_trip() {
        let ks = keys(100, "x");
        let f = build(&ks, 12);
        let decoded = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        for k in &ks {
            assert!(decoded.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0]).is_none(), "k = 0 invalid");
        assert!(
            BloomFilter::decode(&[0xff, 200]).is_none(),
            "k = 200 invalid"
        );
    }

    #[test]
    fn similar_keys_are_distinguished() {
        // Regression guard for weak hashing: single-character differences
        // and shared prefixes must not collide systematically.
        let ks: Vec<Vec<u8>> = (0..1000)
            .map(|i| format!("prefix-{i}").into_bytes())
            .collect();
        let f = build(&ks, 10);
        let absent: Vec<Vec<u8>> = (1000..2000)
            .map(|i| format!("prefix-{i}").into_bytes())
            .collect();
        let fp = absent.iter().filter(|k| f.may_contain(k)).count();
        assert!(fp < 100, "structured keys collide too often: {fp}/1000");
    }
}
