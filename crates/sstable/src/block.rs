//! Data block (page) format: prefix-compressed entries with restart
//! points, mapping internal keys to `(dkey, value)`.
//!
//! Entry encoding:
//!
//! ```text
//! shared (varint) | non_shared (varint) | value_len (varint)
//!   | dkey (8B LE) | key_delta (non_shared bytes) | value
//! ```
//!
//! Every `restart_interval`-th entry is a *restart point*: its key is
//! stored whole, and its offset is appended to a trailer array, enabling
//! binary search. The block tail is:
//!
//! ```text
//! restart_offsets (u32 LE each) | n_restarts (u32 LE)
//! ```

use acheron_types::codec::{get_varint32, put_varint32};
use acheron_types::key::compare_internal;
use acheron_types::{Error, Result};
use bytes::Bytes;
use std::cmp::Ordering;

/// Serializes one page of entries.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    entries_since_restart: usize,
    last_key: Vec<u8>,
    n_entries: usize,
}

impl BlockBuilder {
    /// A builder with the given restart interval (entries per restart).
    pub fn new(restart_interval: usize) -> BlockBuilder {
        assert!(restart_interval >= 1);
        BlockBuilder {
            buf: Vec::with_capacity(4096),
            restarts: vec![0],
            restart_interval,
            entries_since_restart: 0,
            last_key: Vec::new(),
            n_entries: 0,
        }
    }

    /// Append an entry. Keys must arrive in strictly increasing
    /// internal-key order.
    pub fn add(&mut self, ikey: &[u8], dkey: u64, value: &[u8]) {
        debug_assert!(
            self.n_entries == 0 || compare_internal(&self.last_key, ikey) == Ordering::Less,
            "block entries must be added in strictly increasing internal-key order"
        );
        let shared = if self.entries_since_restart < self.restart_interval {
            common_prefix_len(&self.last_key, ikey)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.entries_since_restart = 0;
            0
        };
        let non_shared = ikey.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&dkey.to_le_bytes());
        self.buf.extend_from_slice(&ikey[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        self.entries_since_restart += 1;
        self.n_entries += 1;
    }

    /// Bytes the finished block will occupy (excluding trailer CRC).
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn len(&self) -> usize {
        self.n_entries
    }

    /// True if no entries were added.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Serialize, consuming accumulated state; the builder can be reused
    /// afterwards via [`BlockBuilder::reset`].
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for r in &self.restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        out
    }

    /// Clear for building the next block.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.restarts.clear();
        self.restarts.push(0);
        self.entries_since_restart = 0;
        self.last_key.clear();
        self.n_entries = 0;
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// An immutable, decoded page.
#[derive(Clone)]
pub struct Block {
    data: Bytes,
    /// Offset where the restart array begins.
    restarts_offset: usize,
    n_restarts: usize,
}

impl Block {
    /// Wrap serialized block contents (without trailer).
    pub fn new(data: Bytes) -> Result<Block> {
        if data.len() < 4 {
            return Err(Error::corruption("block shorter than restart count"));
        }
        let n_restarts = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap()) as usize;
        let restarts_bytes = n_restarts
            .checked_mul(4)
            .and_then(|b| b.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if restarts_bytes > data.len() {
            return Err(Error::corruption(format!(
                "block of {} bytes cannot hold {n_restarts} restarts",
                data.len()
            )));
        }
        if n_restarts == 0 {
            return Err(Error::corruption("block must have at least one restart"));
        }
        let restarts_offset = data.len() - restarts_bytes;
        Ok(Block {
            data,
            restarts_offset,
            n_restarts,
        })
    }

    fn restart_point(&self, i: usize) -> usize {
        debug_assert!(i < self.n_restarts);
        let off = self.restarts_offset + i * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap()) as usize
    }

    /// A cursor positioned before the first entry.
    pub fn iter(&self) -> BlockIter {
        BlockIter {
            block: self.clone(),
            offset: 0,
            key: Vec::new(),
            dkey: 0,
            value: Bytes::new(),
            valid: false,
        }
    }
}

/// Cursor over a [`Block`]'s entries.
pub struct BlockIter {
    block: Block,
    /// Offset of the *next* entry to decode.
    offset: usize,
    key: Vec<u8>,
    dkey: u64,
    value: Bytes,
    valid: bool,
}

impl BlockIter {
    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// The current entry's internal key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// The current entry's secondary delete key.
    pub fn dkey(&self) -> u64 {
        debug_assert!(self.valid);
        self.dkey
    }

    /// The current entry's value.
    pub fn value(&self) -> &Bytes {
        debug_assert!(self.valid);
        &self.value
    }

    /// Position at the first entry.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.offset = 0;
        self.key.clear();
        self.parse_next()
    }

    /// Position at the first entry with internal key `>= target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        // Binary search the restart array for the last restart whose key
        // is < target.
        let (mut lo, mut hi) = (0usize, self.block.n_restarts - 1);
        while lo < hi {
            let mid = hi - (hi - lo) / 2; // upper mid so the loop shrinks
            let key = self.restart_key(mid)?;
            if compare_internal(&key, target) == Ordering::Less {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        self.offset = self.block.restart_point(lo);
        self.key.clear();
        // Linear scan forward.
        loop {
            self.parse_next()?;
            if !self.valid || compare_internal(&self.key, target) != Ordering::Less {
                return Ok(());
            }
        }
    }

    /// Advance to the next entry (invalid at end).
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> Result<()> {
        debug_assert!(self.valid);
        self.parse_next()
    }

    /// Decode the full key at restart point `i` (shared length is 0 there).
    fn restart_key(&self, i: usize) -> Result<Vec<u8>> {
        let offset = self.block.restart_point(i);
        let data = &self.block.data[..self.block.restarts_offset];
        let src = data
            .get(offset..)
            .ok_or_else(|| Error::corruption("restart offset out of bounds"))?;
        let (shared, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("bad restart entry"))?;
        if shared != 0 {
            return Err(Error::corruption("restart entry has nonzero shared length"));
        }
        let (non_shared, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("bad restart entry"))?;
        let (_value_len, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("bad restart entry"))?;
        let src = src
            .get(8..)
            .ok_or_else(|| Error::corruption("bad restart entry"))?;
        let key = src
            .get(..non_shared as usize)
            .ok_or_else(|| Error::corruption("restart key out of bounds"))?;
        Ok(key.to_vec())
    }

    fn parse_next(&mut self) -> Result<()> {
        let data_end = self.block.restarts_offset;
        if self.offset >= data_end {
            self.valid = false;
            return Ok(());
        }
        let base = self.offset;
        let src = &self.block.data[base..data_end];
        let (shared, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("truncated block entry header"))?;
        let (non_shared, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("truncated block entry header"))?;
        let (value_len, src) =
            get_varint32(src).ok_or_else(|| Error::corruption("truncated block entry header"))?;
        let dkey_bytes = src
            .get(..8)
            .ok_or_else(|| Error::corruption("truncated dkey"))?;
        let dkey = u64::from_le_bytes(dkey_bytes.try_into().unwrap());
        let src = &src[8..];
        if (shared as usize) > self.key.len() {
            return Err(Error::corruption(format!(
                "entry shares {shared} bytes but previous key has {}",
                self.key.len()
            )));
        }
        let key_delta = src
            .get(..non_shared as usize)
            .ok_or_else(|| Error::corruption("truncated key delta"))?;
        let value_start = non_shared as usize;
        // Bounds check only; the value itself is sliced zero-copy below.
        src.get(value_start..value_start + value_len as usize)
            .ok_or_else(|| Error::corruption("truncated block value"))?;

        self.key.truncate(shared as usize);
        self.key.extend_from_slice(key_delta);
        self.dkey = dkey;
        // Compute the value's absolute range to take a zero-copy slice.
        let consumed_before_value = (data_end - base) - src.len() + value_start;
        let abs_value_start = base + consumed_before_value;
        self.value = self
            .block
            .data
            .slice(abs_value_start..abs_value_start + value_len as usize);
        self.offset = abs_value_start + value_len as usize;
        self.valid = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_types::{InternalKey, ValueKind};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        InternalKey::new(k.as_bytes(), seq, ValueKind::Put)
            .encoded()
            .to_vec()
    }

    fn build(entries: &[(Vec<u8>, u64, Vec<u8>)], restart_interval: usize) -> Block {
        let mut b = BlockBuilder::new(restart_interval);
        for (k, d, v) in entries {
            b.add(k, *d, v);
        }
        Block::new(Bytes::from(b.finish())).unwrap()
    }

    fn sample(n: usize) -> Vec<(Vec<u8>, u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    ik(&format!("key{i:05}"), (n - i) as u64),
                    i as u64 * 10,
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn iterate_all_entries() {
        for restart in [1, 2, 16] {
            let entries = sample(100);
            let block = build(&entries, restart);
            let mut it = block.iter();
            it.seek_to_first().unwrap();
            for (k, d, v) in &entries {
                assert!(it.valid());
                assert_eq!(it.key(), &k[..]);
                assert_eq!(it.dkey(), *d);
                assert_eq!(&it.value()[..], &v[..]);
                it.next().unwrap();
            }
            assert!(!it.valid());
        }
    }

    #[test]
    fn seek_exact_and_between() {
        let entries = sample(50);
        let block = build(&entries, 4);
        let mut it = block.iter();

        // Exact hit.
        it.seek(&entries[17].0).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &entries[17].0[..]);

        // Between two keys: lands on the next one. A seek key for
        // user key "key00017x" (which doesn't exist) lands on key00018.
        let between = InternalKey::for_seek(b"key00017x", u64::MAX >> 9);
        it.seek(between.encoded()).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &entries[18].0[..]);

        // Before everything.
        let lowest = InternalKey::for_seek(b"a", 1);
        it.seek(lowest.encoded()).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &entries[0].0[..]);

        // Past everything.
        let beyond = InternalKey::for_seek(b"zzz", 1);
        it.seek(beyond.encoded()).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn seek_with_restart_interval_one() {
        let entries = sample(10);
        let block = build(&entries, 1);
        let mut it = block.iter();
        for (k, _, _) in &entries {
            it.seek(k).unwrap();
            assert!(it.valid());
            assert_eq!(it.key(), &k[..]);
        }
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let block = build(&[], 16);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert!(!it.valid());
        it.seek(&ik("x", 1)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn single_entry_block() {
        let entries = sample(1);
        let block = build(&entries, 16);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &entries[0].0[..]);
        it.next().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_shrinks_output() {
        let entries = sample(200);
        let compressed = {
            let mut b = BlockBuilder::new(16);
            for (k, d, v) in &entries {
                b.add(k, *d, v);
            }
            b.finish().len()
        };
        let uncompressed = {
            let mut b = BlockBuilder::new(1);
            for (k, d, v) in &entries {
                b.add(k, *d, v);
            }
            b.finish().len()
        };
        assert!(
            compressed < uncompressed,
            "prefix compression should shrink shared-prefix keys: {compressed} vs {uncompressed}"
        );
    }

    #[test]
    fn builder_reset_reuses_cleanly() {
        let mut b = BlockBuilder::new(4);
        b.add(&ik("a", 1), 0, b"1");
        let first = b.finish();
        b.reset();
        b.add(&ik("a", 1), 0, b"1");
        let second = b.finish();
        assert_eq!(first, second);
    }

    #[test]
    fn size_estimate_matches_finish() {
        let mut b = BlockBuilder::new(3);
        for (k, d, v) in sample(37) {
            b.add(&k, d, &v);
        }
        let est = b.size_estimate();
        assert_eq!(est, b.finish().len());
    }

    #[test]
    fn corrupt_restart_count_rejected() {
        let entries = sample(5);
        let mut raw = {
            let mut b = BlockBuilder::new(16);
            for (k, d, v) in &entries {
                b.add(k, *d, v);
            }
            b.finish()
        };
        let n = raw.len();
        // Claim an absurd number of restarts.
        raw[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Block::new(Bytes::from(raw)).is_err());
    }

    #[test]
    fn too_short_block_rejected() {
        assert!(Block::new(Bytes::from_static(&[1, 2])).is_err());
    }

    #[test]
    fn zero_copy_values_share_block_storage() {
        let entries = sample(3);
        let block = build(&entries, 16);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        let v = it.value().clone();
        drop(it);
        // The value must stay alive independently of the iterator.
        assert_eq!(&v[..], b"value-0");
    }

    #[test]
    fn binary_keys_with_embedded_zeros() {
        let keys: Vec<Vec<u8>> = vec![
            InternalKey::new(&[0, 0, 1], 1, ValueKind::Put)
                .encoded()
                .to_vec(),
            InternalKey::new(&[0, 1], 2, ValueKind::Put)
                .encoded()
                .to_vec(),
            InternalKey::new(&[1, 0, 255], 3, ValueKind::Put)
                .encoded()
                .to_vec(),
        ];
        let entries: Vec<(Vec<u8>, u64, Vec<u8>)> =
            keys.into_iter().map(|k| (k, 7, vec![0xaa])).collect();
        let block = build(&entries, 2);
        let mut it = block.iter();
        it.seek(&entries[1].0).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &entries[1].0[..]);
    }
}
