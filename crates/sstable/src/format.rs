//! On-disk format constants, block handles, the footer, and build options.

use acheron_types::codec::{get_varint64, put_varint64};
use acheron_types::{Error, Result};

/// Magic number at the end of every Acheron table
/// (`b"ACHERON1"` interpreted little-endian).
pub const TABLE_MAGIC: u64 = u64::from_le_bytes(*b"ACHERON1");

/// Current format version, stored in the footer. Version 2 appended
/// sort-key range tombstones to the stats block; version 3 added the
/// value-pointer entry kind and per-segment vlog references to the
/// stats block.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version this build still reads. Version-2 tables
/// (pre-value-separation) remain readable; new tables are always
/// written at [`FORMAT_VERSION`].
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Fixed footer size: three 16-byte handle slots + version (4) + magic (8).
pub const FOOTER_SIZE: usize = 3 * 16 + 4 + 8;

/// Per-block trailer: compression type byte (always 0 for now) + CRC32C.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Location of a block within the table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block's first byte.
    pub offset: u64,
    /// Length of the block contents, *excluding* the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Append the varint encoding.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Encode into a fixed 16-byte slot (zero-padded), for the footer.
    pub fn encode_fixed(&self) -> [u8; 16] {
        let mut slot = [0u8; 16];
        slot[..8].copy_from_slice(&self.offset.to_le_bytes());
        slot[8..].copy_from_slice(&self.size.to_le_bytes());
        slot
    }

    /// Decode the varint encoding from the front of `src`.
    pub fn decode_from(src: &[u8]) -> Option<(BlockHandle, &[u8])> {
        let (offset, rest) = get_varint64(src)?;
        let (size, rest) = get_varint64(rest)?;
        Some((BlockHandle { offset, size }, rest))
    }

    /// Decode a fixed 16-byte slot.
    pub fn decode_fixed(slot: &[u8]) -> Option<BlockHandle> {
        if slot.len() != 16 {
            return None;
        }
        Some(BlockHandle {
            offset: u64::from_le_bytes(slot[..8].try_into().unwrap()),
            size: u64::from_le_bytes(slot[8..].try_into().unwrap()),
        })
    }
}

/// The fixed-size footer at the end of a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the filter block (all page Bloom filters).
    pub filter: BlockHandle,
    /// Handle of the tile-meta block (tile fences + page descriptors).
    pub tile_meta: BlockHandle,
    /// Handle of the stats block (table-wide properties).
    pub stats: BlockHandle,
    /// Format version.
    pub version: u32,
}

impl Footer {
    /// Encode to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_SIZE);
        out.extend_from_slice(&self.filter.encode_fixed());
        out.extend_from_slice(&self.tile_meta.encode_fixed());
        out.extend_from_slice(&self.stats.encode_fixed());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        debug_assert_eq!(out.len(), FOOTER_SIZE);
        out
    }

    /// Decode and validate a footer slice.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() != FOOTER_SIZE {
            return Err(Error::corruption(format!(
                "footer must be {FOOTER_SIZE} bytes, got {}",
                src.len()
            )));
        }
        let magic = u64::from_le_bytes(src[FOOTER_SIZE - 8..].try_into().unwrap());
        if magic != TABLE_MAGIC {
            return Err(Error::corruption(format!(
                "bad table magic {magic:#018x} (not an Acheron table?)"
            )));
        }
        let version = u32::from_le_bytes(src[48..52].try_into().unwrap());
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(Error::corruption(format!(
                "unsupported table format version {version}"
            )));
        }
        Ok(Footer {
            filter: BlockHandle::decode_fixed(&src[..16]).expect("fixed slot"),
            tile_meta: BlockHandle::decode_fixed(&src[16..32]).expect("fixed slot"),
            stats: BlockHandle::decode_fixed(&src[32..48]).expect("fixed slot"),
            version,
        })
    }
}

/// Knobs controlling table construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed page (data block) size in bytes.
    pub page_size: usize,
    /// Pages per delete tile (`h`). `1` = classic layout; larger values
    /// trade sort-key read locality for secondary-delete granularity.
    pub pages_per_tile: usize,
    /// Bloom filter bits per key (0 disables filters).
    pub bloom_bits_per_key: usize,
    /// Restart-point interval inside pages.
    pub restart_interval: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            page_size: 4096,
            pages_per_tile: 1,
            bloom_bits_per_key: 10,
            restart_interval: 16,
        }
    }
}

impl TableOptions {
    /// Validate the option combination.
    pub fn validate(&self) -> Result<()> {
        if self.page_size < 64 {
            return Err(Error::invalid_argument("page_size must be >= 64 bytes"));
        }
        if self.pages_per_tile == 0 {
            return Err(Error::invalid_argument("pages_per_tile must be >= 1"));
        }
        if self.restart_interval == 0 {
            return Err(Error::invalid_argument("restart_interval must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_varint_round_trip() {
        for h in [
            BlockHandle { offset: 0, size: 0 },
            BlockHandle {
                offset: 1,
                size: 4096,
            },
            BlockHandle {
                offset: u64::MAX,
                size: u64::MAX,
            },
        ] {
            let mut buf = Vec::new();
            h.encode_to(&mut buf);
            let (decoded, rest) = BlockHandle::decode_from(&buf).unwrap();
            assert_eq!(decoded, h);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn handle_fixed_round_trip() {
        let h = BlockHandle {
            offset: 123_456,
            size: 789,
        };
        assert_eq!(BlockHandle::decode_fixed(&h.encode_fixed()), Some(h));
        assert_eq!(BlockHandle::decode_fixed(&[0u8; 15]), None);
    }

    #[test]
    fn footer_round_trip() {
        let f = Footer {
            filter: BlockHandle {
                offset: 10,
                size: 20,
            },
            tile_meta: BlockHandle {
                offset: 30,
                size: 40,
            },
            stats: BlockHandle {
                offset: 70,
                size: 5,
            },
            version: FORMAT_VERSION,
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_SIZE);
        assert_eq!(Footer::decode(&enc).unwrap(), f);
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let f = Footer {
            filter: BlockHandle::default(),
            tile_meta: BlockHandle::default(),
            stats: BlockHandle::default(),
            version: FORMAT_VERSION,
        };
        let mut enc = f.encode();
        let n = enc.len();
        enc[n - 1] ^= 0xff;
        let err = Footer::decode(&enc).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn footer_rejects_bad_version() {
        let f = Footer {
            filter: BlockHandle::default(),
            tile_meta: BlockHandle::default(),
            stats: BlockHandle::default(),
            version: FORMAT_VERSION,
        };
        let mut enc = f.encode();
        enc[48] = 99;
        assert!(Footer::decode(&enc).is_err());
        // Versions below the compatibility floor are refused too.
        enc[48] = MIN_FORMAT_VERSION as u8 - 1;
        assert!(Footer::decode(&enc).is_err());
    }

    #[test]
    fn footer_accepts_previous_version() {
        // Version-2 tables (written before value separation) must still
        // open.
        let f = Footer {
            filter: BlockHandle::default(),
            tile_meta: BlockHandle::default(),
            stats: BlockHandle::default(),
            version: MIN_FORMAT_VERSION,
        };
        let decoded = Footer::decode(&f.encode()).unwrap();
        assert_eq!(decoded.version, MIN_FORMAT_VERSION);
    }

    #[test]
    fn footer_rejects_wrong_length() {
        assert!(Footer::decode(&[0u8; FOOTER_SIZE - 1]).is_err());
        assert!(Footer::decode(&[0u8; FOOTER_SIZE + 1]).is_err());
    }

    #[test]
    fn options_validation() {
        assert!(TableOptions::default().validate().is_ok());
        assert!(TableOptions {
            page_size: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TableOptions {
            pages_per_tile: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(TableOptions {
            restart_interval: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
