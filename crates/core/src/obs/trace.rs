//! Per-operation trace spans and the delete-lifecycle ledger.
//!
//! Two linked subsystems turn the flight recorder ([`crate::obs`])
//! into an *attribution* layer:
//!
//! * **Trace spans** decompose one sampled operation's latency into
//!   named stages (commit-queue wait, WAL fsync, memtable insert,
//!   bloom prescreens, cache hits vs. misses, vlog deref, …). The
//!   sampler is a power-of-two mask over a relaxed op counter, so
//!   with sampling off the entire subsystem costs one predictable
//!   branch per operation — the ≤3% overhead bound measured by E17
//!   still holds with tracing compiled in. Sampled spans are emitted
//!   as [`Event::TraceSpan`](crate::obs::Event::TraceSpan) ring
//!   events and retained as whole [`OpTrace`]s for the `traces` wire
//!   command.
//! * **The delete-lifecycle ledger** records tombstone *cohorts* —
//!   all deletes committed into one memtable generation, keyed by
//!   (shard, flush epoch) — and stamps each stage of their journey:
//!   sealed → flushed → entered level *i* → purged → vlog extent
//!   reclaimed. Cohorts, not per-tombstone records, keep the ledger
//!   O(memtable generations) instead of O(deletes): FADE's bound is
//!   per-tombstone, but every tombstone in a generation shares the
//!   flush epoch and level schedule, so the cohort's *first* delete
//!   tick bounds every member's slack conservatively. The ledger is
//!   maintained at the existing single version-install point and the
//!   compaction/GC completion sites, all already serialized by the
//!   state lock, so it needs no extra synchronization beyond its own
//!   mutex.
//!
//! [`DeleteAudit`] folds the ledger and the live gauges into the
//! compliance report served by `acheron audit`: per-cohort slack
//! against `D_th`, nonzero exit on violation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use acheron_types::{SeqNo, Tick};
use parking_lot::Mutex;

/// Whole traces retained for the `traces` command (newest wins).
const RECENT_TRACES: usize = 64;

/// Resolved cohorts retained per shard before the oldest are evicted.
const COHORT_RETENTION: usize = 1024;

/// Which operation a trace describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A single put.
    Put,
    /// A single point delete.
    Delete,
    /// A point lookup.
    Get,
    /// A multi-op write batch.
    Write,
}

impl TraceOp {
    pub(crate) fn code(self) -> u64 {
        match self {
            TraceOp::Put => 0,
            TraceOp::Delete => 1,
            TraceOp::Get => 2,
            TraceOp::Write => 3,
        }
    }

    pub(crate) fn from_code(code: u64) -> Option<TraceOp> {
        Some(match code {
            0 => TraceOp::Put,
            1 => TraceOp::Delete,
            2 => TraceOp::Get,
            3 => TraceOp::Write,
            _ => return None,
        })
    }

    /// Lowercase name for text exposition.
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::Put => "put",
            TraceOp::Delete => "delete",
            TraceOp::Get => "get",
            TraceOp::Write => "write",
        }
    }
}

/// One named stage of a traced operation. Stages ending in `_micros`
/// carry wall time; the rest carry counts observed while the op ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// Write: time paced or stalled by L0/imm back-pressure.
    ThrottleWait,
    /// Write: time queued behind the commit-group leader.
    CommitQueueWait,
    /// Write (leader): WAL append + fsync.
    WalAppendFsync,
    /// Write (leader): value-log frame appends.
    VlogAppend,
    /// Write (leader): separated values appended to the vlog.
    VlogFramesAppended,
    /// Write (leader): memtable inserts + view publish.
    MemtableInsert,
    /// Write: synchronous flush/compaction ran inside the op
    /// (`background_threads = 0` only).
    InlineMaintenance,
    /// Read: cloning the read view.
    ViewClone,
    /// Read: probing the active + sealed memtables.
    MemtableProbe,
    /// Read: sealed memtables probed.
    ImmProbes,
    /// Read: table files actually read (post-prescreen).
    TableProbes,
    /// Read: files skipped by bloom/fence prescreen.
    BloomPrescreenSkips,
    /// Read: files skipped by seqno-window pruning.
    SeqnoSkips,
    /// Read: pages served from the block cache.
    CacheHitPages,
    /// Read: pages read from disk.
    CacheMissPages,
    /// Read: resolving a value pointer through the vlog.
    VlogDeref,
    /// Whole-operation wall time.
    Total,
}

impl TraceStage {
    pub(crate) fn code(self) -> u64 {
        match self {
            TraceStage::ThrottleWait => 0,
            TraceStage::CommitQueueWait => 1,
            TraceStage::WalAppendFsync => 2,
            TraceStage::VlogAppend => 3,
            TraceStage::VlogFramesAppended => 4,
            TraceStage::MemtableInsert => 5,
            TraceStage::InlineMaintenance => 6,
            TraceStage::ViewClone => 7,
            TraceStage::MemtableProbe => 8,
            TraceStage::ImmProbes => 9,
            TraceStage::TableProbes => 10,
            TraceStage::BloomPrescreenSkips => 11,
            TraceStage::SeqnoSkips => 12,
            TraceStage::CacheHitPages => 13,
            TraceStage::CacheMissPages => 14,
            TraceStage::VlogDeref => 15,
            TraceStage::Total => 16,
        }
    }

    pub(crate) fn from_code(code: u64) -> Option<TraceStage> {
        Some(match code {
            0 => TraceStage::ThrottleWait,
            1 => TraceStage::CommitQueueWait,
            2 => TraceStage::WalAppendFsync,
            3 => TraceStage::VlogAppend,
            4 => TraceStage::VlogFramesAppended,
            5 => TraceStage::MemtableInsert,
            6 => TraceStage::InlineMaintenance,
            7 => TraceStage::ViewClone,
            8 => TraceStage::MemtableProbe,
            9 => TraceStage::ImmProbes,
            10 => TraceStage::TableProbes,
            11 => TraceStage::BloomPrescreenSkips,
            12 => TraceStage::SeqnoSkips,
            13 => TraceStage::CacheHitPages,
            14 => TraceStage::CacheMissPages,
            15 => TraceStage::VlogDeref,
            16 => TraceStage::Total,
            _ => return None,
        })
    }

    /// Lowercase name for text exposition.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::ThrottleWait => "throttle_wait_micros",
            TraceStage::CommitQueueWait => "commit_queue_wait_micros",
            TraceStage::WalAppendFsync => "wal_append_fsync_micros",
            TraceStage::VlogAppend => "vlog_append_micros",
            TraceStage::VlogFramesAppended => "vlog_frames_appended",
            TraceStage::MemtableInsert => "memtable_insert_micros",
            TraceStage::InlineMaintenance => "inline_maintenance_micros",
            TraceStage::ViewClone => "view_clone_micros",
            TraceStage::MemtableProbe => "memtable_probe_micros",
            TraceStage::ImmProbes => "imm_probes",
            TraceStage::TableProbes => "table_probes",
            TraceStage::BloomPrescreenSkips => "bloom_prescreen_skips",
            TraceStage::SeqnoSkips => "seqno_skips",
            TraceStage::CacheHitPages => "cache_hit_pages",
            TraceStage::CacheMissPages => "cache_miss_pages",
            TraceStage::VlogDeref => "vlog_deref_micros",
            TraceStage::Total => "total_micros",
        }
    }
}

/// A lifecycle milestone carried by
/// [`Event::CohortAdvanced`](crate::obs::Event::CohortAdvanced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohortStage {
    /// The cohort's memtable generation was sealed.
    Sealed,
    /// The generation reached an L0 table.
    Flushed,
    /// A compaction moved cohort members into a deeper level.
    EnteredLevel,
    /// Every member tombstone has been purged or superseded.
    Purged,
    /// The last dead vlog extent attributed to the cohort was
    /// reclaimed.
    VlogReclaimed,
}

impl CohortStage {
    pub(crate) fn code(self) -> u64 {
        match self {
            CohortStage::Sealed => 0,
            CohortStage::Flushed => 1,
            CohortStage::EnteredLevel => 2,
            CohortStage::Purged => 3,
            CohortStage::VlogReclaimed => 4,
        }
    }

    pub(crate) fn from_code(code: u64) -> Option<CohortStage> {
        Some(match code {
            0 => CohortStage::Sealed,
            1 => CohortStage::Flushed,
            2 => CohortStage::EnteredLevel,
            3 => CohortStage::Purged,
            4 => CohortStage::VlogReclaimed,
            _ => return None,
        })
    }

    /// Lowercase name for text exposition.
    pub fn name(self) -> &'static str {
        match self {
            CohortStage::Sealed => "sealed",
            CohortStage::Flushed => "flushed",
            CohortStage::EnteredLevel => "entered_level",
            CohortStage::Purged => "purged",
            CohortStage::VlogReclaimed => "vlog_reclaimed",
        }
    }
}

/// An in-flight trace: stages accumulate here while the operation
/// runs, off any shared state, then [`Tracer::record`] publishes the
/// finished [`OpTrace`].
#[derive(Debug)]
pub struct TraceBuf {
    /// Fleet-unique trace id (propagated over the wire).
    pub trace_id: u64,
    op: TraceOp,
    started: Instant,
    spans: Vec<(TraceStage, u64)>,
}

impl TraceBuf {
    fn new(trace_id: u64, op: TraceOp) -> TraceBuf {
        TraceBuf {
            trace_id,
            op,
            started: Instant::now(),
            spans: Vec::with_capacity(8),
        }
    }

    /// Record one stage. Values add when a stage repeats (e.g. two
    /// table probes in one get).
    pub fn add(&mut self, stage: TraceStage, value: u64) {
        if let Some(s) = self.spans.iter_mut().find(|(st, _)| *st == stage) {
            s.1 += value;
            return;
        }
        self.spans.push((stage, value));
    }

    /// Microseconds since the trace began (for call-site span timing).
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Close the trace: appends the `total_micros` stage.
    pub fn finish(mut self) -> OpTrace {
        let total = self.elapsed_micros();
        self.spans.push((TraceStage::Total, total));
        OpTrace {
            trace_id: self.trace_id,
            op: self.op,
            spans: self.spans,
        }
    }
}

/// A completed per-op trace: the stage breakdown of one sampled (or
/// wire-requested) operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Fleet-unique trace id.
    pub trace_id: u64,
    /// The traced operation.
    pub op: TraceOp,
    /// `(stage, value)` pairs in recording order; `_micros` stages are
    /// wall time, the rest are counts.
    pub spans: Vec<(TraceStage, u64)>,
}

impl OpTrace {
    /// The spans as `(name, value)` pairs for wire transport.
    pub fn named_spans(&self) -> Vec<(String, u64)> {
        self.spans
            .iter()
            .map(|(s, v)| (s.name().to_string(), *v))
            .collect()
    }

    /// One-block text rendering.
    pub fn render(&self) -> String {
        let mut out = format!("trace {} op={}\n", self.trace_id, self.op.name());
        for (stage, value) in &self.spans {
            out.push_str(&format!("  {:<26} {}\n", stage.name(), value));
        }
        out
    }
}

/// The per-engine trace sampler and retention buffer.
///
/// Sampling is a power-of-two mask over a relaxed op counter: with
/// sampling disabled, `sample` is a single untaken branch; enabled, it
/// costs one relaxed `fetch_add` per op and allocates a [`TraceBuf`]
/// only for the one-in-`2^k` ops that match.
pub struct Tracer {
    enabled: bool,
    mask: u64,
    ops: AtomicU64,
    ids: Arc<AtomicU64>,
    recent: Mutex<VecDeque<OpTrace>>,
}

impl Tracer {
    /// A tracer sampling one in `sample_every` ops (0 = off;
    /// `sample_every` must be a power of two, enforced by
    /// `DbOptions::validate`). `ids` is the trace-id allocator —
    /// shared across a sharded fleet so ids are fleet-unique.
    pub fn new(sample_every: u64, ids: Arc<AtomicU64>) -> Tracer {
        Tracer {
            enabled: sample_every > 0,
            mask: sample_every.wrapping_sub(1),
            ops: AtomicU64::new(0),
            ids,
            recent: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether sampling is enabled at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Count one op; returns a trace buffer iff this op is sampled.
    pub fn sample(&self, op: TraceOp) -> Option<TraceBuf> {
        if !self.enabled {
            return None;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n & self.mask != 0 {
            return None;
        }
        Some(self.begin(op))
    }

    /// Start an unconditionally traced op (wire-requested traces
    /// bypass the sampler).
    pub fn begin(&self, op: TraceOp) -> TraceBuf {
        TraceBuf::new(self.ids.fetch_add(1, Ordering::Relaxed), op)
    }

    /// Publish a finished trace into the retention buffer.
    pub fn record(&self, trace: OpTrace) {
        let mut recent = self.recent.lock();
        if recent.len() >= RECENT_TRACES {
            recent.pop_front();
        }
        recent.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<OpTrace> {
        self.recent.lock().iter().cloned().collect()
    }
}

/// Render retained traces, oldest first.
pub fn render_traces(traces: &[OpTrace]) -> String {
    let mut out = format!("# {} recent traces (newest last)\n", traces.len());
    for t in traces {
        out.push_str(&t.render());
    }
    out
}

/// One tombstone cohort: every delete committed into one memtable
/// generation of one shard, with per-stage lifecycle timestamps. All
/// tick fields are engine-clock ticks (the unit `D_th` is set in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortRecord {
    /// Owning shard (0 for a standalone engine).
    pub shard: usize,
    /// Flush epoch: which memtable generation, 0-based per shard.
    pub epoch: u64,
    /// Smallest seqno in the generation (attribution window).
    pub min_seqno: SeqNo,
    /// Largest seqno in the generation.
    pub max_seqno: SeqNo,
    /// Point deletes in the cohort.
    pub deletes: u64,
    /// Sort-key range deletes in the cohort.
    pub key_range_deletes: u64,
    /// Tick of the cohort's earliest delete — the clock `D_th` slack
    /// is measured against (conservative for every member).
    pub first_delete_tick: Tick,
    /// Tick of the cohort's latest delete.
    pub last_delete_tick: Tick,
    /// When the generation was sealed (None while still accepting
    /// writes).
    pub sealed_tick: Option<Tick>,
    /// When the generation reached an L0 table.
    pub flushed_tick: Option<Tick>,
    /// Deepest level cohort members have compacted into, with the
    /// tick they arrived.
    pub deepest_level: Option<(u64, Tick)>,
    /// Member tombstones resolved so far (purged or superseded).
    pub resolved: u64,
    /// When the last member tombstone resolved.
    pub purged_tick: Option<Tick>,
    /// Vlog segments holding dead extents attributed to this cohort
    /// and not yet reclaimed.
    pub vlog_pending: BTreeSet<u64>,
    /// When the last attributed vlog extent was reclaimed.
    pub vlog_reclaimed_tick: Option<Tick>,
}

impl CohortRecord {
    /// Total member deletes.
    pub fn total_deletes(&self) -> u64 {
        self.deletes + self.key_range_deletes
    }

    /// Whether every member tombstone has resolved and every
    /// attributed vlog extent was reclaimed.
    pub fn is_resolved(&self) -> bool {
        self.resolved >= self.total_deletes() && self.vlog_pending.is_empty()
    }

    /// The tick the cohort fully resolved at (None while unresolved):
    /// the later of final purge and final vlog reclaim.
    pub fn resolve_tick(&self) -> Option<Tick> {
        if !self.is_resolved() {
            return None;
        }
        match (self.purged_tick, self.vlog_reclaimed_tick) {
            (Some(p), Some(v)) => Some(p.max(v)),
            (p, v) => p.or(v),
        }
    }

    /// Age of the cohort's oldest delete: resolved cohorts measure to
    /// their resolve tick, unresolved ones to `now` (still growing).
    pub fn age(&self, now: Tick) -> Tick {
        self.resolve_tick()
            .unwrap_or(now)
            .saturating_sub(self.first_delete_tick)
    }

    /// Whether the cohort's oldest delete outlived `d_th`.
    pub fn violates(&self, now: Tick, d_th: Tick) -> bool {
        self.age(now) > d_th
    }

    /// Merge-less one-line rendering for the audit report.
    pub fn render(&self, now: Tick, d_th: Option<Tick>) -> String {
        let mut line = format!(
            "shard {} epoch {}: deletes={} krt={} first_tick={}",
            self.shard, self.epoch, self.deletes, self.key_range_deletes, self.first_delete_tick
        );
        let rel = |t: Tick| t.saturating_sub(self.first_delete_tick);
        match self.sealed_tick {
            Some(t) => line.push_str(&format!(" sealed=+{}", rel(t))),
            None => line.push_str(" sealed=-"),
        }
        if let Some(t) = self.flushed_tick {
            line.push_str(&format!(" flushed=+{}", rel(t)));
        }
        if let Some((level, t)) = self.deepest_level {
            line.push_str(&format!(" deepest=L{}@+{}", level, rel(t)));
        }
        match self.purged_tick {
            Some(t) if self.resolved >= self.total_deletes() => {
                line.push_str(&format!(" purged=+{}", rel(t)))
            }
            _ => line.push_str(&format!(
                " purged={}/{}",
                self.resolved,
                self.total_deletes()
            )),
        }
        if !self.vlog_pending.is_empty() {
            line.push_str(&format!(" vlog_pending={}", self.vlog_pending.len()));
        } else if let Some(t) = self.vlog_reclaimed_tick {
            line.push_str(&format!(" vlog_reclaimed=+{}", rel(t)));
        }
        match d_th {
            Some(d) => {
                let age = self.age(now);
                if age > d {
                    line.push_str(&format!(" age={} VIOLATION (> D_th {})", age, d));
                } else if self.is_resolved() {
                    line.push_str(&format!(" slack={} OK", d - age));
                } else {
                    line.push_str(&format!(" age={} unresolved (slack {})", age, d - age));
                }
            }
            None => line.push_str(&format!(" age={}", self.age(now))),
        }
        line
    }
}

/// Deletes accumulated in the active memtable generation, not yet
/// sealed into a cohort.
#[derive(Debug, Clone, Default)]
struct OpenCohort {
    deletes: u64,
    key_range_deletes: u64,
    first_tick: Option<Tick>,
    last_tick: Tick,
}

/// The per-shard delete-lifecycle ledger. See the module docs for the
/// cohort model; callers hold the engine's state lock at every
/// mutation site, so the interior mutex is uncontended.
#[derive(Debug)]
pub struct DeleteLedger {
    shard: usize,
    open: OpenCohort,
    next_epoch: u64,
    /// Epochs sealed but not yet flushed, in seal order. Every seal
    /// pushes (even delete-free ones) because flushes pop sealed
    /// memtables FIFO — the queue keeps epochs aligned with flush
    /// completions.
    pending_flush: VecDeque<u64>,
    cohorts: BTreeMap<u64, CohortRecord>,
}

impl DeleteLedger {
    /// An empty ledger for `shard`.
    pub fn new(shard: usize) -> DeleteLedger {
        DeleteLedger {
            shard,
            open: OpenCohort::default(),
            next_epoch: 0,
            pending_flush: VecDeque::new(),
            cohorts: BTreeMap::new(),
        }
    }

    /// Record deletes committed into the active generation at `tick`.
    pub fn note_deletes(&mut self, point: u64, key_range: u64, tick: Tick) {
        if point == 0 && key_range == 0 {
            return;
        }
        self.open.deletes += point;
        self.open.key_range_deletes += key_range;
        self.open.first_tick = Some(self.open.first_tick.map_or(tick, |t| t.min(tick)));
        self.open.last_tick = self.open.last_tick.max(tick);
    }

    /// The active generation was sealed covering `[min_seqno,
    /// max_seqno]`. Returns the cohort's epoch if it carried deletes.
    pub fn seal(&mut self, min_seqno: SeqNo, max_seqno: SeqNo, now: Tick) -> Option<u64> {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.pending_flush.push_back(epoch);
        let open = std::mem::take(&mut self.open);
        let first = open.first_tick?;
        self.cohorts.insert(
            epoch,
            CohortRecord {
                shard: self.shard,
                epoch,
                min_seqno,
                max_seqno,
                deletes: open.deletes,
                key_range_deletes: open.key_range_deletes,
                first_delete_tick: first,
                last_delete_tick: open.last_tick,
                sealed_tick: Some(now),
                flushed_tick: None,
                deepest_level: None,
                resolved: 0,
                purged_tick: None,
                vlog_pending: BTreeSet::new(),
                vlog_reclaimed_tick: None,
            },
        );
        self.evict_resolved();
        Some(epoch)
    }

    /// The oldest sealed generation finished flushing. Returns the
    /// flushed cohort's epoch if tracked.
    pub fn flushed(&mut self, now: Tick) -> Option<u64> {
        let epoch = self.pending_flush.pop_front()?;
        let c = self.cohorts.get_mut(&epoch)?;
        c.flushed_tick = Some(now);
        Some(epoch)
    }

    /// A compaction moved entries from files spanning the given seqno
    /// windows into `output_level`. Stamps every cohort whose seqno
    /// range intersects an input window and whose deepest level is
    /// shallower than the output; returns the epochs that deepened.
    pub fn entered_level(
        &mut self,
        input_windows: &[(SeqNo, SeqNo)],
        output_level: u64,
        now: Tick,
    ) -> Vec<u64> {
        let mut deepened = Vec::new();
        for c in self.cohorts.values_mut() {
            let touched = input_windows
                .iter()
                .any(|&(lo, hi)| lo <= c.max_seqno && c.min_seqno <= hi);
            if !touched {
                continue;
            }
            match c.deepest_level {
                Some((level, _)) if level >= output_level => {}
                _ => {
                    c.deepest_level = Some((output_level, now));
                    deepened.push(c.epoch);
                }
            }
        }
        deepened
    }

    /// One member tombstone (seqno `seqno`) was purged or superseded.
    /// Returns the epoch of a cohort that just fully purged.
    pub fn tombstone_resolved(&mut self, seqno: SeqNo, now: Tick) -> Option<u64> {
        let c = self
            .cohorts
            .values_mut()
            .find(|c| c.min_seqno <= seqno && seqno <= c.max_seqno)?;
        c.resolved += 1;
        if c.resolved >= c.total_deletes() && c.purged_tick.is_none() {
            c.purged_tick = Some(now);
            return Some(c.epoch);
        }
        None
    }

    /// A vlog extent stamped `stamp` (its delete's tick) went dead in
    /// `segment`; the cohort whose delete window covers the stamp now
    /// waits on the segment's reclaim.
    pub fn vlog_dead(&mut self, segment: u64, stamp: Tick) {
        // Attribute by delete tick: the covering cohort, else the
        // newest cohort issued at or before the stamp, else the
        // newest overall (conservative — never silently untracked).
        let epoch = self
            .cohorts
            .values()
            .find(|c| c.first_delete_tick <= stamp && stamp <= c.last_delete_tick)
            .map(|c| c.epoch)
            .or_else(|| {
                self.cohorts
                    .values()
                    .rev()
                    .find(|c| c.first_delete_tick <= stamp)
                    .map(|c| c.epoch)
            })
            .or_else(|| self.cohorts.keys().next_back().copied());
        if let Some(epoch) = epoch {
            if let Some(c) = self.cohorts.get_mut(&epoch) {
                c.vlog_pending.insert(segment);
            }
        }
    }

    /// `segment`'s file was deleted: every cohort waiting on it is
    /// released. Returns epochs that just fully resolved their vlog
    /// obligations.
    pub fn vlog_reclaimed(&mut self, segment: u64, now: Tick) -> Vec<u64> {
        let mut done = Vec::new();
        for c in self.cohorts.values_mut() {
            if c.vlog_pending.remove(&segment) {
                c.vlog_reclaimed_tick = Some(c.vlog_reclaimed_tick.map_or(now, |t| t.max(now)));
                if c.vlog_pending.is_empty() {
                    done.push(c.epoch);
                }
            }
        }
        done
    }

    /// Every cohort, sealed epochs first, plus the open (unsealed)
    /// generation if it already carries deletes.
    pub fn snapshot(&self) -> Vec<CohortRecord> {
        let mut out: Vec<CohortRecord> = self.cohorts.values().cloned().collect();
        if let Some(first) = self.open.first_tick {
            out.push(CohortRecord {
                shard: self.shard,
                epoch: self.next_epoch,
                min_seqno: 0,
                max_seqno: SeqNo::MAX,
                deletes: self.open.deletes,
                key_range_deletes: self.open.key_range_deletes,
                first_delete_tick: first,
                last_delete_tick: self.open.last_tick,
                sealed_tick: None,
                flushed_tick: None,
                deepest_level: None,
                resolved: 0,
                purged_tick: None,
                vlog_pending: BTreeSet::new(),
                vlog_reclaimed_tick: None,
            });
        }
        out
    }

    fn evict_resolved(&mut self) {
        while self.cohorts.len() > COHORT_RETENTION {
            let victim = self
                .cohorts
                .iter()
                .find(|(_, c)| c.is_resolved())
                .map(|(&e, _)| e);
            match victim {
                Some(e) => {
                    self.cohorts.remove(&e);
                }
                // Nothing resolved to evict: keep everything — an
                // unresolved cohort is exactly what an audit must see.
                None => break,
            }
        }
    }
}

/// The compliance report behind `acheron audit`: the ledger's cohorts
/// plus the live gauges' unresolved delete-family ages, judged
/// against `D_th`.
#[derive(Debug, Clone, Default)]
pub struct DeleteAudit {
    /// Clock tick the audit was taken at.
    pub now: Tick,
    /// The FADE threshold to judge against (None = report only).
    pub d_th: Option<Tick>,
    /// Cohort records, every shard, epoch order within a shard.
    pub cohorts: Vec<CohortRecord>,
    /// Birth tick of the oldest live point/sort-key-range tombstone
    /// (from the gauges; covers state predating this process).
    pub oldest_live_tombstone_tick: Option<Tick>,
    /// Stamp tick of the oldest dead, unreclaimed vlog extent.
    pub oldest_vlog_dead_tick: Option<Tick>,
}

impl DeleteAudit {
    /// Cohorts whose oldest delete outlived `D_th`.
    pub fn violating_cohorts(&self) -> Vec<&CohortRecord> {
        match self.d_th {
            Some(d) => self
                .cohorts
                .iter()
                .filter(|c| c.violates(self.now, d))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether the audit passes: no cohort and no gauge-level delete
    /// family is older than `D_th`. Without a threshold the audit
    /// always passes (it is a report, not a judgment).
    pub fn ok(&self) -> bool {
        let Some(d) = self.d_th else { return true };
        if !self.violating_cohorts().is_empty() {
            return false;
        }
        for t0 in [self.oldest_live_tombstone_tick, self.oldest_vlog_dead_tick]
            .into_iter()
            .flatten()
        {
            if self.now.saturating_sub(t0) > d {
                return false;
            }
        }
        true
    }

    /// Full text report; the final line is `status: OK …` or
    /// `status: VIOLATION …` naming the worst offender.
    pub fn render(&self) -> String {
        let mut out = match self.d_th {
            Some(d) => format!(
                "# delete-lifecycle audit @ tick {}, D_th = {}\n",
                self.now, d
            ),
            None => format!(
                "# delete-lifecycle audit @ tick {} (no D_th set)\n",
                self.now
            ),
        };
        match self.oldest_live_tombstone_tick {
            Some(t0) => out.push_str(&format!(
                "unresolved tombstone age (point + key-range): {}\n",
                self.now.saturating_sub(t0)
            )),
            None => out.push_str("unresolved tombstone age (point + key-range): none live\n"),
        }
        match self.oldest_vlog_dead_tick {
            Some(t0) => out.push_str(&format!(
                "unreclaimed vlog extent age: {}\n",
                self.now.saturating_sub(t0)
            )),
            None => out.push_str("unreclaimed vlog extent age: none dead\n"),
        }
        if self.cohorts.is_empty() {
            out.push_str("no tombstone cohorts recorded this process lifetime\n");
        }
        for c in &self.cohorts {
            out.push_str(&c.render(self.now, self.d_th));
            out.push('\n');
        }
        let violators = self.violating_cohorts();
        if self.ok() {
            out.push_str(&format!("status: OK ({} cohorts)\n", self.cohorts.len()));
        } else if let Some(worst) = violators.iter().max_by_key(|c| c.age(self.now)) {
            out.push_str(&format!(
                "status: VIOLATION — cohort shard={} epoch={} age={} exceeds D_th={}\n",
                worst.shard,
                worst.epoch,
                worst.age(self.now),
                self.d_th.unwrap_or(0)
            ));
        } else {
            // Gauge-level violation with no offending cohort tracked
            // (state predating this process).
            out.push_str(&format!(
                "status: VIOLATION — unresolved delete age exceeds D_th={}\n",
                self.d_th.unwrap_or(0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(every: u64) -> Tracer {
        Tracer::new(every, Arc::new(AtomicU64::new(0)))
    }

    #[test]
    fn sampler_off_is_never_hit() {
        let t = tracer(0);
        assert!(!t.enabled());
        for _ in 0..100 {
            assert!(t.sample(TraceOp::Put).is_none());
        }
    }

    #[test]
    fn sampler_every_power_of_two() {
        let t = tracer(4);
        let hits = (0..32).filter(|_| t.sample(TraceOp::Get).is_some()).count();
        assert_eq!(hits, 8, "one in four ops sampled");
        let t1 = tracer(1);
        assert!((0..10).all(|_| t1.sample(TraceOp::Get).is_some()));
    }

    #[test]
    fn trace_ids_come_from_the_shared_allocator() {
        let ids = Arc::new(AtomicU64::new(0));
        let a = Tracer::new(1, Arc::clone(&ids));
        let b = Tracer::new(1, Arc::clone(&ids));
        let ta = a.sample(TraceOp::Put).unwrap();
        let tb = b.sample(TraceOp::Get).unwrap();
        assert_ne!(ta.trace_id, tb.trace_id, "fleet-unique ids");
    }

    #[test]
    fn trace_buf_accumulates_and_finishes_with_total() {
        let t = tracer(1);
        let mut buf = t.sample(TraceOp::Get).unwrap();
        buf.add(TraceStage::TableProbes, 1);
        buf.add(TraceStage::TableProbes, 2);
        buf.add(TraceStage::ViewClone, 5);
        let trace = buf.finish();
        assert_eq!(
            trace.spans[0],
            (TraceStage::TableProbes, 3),
            "repeat stages accumulate"
        );
        assert_eq!(trace.spans.last().unwrap().0, TraceStage::Total);
        t.record(trace.clone());
        assert_eq!(t.recent(), vec![trace]);
    }

    #[test]
    fn recent_buffer_keeps_newest() {
        let t = tracer(1);
        for _ in 0..(RECENT_TRACES + 10) {
            t.record(t.sample(TraceOp::Put).unwrap().finish());
        }
        let recent = t.recent();
        assert_eq!(recent.len(), RECENT_TRACES);
        assert!(recent[0].trace_id < recent.last().unwrap().trace_id);
    }

    #[test]
    fn stage_and_op_codes_roundtrip() {
        for code in 0..17 {
            let s = TraceStage::from_code(code).unwrap();
            assert_eq!(s.code(), code);
        }
        assert!(TraceStage::from_code(17).is_none());
        for code in 0..4 {
            let o = TraceOp::from_code(code).unwrap();
            assert_eq!(o.code(), code);
        }
        assert!(TraceOp::from_code(4).is_none());
        for code in 0..5 {
            let c = CohortStage::from_code(code).unwrap();
            assert_eq!(c.code(), code);
        }
        assert!(CohortStage::from_code(5).is_none());
    }

    fn full_lifecycle_ledger() -> DeleteLedger {
        let mut l = DeleteLedger::new(0);
        l.note_deletes(2, 1, 100);
        l.note_deletes(1, 0, 120);
        let epoch = l.seal(10, 20, 130).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(l.flushed(140), Some(0));
        assert_eq!(l.entered_level(&[(10, 20)], 2, 200), vec![0]);
        assert!(
            l.entered_level(&[(10, 20)], 1, 210).is_empty(),
            "shallower outputs never regress the deepest level"
        );
        l.vlog_dead(7, 110);
        assert_eq!(l.tombstone_resolved(12, 300), None);
        assert_eq!(l.tombstone_resolved(15, 310), None);
        // Three of four members resolved: the cohort is not yet purged.
        assert_eq!(l.tombstone_resolved(11, 320), None);
        l
    }

    #[test]
    fn ledger_tracks_the_full_lifecycle() {
        let mut l = full_lifecycle_ledger();
        let snap = l.snapshot();
        assert_eq!(snap.len(), 1);
        let c = &snap[0];
        assert_eq!((c.deletes, c.key_range_deletes), (3, 1));
        assert_eq!(c.first_delete_tick, 100);
        assert_eq!(c.sealed_tick, Some(130));
        assert_eq!(c.flushed_tick, Some(140));
        assert_eq!(c.deepest_level, Some((2, 200)));
        assert_eq!(c.purged_tick, None, "one krt member still live");
        assert!(!c.is_resolved());
        // Fourth member resolves via the krt-purge path.
        assert_eq!(l.tombstone_resolved(13, 330), Some(0));
        // Still unresolved: the vlog extent is pending.
        let c = l.snapshot().pop().unwrap();
        assert_eq!(c.purged_tick, Some(330));
        assert!(!c.is_resolved());
        assert_eq!(l.vlog_reclaimed(7, 400), vec![0]);
        let c = l.snapshot().pop().unwrap();
        assert!(c.is_resolved());
        assert_eq!(c.resolve_tick(), Some(400), "max of purge and reclaim");
        assert_eq!(c.age(9_999), 300, "resolved age is fixed");
        assert!(!c.violates(9_999, 300));
        assert!(c.violates(9_999, 299));
    }

    #[test]
    fn delete_free_seals_keep_flush_alignment() {
        let mut l = DeleteLedger::new(3);
        // Generation 0: no deletes.
        assert_eq!(l.seal(1, 5, 10), None);
        // Generation 1: deletes.
        l.note_deletes(1, 0, 20);
        assert_eq!(l.seal(6, 9, 30), Some(1));
        // Flushes pop FIFO: first completes the delete-free epoch.
        assert_eq!(l.flushed(40), None);
        assert_eq!(l.flushed(50), Some(1));
        assert_eq!(l.snapshot()[0].flushed_tick, Some(50));
        assert_eq!(l.snapshot()[0].shard, 3);
    }

    #[test]
    fn open_generation_appears_in_snapshots() {
        let mut l = DeleteLedger::new(0);
        l.note_deletes(5, 0, 77);
        let snap = l.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].sealed_tick, None);
        assert_eq!(snap[0].first_delete_tick, 77);
        assert!(!snap[0].is_resolved());
    }

    #[test]
    fn audit_judges_cohorts_and_gauge_families() {
        let mut l = full_lifecycle_ledger();
        l.tombstone_resolved(13, 330);
        l.vlog_reclaimed(7, 350);
        let audit = DeleteAudit {
            now: 1_000,
            d_th: Some(500),
            cohorts: l.snapshot(),
            oldest_live_tombstone_tick: None,
            oldest_vlog_dead_tick: None,
        };
        assert!(audit.ok(), "{}", audit.render());
        assert!(audit.render().contains("status: OK (1 cohorts)"));

        // Injected overdue cohort: resolved too late.
        let mut late = audit.clone();
        late.cohorts[0].purged_tick = Some(900);
        assert!(!late.ok());
        let report = late.render();
        assert!(
            report.contains("status: VIOLATION — cohort shard=0 epoch=0"),
            "{report}"
        );

        // Gauge-level violation without a tracked cohort.
        let stale = DeleteAudit {
            now: 1_000,
            d_th: Some(100),
            cohorts: Vec::new(),
            oldest_live_tombstone_tick: Some(10),
            oldest_vlog_dead_tick: None,
        };
        assert!(!stale.ok());
        assert!(stale.render().contains("status: VIOLATION"));

        // No threshold: report only, never a violation.
        let report_only = DeleteAudit {
            d_th: None,
            ..late.clone()
        };
        assert!(report_only.ok());
    }

    #[test]
    fn eviction_drops_resolved_cohorts_only() {
        let mut l = DeleteLedger::new(0);
        for i in 0..(COHORT_RETENTION as u64 + 8) {
            l.note_deletes(1, 0, i * 10);
            let lo = i * 100;
            l.seal(lo, lo + 99, i * 10 + 1);
            l.flushed(i * 10 + 2);
            // Resolve all but the last few so eviction has victims.
            if i < COHORT_RETENTION as u64 {
                l.tombstone_resolved(lo, i * 10 + 3);
            }
        }
        let snap = l.snapshot();
        assert!(snap.len() <= COHORT_RETENTION);
        // The unresolved tail always survives.
        assert!(snap.iter().filter(|c| !c.is_resolved()).count() >= 8);
    }

    #[test]
    fn render_traces_lists_each_trace() {
        let t = tracer(1);
        let mut buf = t.sample(TraceOp::Put).unwrap();
        buf.add(TraceStage::CommitQueueWait, 3);
        t.record(buf.finish());
        let text = render_traces(&t.recent());
        assert!(text.contains("# 1 recent traces"), "{text}");
        assert!(text.contains("op=put"), "{text}");
        assert!(text.contains("commit_queue_wait_micros"), "{text}");
        assert!(text.contains("total_micros"), "{text}");
    }
}
