//! Versions: the immutable description of the tree's file layout.
//!
//! A [`Version`] is a snapshot of which table files live at which level
//! (and, for tiering, in which run), plus the set of live secondary
//! range tombstones. Mutations (flush, compaction, range delete)
//! produce a *new* version; readers hold an `Arc<Version>` and are never
//! invalidated mid-query.

use std::sync::Arc;

use acheron_sstable::{Table, TableStats};
use acheron_types::{
    FragmentedRangeTombstones, KeyRangeTombstone, RangeTombstone, Result, SeqNo, Tick,
};
use bytes::Bytes;

/// Metadata for one live table file.
#[derive(Debug)]
pub struct FileMeta {
    /// Unique file number (names the `.sst` file).
    pub id: u64,
    /// Level the file lives at.
    pub level: usize,
    /// Run id within the level (tiering keeps several runs per level;
    /// leveling always uses run 0).
    pub run: u64,
    /// File size in bytes.
    pub size_bytes: u64,
    /// The table's stats block (tombstone metadata, fences, counts).
    pub stats: TableStats,
    /// Tick at which the file was created (flush or compaction output).
    pub created_tick: Tick,
    /// The open table reader.
    pub table: Arc<Table>,
}

impl FileMeta {
    /// Smallest user key in the file.
    pub fn min_key(&self) -> &Bytes {
        &self.stats.min_user_key
    }

    /// Largest user key in the file.
    pub fn max_key(&self) -> &Bytes {
        &self.stats.max_user_key
    }

    /// True if the file's key range overlaps `[lo, hi]` (user keys,
    /// inclusive).
    pub fn overlaps_keys(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.stats.entry_count > 0 && &self.min_key()[..] <= hi && lo <= &self.max_key()[..]
    }

    /// True if the file might contain `key`.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.overlaps_keys(key, key)
    }

    /// Age of the file's oldest tombstone at `now` (0 if tombstone-free).
    pub fn oldest_tombstone_age(&self, now: Tick) -> Tick {
        match self.stats.oldest_tombstone_tick {
            Some(t) => now.saturating_sub(t),
            None => 0,
        }
    }

    /// True if the file carries sort-key range tombstones. Such a file
    /// may hold zero entries (a pure "carrier"); it still needs
    /// compaction to push its tombstones down and eventually purge them.
    pub fn has_key_range_tombstones(&self) -> bool {
        !self.stats.range_tombstones.is_empty()
    }

    /// The union span of the file's sort-key range tombstones, `None`
    /// when it carries none. The compaction picker folds this into the
    /// file's effective key span so carrier files (no entries, hence no
    /// key fences) still pull in the overlapping files whose covered
    /// entries must be dropped before the tombstones can purge.
    pub fn key_range_tombstone_span(&self) -> Option<(Bytes, Bytes)> {
        let mut lo: Option<Bytes> = None;
        let mut hi: Option<Bytes> = None;
        for k in &self.stats.range_tombstones {
            lo = Some(lo.map_or(k.start.clone(), |c: Bytes| c.min(k.start.clone())));
            hi = Some(hi.map_or(k.end.clone(), |c: Bytes| c.max(k.end.clone())));
        }
        lo.zip(hi)
    }
}

/// An immutable snapshot of the file layout.
#[derive(Debug, Clone, Default)]
pub struct Version {
    /// `levels[i]` = files at level i. Within a level, files are sorted
    /// by (run, min_key); leveling levels (single run) are therefore
    /// sorted by min_key with disjoint ranges (except L0, where runs are
    /// per-file and ranges overlap).
    pub levels: Vec<Vec<Arc<FileMeta>>>,
    /// Live secondary range tombstones, oldest first.
    pub range_tombstones: Vec<RangeTombstone>,
    /// Fragmented index over every sort-key range tombstone carried by a
    /// live file, rebuilt by [`Version::apply`] from the files' stats.
    /// Lookups binary-search it instead of consulting per-file lists.
    pub key_range_tombstones: Arc<FragmentedRangeTombstones>,
}

impl Version {
    /// An empty tree with `max_levels` levels.
    pub fn empty(max_levels: usize) -> Version {
        Version {
            levels: vec![Vec::new(); max_levels],
            range_tombstones: Vec::new(),
            key_range_tombstones: Arc::default(),
        }
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels
            .get(level)
            .map_or(0, |fs| fs.iter().map(|f| f.size_bytes).sum())
    }

    /// Number of files at `level`.
    pub fn level_files(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, |fs| fs.len())
    }

    /// Distinct runs at `level`.
    pub fn level_runs(&self, level: usize) -> usize {
        let Some(files) = self.levels.get(level) else {
            return 0;
        };
        let mut runs: Vec<u64> = files.iter().map(|f| f.run).collect();
        runs.sort_unstable();
        runs.dedup();
        runs.len()
    }

    /// All live files, any order.
    pub fn all_files(&self) -> impl Iterator<Item = &Arc<FileMeta>> + '_ {
        self.levels.iter().flatten()
    }

    /// Total live point tombstones across all files.
    pub fn live_tombstones(&self) -> u64 {
        self.all_files().map(|f| f.stats.tombstone_count).sum()
    }

    /// Total live entries across all files.
    pub fn live_entries(&self) -> u64 {
        self.all_files().map(|f| f.stats.entry_count).sum()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.all_files().map(|f| f.size_bytes).sum()
    }

    /// Deepest level that holds any file.
    pub fn deepest_nonempty_level(&self) -> Option<usize> {
        (0..self.levels.len())
            .rev()
            .find(|&l| !self.levels[l].is_empty())
    }

    /// Files at `level` overlapping the user-key range `[lo, hi]`.
    pub fn overlapping_files(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<FileMeta>> {
        self.levels
            .get(level)
            .map(|fs| {
                fs.iter()
                    .filter(|f| f.overlaps_keys(lo, hi))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if any file *below* `level` overlaps `[lo, hi]` — if not,
    /// a compaction into `level` is effectively bottommost for that key
    /// range and may drop tombstones.
    pub fn overlaps_below(&self, level: usize, lo: &[u8], hi: &[u8]) -> bool {
        ((level + 1)..self.levels.len())
            .any(|l| self.levels[l].iter().any(|f| f.overlaps_keys(lo, hi)))
    }

    /// Apply a set of edits, producing the successor version.
    pub fn apply(
        &self,
        add: Vec<Arc<FileMeta>>,
        delete_ids: &[u64],
        add_rts: &[RangeTombstone],
        drop_rt_seqnos: &[SeqNo],
    ) -> Version {
        let mut next = self.clone();
        for level in next.levels.iter_mut() {
            level.retain(|f| !delete_ids.contains(&f.id));
        }
        for f in add {
            let level = f.level;
            if level >= next.levels.len() {
                next.levels.resize(level + 1, Vec::new());
            }
            next.levels[level].push(f);
        }
        for level in next.levels.iter_mut() {
            level.sort_by(|a, b| {
                a.run
                    .cmp(&b.run)
                    .then_with(|| a.min_key().cmp(b.min_key()))
                    .then_with(|| a.id.cmp(&b.id))
            });
        }
        next.range_tombstones.extend_from_slice(add_rts);
        next.range_tombstones
            .retain(|rt| !drop_rt_seqnos.contains(&rt.seqno));
        let krts = next.collect_key_range_tombstones();
        next.key_range_tombstones = if krts.is_empty() {
            Arc::default()
        } else {
            Arc::new(FragmentedRangeTombstones::build(&krts))
        };
        next
    }

    /// Every sort-key range tombstone carried by a live file.
    pub fn collect_key_range_tombstones(&self) -> Vec<KeyRangeTombstone> {
        self.all_files()
            .flat_map(|f| f.stats.range_tombstones.iter().cloned())
            .collect()
    }

    /// Total live sort-key range tombstones across all files.
    pub fn live_key_range_tombstones(&self) -> u64 {
        self.all_files()
            .map(|f| f.stats.range_tombstones.len() as u64)
            .sum()
    }

    /// Range tombstones that can be retired: no live file still holds an
    /// entry they could shadow (decided from the files' seqno and dkey
    /// fences).
    pub fn retirable_range_tombstones(&self) -> Vec<SeqNo> {
        self.range_tombstones
            .iter()
            .filter(|rt| {
                !self.all_files().any(|f| {
                    f.stats.entry_count > 0
                        && f.stats.min_seqno < rt.seqno
                        && rt.range.overlaps(f.stats.min_dkey, f.stats.max_dkey)
                })
            })
            .map(|rt| rt.seqno)
            .collect()
    }

    /// Internal consistency checks (invariant I6 at the version level):
    /// leveling levels must have disjoint, sorted key ranges per run.
    pub fn check_invariants(&self) -> Result<()> {
        use acheron_types::Error;
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            // Group by run; within a run ranges must be disjoint & sorted.
            let mut by_run: std::collections::BTreeMap<u64, Vec<&Arc<FileMeta>>> =
                std::collections::BTreeMap::new();
            for f in files {
                // Entry-free carrier files (range tombstones only) have
                // no key fences and cannot overlap anything.
                if f.stats.entry_count == 0 {
                    continue;
                }
                by_run.entry(f.run).or_default().push(f);
            }
            for (run, run_files) in by_run {
                for pair in run_files.windows(2) {
                    if pair[0].max_key() >= pair[1].min_key() {
                        return Err(Error::Internal(format!(
                            "level {level} run {run}: files {} and {} overlap",
                            pair[0].id, pair[1].id
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_sstable::{TableBuilder, TableOptions};
    use acheron_types::{DeleteKeyRange, Entry};
    use acheron_vfs::{MemFs, Vfs};

    /// Build a real FileMeta over a MemFs table.
    pub(crate) fn make_file(
        fs: &MemFs,
        id: u64,
        level: usize,
        keys: std::ops::Range<u32>,
        base_seq: u64,
    ) -> Arc<FileMeta> {
        let path = format!("{id:06}.sst");
        let mut b = TableBuilder::new(fs.create(&path).unwrap(), TableOptions::default()).unwrap();
        for (i, k) in keys.clone().enumerate() {
            b.add(&Entry::put(
                format!("key{k:06}").into_bytes(),
                b"v".to_vec(),
                base_seq + i as u64,
                u64::from(k),
            ))
            .unwrap();
        }
        let stats = b.finish().unwrap();
        let table = Table::open(fs.open(&path).unwrap()).unwrap();
        Arc::new(FileMeta {
            id,
            level,
            run: 0,
            size_bytes: fs.file_size(&path).unwrap(),
            stats,
            created_tick: 0,
            table,
        })
    }

    #[test]
    fn apply_adds_and_deletes() {
        let fs = MemFs::new();
        let v0 = Version::empty(3);
        let f1 = make_file(&fs, 1, 1, 0..10, 100);
        let f2 = make_file(&fs, 2, 1, 20..30, 200);
        let v1 = v0.apply(vec![f1, f2], &[], &[], &[]);
        assert_eq!(v1.level_files(1), 2);
        assert!(v1.level_bytes(1) > 0);
        let v2 = v1.apply(vec![], &[1], &[], &[]);
        assert_eq!(v2.level_files(1), 1);
        assert_eq!(v2.levels[1][0].id, 2);
        // v1 unchanged (immutability).
        assert_eq!(v1.level_files(1), 2);
    }

    #[test]
    fn files_sorted_by_min_key_after_apply() {
        let fs = MemFs::new();
        let v0 = Version::empty(3);
        let f_hi = make_file(&fs, 1, 1, 50..60, 100);
        let f_lo = make_file(&fs, 2, 1, 0..10, 200);
        let v1 = v0.apply(vec![f_hi, f_lo], &[], &[], &[]);
        assert_eq!(v1.levels[1][0].id, 2);
        assert_eq!(v1.levels[1][1].id, 1);
        v1.check_invariants().unwrap();
    }

    #[test]
    fn invariant_check_catches_overlap() {
        let fs = MemFs::new();
        let v0 = Version::empty(3);
        let a = make_file(&fs, 1, 1, 0..20, 100);
        let b = make_file(&fs, 2, 1, 10..30, 200);
        let v1 = v0.apply(vec![a, b], &[], &[], &[]);
        assert!(v1.check_invariants().is_err());
    }

    #[test]
    fn overlap_queries() {
        let fs = MemFs::new();
        let v = Version::empty(4).apply(
            vec![
                make_file(&fs, 1, 1, 0..10, 100),
                make_file(&fs, 2, 2, 5..15, 200),
            ],
            &[],
            &[],
            &[],
        );
        assert_eq!(v.overlapping_files(1, b"key000003", b"key000005").len(), 1);
        assert_eq!(v.overlapping_files(1, b"key000050", b"key000060").len(), 0);
        assert!(v.overlaps_below(1, b"key000007", b"key000008"));
        assert!(!v.overlaps_below(2, b"key000007", b"key000008"));
        assert_eq!(v.deepest_nonempty_level(), Some(2));
    }

    #[test]
    fn tombstone_and_entry_totals() {
        let fs = MemFs::new();
        let v = Version::empty(2).apply(vec![make_file(&fs, 1, 1, 0..50, 1)], &[], &[], &[]);
        assert_eq!(v.live_entries(), 50);
        assert_eq!(v.live_tombstones(), 0);
    }

    /// Build a FileMeta whose table carries sort-key range tombstones
    /// (and optionally no entries at all — a carrier file).
    fn make_krt_file(
        fs: &MemFs,
        id: u64,
        level: usize,
        keys: std::ops::Range<u32>,
        base_seq: u64,
        krts: Vec<KeyRangeTombstone>,
    ) -> Arc<FileMeta> {
        let path = format!("{id:06}.sst");
        let mut b = TableBuilder::new(fs.create(&path).unwrap(), TableOptions::default()).unwrap();
        for (i, k) in keys.clone().enumerate() {
            b.add(&Entry::put(
                format!("key{k:06}").into_bytes(),
                b"v".to_vec(),
                base_seq + i as u64,
                u64::from(k),
            ))
            .unwrap();
        }
        b.set_range_tombstones(krts);
        let stats = b.finish().unwrap();
        let table = Table::open(fs.open(&path).unwrap()).unwrap();
        Arc::new(FileMeta {
            id,
            level,
            run: 0,
            size_bytes: fs.file_size(&path).unwrap(),
            stats,
            created_tick: 0,
            table,
        })
    }

    fn krt(start: &str, end: &str, seqno: SeqNo, dkey: Tick) -> KeyRangeTombstone {
        KeyRangeTombstone {
            start: Bytes::copy_from_slice(start.as_bytes()),
            end: Bytes::copy_from_slice(end.as_bytes()),
            seqno,
            dkey,
        }
    }

    #[test]
    fn key_range_tombstones_aggregate_across_files() {
        let fs = MemFs::new();
        let f1 = make_krt_file(
            &fs,
            1,
            1,
            0..5,
            100,
            vec![krt("key000010", "key000020", 200, 7)],
        );
        let f2 = make_krt_file(
            &fs,
            2,
            2,
            30..35,
            10,
            vec![krt("key000040", "key000050", 90, 3)],
        );
        let v = Version::empty(4).apply(vec![f1, f2], &[], &[], &[]);
        assert_eq!(v.live_key_range_tombstones(), 2);
        assert_eq!(
            v.key_range_tombstones
                .max_seqno_covering(b"key000015", 1000),
            Some(200)
        );
        assert_eq!(
            v.key_range_tombstones
                .max_seqno_covering(b"key000045", 1000),
            Some(90)
        );
        assert_eq!(
            v.key_range_tombstones
                .max_seqno_covering(b"key000025", 1000),
            None
        );
        // Dropping the carrier file drops its tombstones from the index.
        let v2 = v.apply(vec![], &[1], &[], &[]);
        assert_eq!(v2.live_key_range_tombstones(), 1);
        assert_eq!(
            v2.key_range_tombstones
                .max_seqno_covering(b"key000015", 1000),
            None
        );
        v.check_invariants().unwrap();
    }

    #[test]
    fn carrier_files_pass_invariant_checks() {
        let fs = MemFs::new();
        // Two entry-free carriers in the same run: empty fences must not
        // be treated as overlapping ranges.
        let c1 = make_krt_file(&fs, 1, 1, 0..0, 0, vec![krt("a", "b", 10, 1)]);
        let c2 = make_krt_file(&fs, 2, 1, 0..0, 0, vec![krt("x", "z", 11, 2)]);
        let f = make_krt_file(&fs, 3, 1, 0..5, 100, vec![]);
        let v = Version::empty(3).apply(vec![c1, c2, f], &[], &[], &[]);
        v.check_invariants().unwrap();
        assert_eq!(v.live_key_range_tombstones(), 2);
        assert!(v.levels[1].iter().any(|f| f.has_key_range_tombstones()));
    }

    #[test]
    fn range_tombstone_lifecycle() {
        let fs = MemFs::new();
        // File with seqnos 100..110 and dkeys 0..10.
        let f = make_file(&fs, 1, 1, 0..10, 100);
        let rt_overlapping = RangeTombstone {
            seqno: 500,
            range: DeleteKeyRange::new(0, 5),
        };
        // Seqnos are unique in a real engine; the version identifies
        // tombstones by seqno, so the test keeps them distinct too.
        let rt_disjoint_dkey = RangeTombstone {
            seqno: 501,
            range: DeleteKeyRange::new(100, 200),
        };
        let rt_older = RangeTombstone {
            seqno: 50,
            range: DeleteKeyRange::new(0, 5),
        };
        let v = Version::empty(2).apply(
            vec![f],
            &[],
            &[rt_overlapping, rt_disjoint_dkey, rt_older],
            &[],
        );
        let retirable = v.retirable_range_tombstones();
        // Overlapping+newer cannot retire; dkey-disjoint can; older-than-
        // every-entry can (it shadows nothing).
        assert!(!retirable.contains(&500), "newer overlapping rt must stay");
        assert!(retirable.contains(&501), "dkey-disjoint rt can retire");
        assert!(retirable.contains(&50), "rt older than all data can retire");

        // Dropping a file retires its tombstones on the next apply.
        let v2 = v.apply(vec![], &[1], &[], &[]);
        assert_eq!(v2.retirable_range_tombstones().len(), 3);
        let seqs: Vec<SeqNo> = v2.retirable_range_tombstones();
        let v3 = v2.apply(vec![], &[], &[], &seqs);
        assert!(v3.range_tombstones.is_empty());
    }
}
