//! Compaction picking: the *trigger* and *data movement* primitives.
//!
//! Following the group's compaction taxonomy, a strategy is the product
//! of a trigger (level saturation, L0 file count, FADE TTL expiry), a
//! layout (leveling / tiering / lazy-leveling), a granularity (whole
//! level for tiering, single file + overlap for leveling), and a
//! data-movement policy (which file moves first). [`Picker::pick`]
//! inspects a [`Version`] and produces at most one [`CompactionTask`].

use std::sync::Arc;

use acheron_types::Tick;
use bytes::Bytes;
use parking_lot::Mutex;

use crate::fade::TtlSchedule;
use crate::options::{CompactionLayout, DbOptions, FilePickPolicy};
use crate::version::{FileMeta, Version};

/// Why a compaction was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionReason {
    /// L0 accumulated too many files.
    L0Saturation,
    /// A level exceeded its byte budget.
    LevelSaturation,
    /// FADE: a file's oldest tombstone outlived its level TTL.
    TtlExpired,
    /// Explicit request (tests, `Db::compact_all`).
    Manual,
}

impl CompactionReason {
    /// Lowercase name for logs and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            CompactionReason::L0Saturation => "l0_saturation",
            CompactionReason::LevelSaturation => "level_saturation",
            CompactionReason::TtlExpired => "ttl_expired",
            CompactionReason::Manual => "manual",
        }
    }

    /// Stable numeric code (event-ring slot encoding).
    pub fn code(self) -> u64 {
        match self {
            CompactionReason::L0Saturation => 0,
            CompactionReason::LevelSaturation => 1,
            CompactionReason::TtlExpired => 2,
            CompactionReason::Manual => 3,
        }
    }

    /// Inverse of [`CompactionReason::code`].
    pub fn from_code(code: u64) -> Option<CompactionReason> {
        Some(match code {
            0 => CompactionReason::L0Saturation,
            1 => CompactionReason::LevelSaturation,
            2 => CompactionReason::TtlExpired,
            3 => CompactionReason::Manual,
            _ => return None,
        })
    }
}

/// A unit of compaction work.
#[derive(Debug, Clone)]
pub struct CompactionTask {
    /// Input level.
    pub level: usize,
    /// Files taken from `level`.
    pub inputs: Vec<Arc<FileMeta>>,
    /// Overlapping files taken from the output level (empty for tiering,
    /// which stacks a new run instead of merging).
    pub next_level_inputs: Vec<Arc<FileMeta>>,
    /// Level the merged output lands in.
    pub output_level: usize,
    /// Run id for the output files.
    pub output_run: u64,
    /// Trigger that scheduled this task.
    pub reason: CompactionReason,
}

impl CompactionTask {
    /// All input files (both levels).
    pub fn all_inputs(&self) -> impl Iterator<Item = &Arc<FileMeta>> {
        self.inputs.iter().chain(self.next_level_inputs.iter())
    }

    /// The union user-key range of all inputs, `None` if inputs are all
    /// empty tables.
    pub fn key_range(&self) -> Option<(Bytes, Bytes)> {
        let mut lo: Option<Bytes> = None;
        let mut hi: Option<Bytes> = None;
        for f in self.all_inputs().filter(|f| f.stats.entry_count > 0) {
            lo = Some(match lo {
                Some(cur) => cur.min(f.min_key().clone()),
                None => f.min_key().clone(),
            });
            hi = Some(match hi {
                Some(cur) => cur.max(f.max_key().clone()),
                None => f.max_key().clone(),
            });
        }
        Some((lo?, hi?))
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.all_inputs().map(|f| f.size_bytes).sum()
    }
}

/// A registered in-flight compaction: releases its claim marks when
/// passed back to [`Picker::release`]. Obtained from
/// [`Picker::pick_claimed`]; exactly one claim exists per running
/// background compaction.
#[derive(Debug)]
pub struct CompactionClaim {
    id: u64,
}

/// Claim marks for one in-flight compaction: the levels it reads and
/// writes, its input file ids, and its user-key span. A candidate task
/// conflicts (and is not handed out) when it shares a file id or its key
/// span overlaps — so two workers never compact overlapping inputs and
/// never install overlapping outputs into the same run.
#[derive(Debug)]
struct InFlightMark {
    id: u64,
    input_level: usize,
    output_level: usize,
    file_ids: Vec<u64>,
    key_range: Option<(Bytes, Bytes)>,
}

/// Stateful compaction picker (per-DB; holds round-robin cursors, the
/// FADE TTL schedule, and the in-flight claim marks the background
/// executor uses to keep concurrent compactions disjoint).
pub struct Picker {
    opts: DbOptions,
    ttl: Option<TtlSchedule>,
    /// Round-robin cursor per level: the max user key compacted last.
    cursors: Mutex<Vec<Option<Bytes>>>,
    /// `(next claim id, marks of running compactions)`.
    in_flight: Mutex<(u64, Vec<InFlightMark>)>,
}

impl Picker {
    /// Build a picker for the given options.
    pub fn new(opts: &DbOptions) -> Picker {
        let ttl = opts.fade.as_ref().map(|_| TtlSchedule::new(opts));
        Picker {
            opts: opts.clone(),
            ttl,
            cursors: Mutex::new(vec![None; opts.max_levels]),
            in_flight: Mutex::new((0, Vec::new())),
        }
    }

    /// The TTL schedule, if FADE is enabled.
    pub fn ttl_schedule(&self) -> Option<&TtlSchedule> {
        self.ttl.as_ref()
    }

    /// Pick the most urgent compaction and register it as in flight, or
    /// `None` when there is nothing to do *or* the urgent task overlaps
    /// a compaction already running (the caller retries after the
    /// conflicting task installs). Callers must pass the returned claim
    /// to [`Picker::release`] once the task has been installed or
    /// abandoned.
    pub fn pick_claimed(
        &self,
        version: &Version,
        now: Tick,
    ) -> Option<(CompactionTask, CompactionClaim)> {
        let task = self.pick(version, now)?;
        let file_ids: Vec<u64> = task.all_inputs().map(|f| f.id).collect();
        let key_range = task.key_range();
        let mut guard = self.in_flight.lock();
        let (next_id, marks) = &mut *guard;
        let conflicts = marks.iter().any(|m| {
            m.file_ids.iter().any(|id| file_ids.contains(id))
                || spans_overlap(&m.key_range, &key_range)
        });
        if conflicts {
            return None;
        }
        let id = *next_id;
        *next_id += 1;
        marks.push(InFlightMark {
            id,
            input_level: task.level,
            output_level: task.output_level,
            file_ids,
            key_range,
        });
        Some((task, CompactionClaim { id }))
    }

    /// Drop the in-flight mark registered by [`Picker::pick_claimed`].
    pub fn release(&self, claim: CompactionClaim) {
        self.in_flight.lock().1.retain(|m| m.id != claim.id);
    }

    /// Levels currently touched by in-flight compactions, as
    /// `(input level, output level)` pairs (introspection/debugging).
    pub fn in_flight_levels(&self) -> Vec<(usize, usize)> {
        self.in_flight
            .lock()
            .1
            .iter()
            .map(|m| (m.input_level, m.output_level))
            .collect()
    }

    /// Pick the most urgent compaction, if any.
    pub fn pick(&self, version: &Version, now: Tick) -> Option<CompactionTask> {
        // FADE's TTL trigger outranks saturation: persistence is a
        // correctness deadline, saturation only a performance one.
        if let Some(task) = self.pick_ttl_expired(version, now) {
            return Some(task);
        }
        match self.opts.layout {
            CompactionLayout::Leveling => self.pick_leveling(version),
            CompactionLayout::Tiering => self.pick_tiering(version, false),
            CompactionLayout::LazyLeveling => self.pick_tiering(version, true),
        }
    }

    /// FADE trigger: the most overdue expired file, if any.
    fn pick_ttl_expired(&self, version: &Version, now: Tick) -> Option<CompactionTask> {
        let ttl = self.ttl.as_ref()?;
        let expired = version
            .all_files()
            .filter(|f| ttl.file_expired(f, now))
            .max_by_key(|f| ttl.overdue_by(f, now))?
            .clone();
        let level = expired.level;
        let bottom = self.opts.max_levels - 1;
        if level == 0 {
            // L0 files overlap in both keys and seqnos: take them all so
            // newer versions never sink below older ones.
            let inputs = version.levels[0].clone();
            let (lo, hi) = key_span(&inputs)?;
            let next = version.overlapping_files(1, &lo, &hi);
            return Some(CompactionTask {
                level: 0,
                inputs,
                next_level_inputs: next,
                output_level: 1,
                output_run: 0,
                reason: CompactionReason::TtlExpired,
            });
        }
        let output_level = (level + 1).min(bottom);
        let mut inputs = vec![Arc::clone(&expired)];
        let next = if level == bottom {
            // Within-bottom rewrite purges the overdue tombstones. A
            // range tombstone only purges once the entries it covers
            // are gone, so the rewrite must absorb every bottom file
            // its span touches — closed over entry hulls so the merge
            // stays bottommost (tiering runs overlap in key space).
            if expired.has_key_range_tombstones() {
                if let Some((mut lo, mut hi)) = key_span(std::slice::from_ref(&expired)) {
                    loop {
                        let mut grew = false;
                        for f in &version.levels[bottom] {
                            if inputs.iter().any(|g| g.id == f.id) || !f.overlaps_keys(&lo, &hi) {
                                continue;
                            }
                            lo = lo.min(f.min_key().clone());
                            hi = hi.max(f.max_key().clone());
                            inputs.push(Arc::clone(f));
                            grew = true;
                        }
                        if !grew {
                            break;
                        }
                    }
                }
            }
            Vec::new()
        } else {
            match key_span(std::slice::from_ref(&expired)) {
                Some((lo, hi)) => version.overlapping_files(output_level, &lo, &hi),
                None => Vec::new(),
            }
        };
        Some(CompactionTask {
            level,
            inputs,
            next_level_inputs: next,
            output_level,
            output_run: 0,
            reason: CompactionReason::TtlExpired,
        })
    }

    /// Classic leveled compaction: L0 by file count, deeper levels by
    /// byte budget, one file at a time chosen by the pick policy.
    fn pick_leveling(&self, version: &Version) -> Option<CompactionTask> {
        // L0 first.
        if version.level_files(0) >= self.opts.level0_file_limit {
            let inputs = version.levels[0].clone();
            let (lo, hi) = key_span(&inputs)?;
            let next = version.overlapping_files(1, &lo, &hi);
            return Some(CompactionTask {
                level: 0,
                inputs,
                next_level_inputs: next,
                output_level: 1,
                output_run: 0,
                reason: CompactionReason::L0Saturation,
            });
        }
        // Deeper levels: highest fill ratio first.
        let bottom = self.opts.max_levels - 1;
        let mut worst: Option<(f64, usize)> = None;
        for level in 1..bottom {
            let bytes = version.level_bytes(level);
            let target = self.opts.level_target_bytes(level);
            if bytes > target {
                let ratio = bytes as f64 / target as f64;
                if worst.is_none_or(|(r, _)| ratio > r) {
                    worst = Some((ratio, level));
                }
            }
        }
        let (_, level) = worst?;
        let policy = self
            .opts
            .fade
            .as_ref()
            .map(|f| f.saturation_pick)
            .unwrap_or(self.opts.baseline_pick);
        let file = self.choose_file(version, level, policy)?;
        {
            let mut cursors = self.cursors.lock();
            cursors[level] = Some(file.max_key().clone());
        }
        let next = version.overlapping_files(level + 1, file.min_key(), file.max_key());
        Some(CompactionTask {
            level,
            inputs: vec![file],
            next_level_inputs: next,
            output_level: level + 1,
            output_run: 0,
            reason: CompactionReason::LevelSaturation,
        })
    }

    /// Apply the data-movement policy at `level`.
    fn choose_file(
        &self,
        version: &Version,
        level: usize,
        policy: FilePickPolicy,
    ) -> Option<Arc<FileMeta>> {
        let files = version.levels.get(level)?;
        if files.is_empty() {
            return None;
        }
        let overlap_bytes = |f: &Arc<FileMeta>| -> u64 {
            version
                .overlapping_files(level + 1, f.min_key(), f.max_key())
                .iter()
                .map(|g| g.size_bytes)
                .sum()
        };
        match policy {
            FilePickPolicy::MinOverlap => files
                .iter()
                .min_by_key(|f| (overlap_bytes(f), f.id))
                .cloned(),
            FilePickPolicy::TombstoneDensity => files
                .iter()
                .max_by(|a, b| {
                    a.stats
                        .tombstone_density()
                        .partial_cmp(&b.stats.tombstone_density())
                        .expect("densities are finite")
                        // Ties: cheaper file first.
                        .then(overlap_bytes(b).cmp(&overlap_bytes(a)))
                })
                .cloned(),
            FilePickPolicy::OldestTombstone => files
                .iter()
                .min_by_key(|f| {
                    (
                        f.stats.oldest_tombstone_tick.unwrap_or(u64::MAX),
                        overlap_bytes(f),
                    )
                })
                .cloned(),
            FilePickPolicy::RoundRobin => {
                let cursors = self.cursors.lock();
                let cursor = cursors[level].clone();
                drop(cursors);
                match cursor {
                    Some(c) => files
                        .iter()
                        .find(|f| f.min_key() > &c)
                        .or_else(|| files.first())
                        .cloned(),
                    None => files.first().cloned(),
                }
            }
        }
    }

    /// Tiering: a level with `T` runs spills them all into one new run of
    /// the next level. With `lazy` (lazy leveling), the bottom level is
    /// kept as a single leveled run.
    fn pick_tiering(&self, version: &Version, lazy: bool) -> Option<CompactionTask> {
        let bottom = self.opts.max_levels - 1;
        let t = self.opts.size_ratio as usize;
        for level in 0..=bottom {
            let trigger = if level == 0 {
                version.level_files(0) >= self.opts.level0_file_limit.max(t)
            } else {
                version.level_runs(level) >= t
            };
            if !trigger {
                continue;
            }
            let inputs = version.levels[level].clone();
            if inputs.is_empty() {
                continue;
            }
            let output_level = (level + 1).min(bottom);
            let merge_into_leveled_bottom = output_level == bottom && (lazy || level == bottom);
            let (next, output_run) = if merge_into_leveled_bottom {
                let (lo, hi) = key_span(&inputs)?;
                let next = if level == bottom {
                    Vec::new() // already the inputs
                } else {
                    version.overlapping_files(bottom, &lo, &hi)
                };
                (next, 0)
            } else {
                // Stack a fresh run on the target level.
                let next_run = version.levels[output_level]
                    .iter()
                    .map(|f| f.run + 1)
                    .max()
                    .unwrap_or(0);
                (Vec::new(), next_run)
            };
            return Some(CompactionTask {
                level,
                inputs,
                next_level_inputs: next,
                output_level,
                output_run,
                reason: if level == 0 {
                    CompactionReason::L0Saturation
                } else {
                    CompactionReason::LevelSaturation
                },
            });
        }
        None
    }
}

/// The min/max user keys across `files`: entry fences folded with
/// sort-key range-tombstone spans, so a carrier file (tombstones, no
/// entries) still contributes the keys its tombstones cover. `None`
/// only for completely empty tables.
fn key_span(files: &[Arc<FileMeta>]) -> Option<(Bytes, Bytes)> {
    let mut lo: Option<Bytes> = None;
    let mut hi: Option<Bytes> = None;
    let fold = |lo: &mut Option<Bytes>, hi: &mut Option<Bytes>, flo: Bytes, fhi: Bytes| {
        *lo = Some(lo.take().map_or(flo.clone(), |c| c.min(flo)));
        *hi = Some(hi.take().map_or(fhi.clone(), |c| c.max(fhi)));
    };
    for f in files {
        if f.stats.entry_count > 0 {
            fold(&mut lo, &mut hi, f.min_key().clone(), f.max_key().clone());
        }
        if let Some((klo, khi)) = f.key_range_tombstone_span() {
            fold(&mut lo, &mut hi, klo, khi);
        }
    }
    lo.zip(hi)
}

/// Whether two key spans intersect. A `None` span (task with only empty
/// tables) is treated as conflicting with nothing — such tasks touch no
/// user keys, so concurrent installs cannot produce overlapping runs.
fn spans_overlap(a: &Option<(Bytes, Bytes)>, b: &Option<(Bytes, Bytes)>) -> bool {
    match (a, b) {
        (Some((alo, ahi)), Some((blo, bhi))) => alo <= bhi && blo <= ahi,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{CompactionLayout, FadeOptions, TtlAllocation};
    use crate::testutil::{make_file, make_file_with};
    use acheron_vfs::MemFs;

    fn opts(layout: CompactionLayout) -> DbOptions {
        DbOptions {
            layout,
            level0_file_limit: 4,
            size_ratio: 4,
            max_levels: 4,
            level1_target_bytes: 3_000,
            ..DbOptions::default()
        }
    }

    #[test]
    fn no_compaction_when_under_triggers() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::Leveling));
        let v = Version::empty(4).apply(vec![make_file(&fs, 1, 0, 0..10, 100)], &[], &[], &[]);
        assert!(picker.pick(&v, 0).is_none());
    }

    #[test]
    fn l0_file_count_triggers_full_l0_merge() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::Leveling));
        let files: Vec<_> = (0..4)
            .map(|i| make_file(&fs, i + 1, 0, 0..20, 100 * (i + 1)))
            .collect();
        let l1 = make_file(&fs, 9, 1, 5..15, 50);
        let mut all = files.clone();
        all.push(l1);
        let v = Version::empty(4).apply(all, &[], &[], &[]);
        let task = picker.pick(&v, 0).expect("L0 saturated");
        assert_eq!(task.reason, CompactionReason::L0Saturation);
        assert_eq!(task.level, 0);
        assert_eq!(task.inputs.len(), 4, "all L0 files move together");
        assert_eq!(task.next_level_inputs.len(), 1, "overlapping L1 file joins");
        assert_eq!(task.output_level, 1);
    }

    #[test]
    fn saturated_level_picks_min_overlap_file() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::Leveling));
        // L1 over budget (10k): two files; one overlaps a fat L2 file,
        // the other overlaps nothing.
        let costly = make_file(&fs, 1, 1, 0..200, 1000);
        let free = make_file(&fs, 2, 1, 500..700, 2000);
        let l2 = make_file(&fs, 3, 2, 0..200, 100);
        let v = Version::empty(4).apply(vec![costly, free, l2], &[], &[], &[]);
        assert!(v.level_bytes(1) > 3_000, "setup must saturate L1");
        let task = picker.pick(&v, 0).expect("saturation");
        assert_eq!(task.reason, CompactionReason::LevelSaturation);
        assert_eq!(task.inputs.len(), 1);
        assert_eq!(task.inputs[0].id, 2, "zero-overlap file is cheapest");
        assert!(task.next_level_inputs.is_empty());
    }

    #[test]
    fn tombstone_density_pick_prefers_delete_heavy_file() {
        let mut o = opts(CompactionLayout::Leveling);
        o.fade = Some(FadeOptions {
            delete_persistence_threshold: 1_000_000, // never expires in test
            ttl_allocation: TtlAllocation::Uniform,
            saturation_pick: FilePickPolicy::TombstoneDensity,
        });
        let fs = MemFs::new();
        let picker = Picker::new(&o);
        let clean = make_file_with(&fs, 1, 1, 0, 0..200, 1000, 0, 0);
        let dirty = make_file_with(&fs, 2, 1, 0, 300..500, 2000, 2, 0);
        let v = Version::empty(4).apply(vec![clean, dirty], &[], &[], &[]);
        let task = picker.pick(&v, 10).expect("saturation");
        assert_eq!(task.inputs[0].id, 2, "delete-dense file first");
    }

    #[test]
    fn ttl_expiry_outranks_saturation_and_targets_the_overdue_file() {
        let mut o = opts(CompactionLayout::Leveling);
        o.fade = Some(FadeOptions {
            delete_persistence_threshold: 1_000,
            ttl_allocation: TtlAllocation::Uniform,
            saturation_pick: FilePickPolicy::MinOverlap,
        });
        let fs = MemFs::new();
        let picker = Picker::new(&o);
        // A tombstone born at tick 10 in an L1 file.
        let expired = make_file_with(&fs, 1, 1, 0, 0..50, 1000, 5, 10);
        let v = Version::empty(4).apply(vec![expired], &[], &[], &[]);
        // Before the deadline: nothing to do (level not saturated).
        assert!(picker.pick(&v, 11).is_none());
        // Long past it: the TTL trigger fires.
        let task = picker.pick(&v, 5_000).expect("expired file");
        assert_eq!(task.reason, CompactionReason::TtlExpired);
        assert_eq!(task.inputs[0].id, 1);
        assert_eq!(task.output_level, 2);
    }

    #[test]
    fn ttl_expiry_at_l0_takes_all_l0_files() {
        let mut o = opts(CompactionLayout::Leveling);
        o.fade = Some(FadeOptions {
            delete_persistence_threshold: 100,
            ttl_allocation: TtlAllocation::Uniform,
            saturation_pick: FilePickPolicy::MinOverlap,
        });
        let fs = MemFs::new();
        let picker = Picker::new(&o);
        let old = make_file_with(&fs, 1, 0, 1, 0..20, 100, 2, 0);
        let newer = make_file(&fs, 2, 0, 10..30, 500);
        let v = Version::empty(4).apply(vec![old, newer], &[], &[], &[]);
        let task = picker.pick(&v, 10_000).expect("expired");
        assert_eq!(task.reason, CompactionReason::TtlExpired);
        assert_eq!(
            task.inputs.len(),
            2,
            "L0 expiry must take every L0 file to preserve seqno ordering"
        );
    }

    #[test]
    fn tiering_trigger_fires_on_run_count() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::Tiering));
        // Four runs at L1 (T = 4).
        let files: Vec<_> = (0..4)
            .map(|i| make_file_with(&fs, i + 1, 1, i, 0..20, 100 * (i + 1), 0, 0))
            .collect();
        let v = Version::empty(4).apply(files, &[], &[], &[]);
        assert_eq!(v.level_runs(1), 4);
        let task = picker.pick(&v, 0).expect("run count reached T");
        assert_eq!(task.level, 1);
        assert_eq!(task.inputs.len(), 4);
        assert!(
            task.next_level_inputs.is_empty(),
            "tiering stacks a new run instead of merging into the target"
        );
        assert_eq!(task.output_level, 2);
    }

    #[test]
    fn tiering_under_trigger_is_quiescent() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::Tiering));
        let files: Vec<_> = (0..3)
            .map(|i| make_file_with(&fs, i + 1, 1, i, 0..20, 100 * (i + 1), 0, 0))
            .collect();
        let v = Version::empty(4).apply(files, &[], &[], &[]);
        assert!(picker.pick(&v, 0).is_none());
    }

    #[test]
    fn lazy_leveling_merges_into_leveled_bottom() {
        let fs = MemFs::new();
        let picker = Picker::new(&opts(CompactionLayout::LazyLeveling));
        // Four runs at level 2 (bottom is 3).
        let files: Vec<_> = (0..4)
            .map(|i| make_file_with(&fs, i + 1, 2, i, 0..20, 100 * (i + 1), 0, 0))
            .collect();
        let bottom = make_file(&fs, 9, 3, 5..25, 50);
        let mut all = files;
        all.push(bottom);
        let v = Version::empty(4).apply(all, &[], &[], &[]);
        let task = picker.pick(&v, 0).expect("runs at level 2");
        assert_eq!(task.output_level, 3);
        assert_eq!(task.output_run, 0, "bottom stays a single leveled run");
        assert_eq!(
            task.next_level_inputs.len(),
            1,
            "merges with the bottom run"
        );
    }

    #[test]
    fn task_helpers_compute_span_and_bytes() {
        let fs = MemFs::new();
        let a = make_file(&fs, 1, 1, 0..10, 100);
        let b = make_file(&fs, 2, 2, 5..20, 200);
        let bytes = a.size_bytes + b.size_bytes;
        let task = CompactionTask {
            level: 1,
            inputs: vec![a],
            next_level_inputs: vec![b],
            output_level: 2,
            output_run: 0,
            reason: CompactionReason::Manual,
        };
        let (lo, hi) = task.key_range().expect("non-empty");
        assert_eq!(&lo[..], b"key000000");
        assert_eq!(&hi[..], b"key000019");
        assert_eq!(task.input_bytes(), bytes);
    }
}
