//! The Acheron database: a delete-aware LSM engine.
//!
//! # Concurrency model
//!
//! Neither hot path holds the global state lock across I/O.
//!
//! **Writes** go through a group-commit queue: each committer enqueues
//! its op batch; the first to find no leader active drains the queue,
//! appends one WAL record per batch, fsyncs once for the whole group
//! (outside the state lock), publishes the group's memtable inserts and
//! sequence numbers, and hands every follower its result through a
//! condvar. Memtable sealing and secondary range deletes take the same
//! commit-exclusion token the leader holds, so the WAL writer and the
//! seqno allocator are single-owner without a long-held lock.
//!
//! **Reads** never touch the state lock at all: every structural change
//! publishes an immutable `ReadView` (active memtable handle, sealed
//! queue, version pointer, visible seqno, range tombstones) behind an
//! `Arc` swap; `get`/`scan`/`snapshot` clone the current view in O(1)
//! and run entirely against it. Lookups early-exit: sources are probed
//! newest-first (memtable, sealed queue, L0 by max seqno, deeper
//! levels) and a source whose seqno ceiling cannot beat the best
//! version found so far is skipped without I/O.
//!
//! Maintenance — memtable flushes and compactions, including FADE's
//! TTL-driven ones — runs on a pool of background worker threads sized
//! by [`DbOptions::background_threads`]. When the L0 file count or the
//! sealed queue exceeds its configured limit, writes are first slowed
//! and then stalled on a condition variable until the workers catch up.
//! With `background_threads = 0` every flush and compaction instead
//! runs synchronously inside the write path, so a given op sequence
//! always produces the same tree — the deterministic mode the
//! experiments use (`DbOptions::small`). The full lock hierarchy,
//! task-claiming protocol, and crash-safety invariants are documented in
//! `ARCHITECTURE.md` at the repository root.
//!
//! # Secondary range-delete semantics
//!
//! `range_delete_secondary(lo, hi)` erases every entry whose delete key
//! lies in `[lo, hi]` as of the call, under **newest-version-decides**
//! visibility: a key whose newest visible version is erased reads as
//! deleted (older versions do *not* resurface — their visibility is
//! decided once, independent of when compaction physically removes
//! bytes). Physical reclamation happens at bottommost compactions,
//! which purge covered entries and — under KiWi — drop fully covered
//! pages without reading them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acheron_memtable::Memtable;
use acheron_types::{
    Clock, DeleteKeyRange, Entry, Error, RangeTombstone, Result, SeqNo, Tick, ValuePointer,
    MAX_SEQNO,
};
use acheron_vfs::Vfs;
use acheron_vlog::{VlogReader, VlogWriter};
use acheron_wal::{recover_records, LogWriter, WalBatch, WalOp};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::compaction::{run_compaction, write_l0_table};
use crate::filenames::{manifest_name, parse_file_name, sst_path, vlog_path, wal_path, FileKind};
use crate::manifest::{
    read_current, read_manifest, write_current, EditBatch, ManifestWriter, VersionEdit,
};
use crate::memory::{MemoryBudget, TunerSample};
use crate::obs::trace::{
    CohortStage, DeleteAudit, DeleteLedger, OpTrace, TraceBuf, TraceOp, TraceStage, Tracer,
};
use crate::obs::{Event, EventLog, EventSnapshot, GcKind, RecoveryStepKind, TombstoneGauges};
use crate::options::DbOptions;
use crate::picker::{CompactionReason, CompactionTask, Picker};
use crate::stats::DbStats;
use crate::version::{FileMeta, Version};

/// Upper bound on back-to-back compactions per maintenance pass; a
/// correctly converging picker never reaches it.
const MAX_COMPACTIONS_PER_PASS: usize = 10_000;

/// How long an idle worker sleeps before re-polling for work (it is
/// also woken eagerly by [`DbCore::kick_workers`]).
const WORKER_TICK: Duration = Duration::from_millis(50);

/// How often a stalled writer re-checks the pressure gauges.
const STALL_RECHECK: Duration = Duration::from_millis(10);

/// Delay injected per write once L0 crosses the soft limit.
const SLOWDOWN_DELAY: Duration = Duration::from_micros(250);

/// A sealed (immutable) memtable queued for flush, together with the
/// WAL segment that made it durable.
struct ImmMemtable {
    mem: Arc<Memtable>,
    /// The WAL segment holding exactly this memtable's records; it can
    /// be retired once the memtable's flush is installed.
    wal_number: u64,
    /// Highest sequence number in the memtable (it is non-empty).
    max_seqno: SeqNo,
}

/// What `initialize`/`recover` hand to `open`: the initial state plus
/// the pieces that live outside the state lock (the active WAL writer
/// and the seqno the allocator starts from).
struct Bootstrap {
    state: State,
    wal: LogWriter,
    last_seqno: SeqNo,
    next_file_id: u64,
    /// Recovery-time events, buffered because `recover` runs before the
    /// [`EventLog`] exists; `open` replays them into the ring.
    events: Vec<Event>,
    /// Per-segment value-log accounting rebuilt from table metadata and
    /// WAL replay.
    vlog_segments: BTreeMap<u64, VlogSegmentAcct>,
    /// GC-deleted vlog segments some live table or WAL record still
    /// (stalely) points into — see [`VlogState::dropped`].
    vlog_dropped: BTreeSet<u64>,
    /// One past the highest vlog segment on disk (the id a lazily
    /// created writer starts at).
    vlog_next_segment: u64,
}

/// Per-segment byte accounting for the value log.
#[derive(Debug, Default, Clone, Copy)]
struct VlogSegmentAcct {
    /// Frame bytes whose tree reference is still live (or still pending
    /// in the write buffer / WAL).
    live_bytes: u64,
    /// Frame bytes whose last tree reference has been dropped.
    dead_bytes: u64,
    /// Stamp of the earliest dead extent: the covering tombstone's
    /// delete tick when a delete forced the drop, else the compaction
    /// tick. Vlog GC must reclaim the extent within `D_th` of this.
    oldest_dead_tick: Option<Tick>,
    /// Fully rewritten by GC but kept on disk because registered
    /// snapshots may still dereference into it; deleted once the
    /// snapshot set drains.
    retired: bool,
}

/// Value-log accounting across segments. Guarded by a leaf mutex: taken
/// after any other lock, never held across I/O.
#[derive(Default)]
struct VlogState {
    segments: BTreeMap<u64, VlogSegmentAcct>,
    /// Segments GC deleted whose (shadowed) pointers may still sit in
    /// live tables until compaction rewrites them. Mirrored into the
    /// manifest as [`VersionEdit::DropVlogSegment`] so recovery and
    /// `doctor` can tell expected-stale references from dangling ones;
    /// pruned at recovery once no table or WAL names the segment.
    dropped: BTreeSet<u64>,
}

impl VlogState {
    fn add_live(&mut self, segment: u64, bytes: u64) {
        self.segments.entry(segment).or_default().live_bytes += bytes;
    }

    /// Move `bytes` of `segment` from live to dead, stamped `stamp`.
    /// A segment GC already deleted is silently ignored — the drop that
    /// reports it is an older shadowed version whose bytes were already
    /// reclaimed wholesale.
    fn mark_dead(&mut self, segment: u64, bytes: u64, stamp: Tick) {
        if let Some(acct) = self.segments.get_mut(&segment) {
            acct.live_bytes = acct.live_bytes.saturating_sub(bytes);
            acct.dead_bytes += bytes;
            acct.oldest_dead_tick = Some(acct.oldest_dead_tick.map_or(stamp, |t| t.min(stamp)));
        }
    }
}

/// File length covering the first `records` intact records of a WAL
/// segment — the truncation point when replay rejects a later record
/// (an unreadable vlog frame behind one of its pointers).
fn wal_record_prefix_len(data: &Bytes, records: usize) -> u64 {
    let mut reader = acheron_wal::LogReader::new(data.clone());
    let mut len = 0u64;
    for _ in 0..records {
        match reader.next_record() {
            acheron_wal::ReadOutcome::Record(_) => len = reader.offset(),
            _ => break,
        }
    }
    len
}

struct State {
    mem: Arc<Memtable>,
    /// Sealed memtables awaiting flush, oldest first. Flushes install in
    /// queue order so `persisted_seqno` advances monotonically.
    imms: VecDeque<ImmMemtable>,
    /// WAL segments that may still hold unflushed data (the active one
    /// last; one segment per queued sealed memtable before it).
    live_wals: Vec<u64>,
    version: Arc<Version>,
    persisted_seqno: SeqNo,
    manifest: ManifestWriter,
    /// Earliest tick at which a FADE TTL expires somewhere in the tree
    /// (None = nothing expires / FADE off). Maintained incrementally so
    /// the write path checks it in O(1).
    ttl_deadline: Option<Tick>,
}

/// Everything the read paths need, captured immutably. Structural
/// mutations (seal, flush install, compaction install, range delete)
/// build a fresh view under the state lock and swap the shared `Arc`;
/// readers clone the `Arc` in O(1) and run against it with no further
/// synchronization — in particular, no lock is held across SSTable
/// block reads, and a view outlives any concurrent compaction (the
/// `Arc<Table>`s pin the files).
///
/// Plain commits do **not** republish the view: they insert into the
/// concurrently readable `mem` the view already references and advance
/// [`DbCore::visible_seqno`]. The ordering rule for latest-state reads
/// is *load `visible_seqno` first, then the view*: every write counted
/// by the loaded seqno already sits in a memtable / table `Arc` that is
/// carried into whichever view the subsequent load observes, so the
/// ceiling can never name an entry the view lacks. (The reverse order
/// could: a seal between the two loads would strand fresh writes in a
/// memtable the stale view does not reference.)
struct ReadView {
    mem: Arc<Memtable>,
    /// Sealed memtables, newest first (the probe order for lookups).
    imms: Vec<Arc<Memtable>>,
    version: Arc<Version>,
    /// All live range tombstones; readers filter by seqno in place
    /// rather than allocating a filtered copy per lookup.
    rts: Arc<[RangeTombstone]>,
}

/// One committer's entry in the group-commit queue. The enqueuer parks
/// on [`DbCore::commit_cv`] until a leader fills `result`.
#[derive(Default)]
struct CommitRequest {
    /// Set (under no lock but before the leader's wakeup notify) once
    /// the group's fate is decided. Errors are distributed as strings
    /// (one failure fails the whole group) because [`Error`] is not
    /// `Clone`.
    result: Mutex<Option<std::result::Result<(), String>>>,
}

/// A queued (request, ops) pair the next leader will commit.
struct PendingCommit {
    req: Arc<CommitRequest>,
    ops: Vec<WalOp>,
}

/// Group-commit coordination state. Guarded by [`DbCore::commit`].
#[derive(Default)]
struct CommitQueue {
    queue: Vec<PendingCommit>,
    /// True while a commit leader (or an exclusive section: memtable
    /// seal, range delete) owns the WAL writer + seqno allocator.
    exclusive: bool,
}

/// RAII token for the commit-exclusion domain: while held, no commit
/// leader runs and no other exclusive section is active, so the holder
/// may seal the memtable (swap the WAL writer) or allocate seqnos.
/// Acquired *before* the state lock (see the lock hierarchy in
/// ARCHITECTURE.md).
struct CommitExclusion<'a> {
    core: &'a DbCore,
}

impl Drop for CommitExclusion<'_> {
    fn drop(&mut self) {
        let mut q = self.core.commit.lock();
        q.exclusive = false;
        self.core.commit_cv.notify_all();
    }
}

/// Executor control state. Guarded by `DbCore::maint`, which is never
/// held while `DbCore::state` is held (see ARCHITECTURE.md for the lock
/// hierarchy).
#[derive(Default)]
struct MaintState {
    /// Set once at teardown; workers exit their loop when they see it.
    shutdown: bool,
    /// Number of outstanding [`Db::pause_maintenance`] / internal pause
    /// guards. Workers do not start new steps while it is non-zero.
    pause_depth: usize,
    /// Workers currently inside a maintenance step. A pause waits for
    /// this to drain to zero before its guard is returned.
    in_flight: usize,
    /// Bumped by [`DbCore::kick_workers`]; lets a worker detect a kick
    /// that arrived while it was running (so it re-polls instead of
    /// sleeping).
    kicks: u64,
    /// First background failure, sticky until the DB is reopened.
    /// Surfaced by `maintain`/`flush`/`compact_all`/`wait_idle` and by
    /// stalled writes.
    error: Option<String>,
}

/// Everything shared between user handles and background workers.
struct DbCore {
    fs: Arc<dyn Vfs>,
    dir: String,
    opts: DbOptions,
    picker: Picker,
    stats: DbStats,
    cache: Option<Arc<acheron_sstable::BlockCache>>,
    /// Unified memory arbiter, present when
    /// [`DbOptions::memory_budget_bytes`] is non-zero or a sharded
    /// fleet injected a shared budget. Owns the memtable/cache split;
    /// `cache` is resized to its cache share when the tuner moves.
    memory: Option<Arc<MemoryBudget>>,
    /// Whether `cache`/`memory` are shared with sibling engines (one
    /// fleet-wide instance). Shared-scope cache and budget stats are
    /// then reported once by the fleet router, not per shard.
    cache_is_shared: bool,
    /// This engine's last-reported pinned-bytes contribution (filters +
    /// tile metadata of its open tables) to the memory budget. The view
    /// publish path reports deltas against it.
    pinned_contrib: AtomicUsize,
    snapshots: Mutex<BTreeMap<SeqNo, usize>>,
    state: RwLock<State>,
    /// The active WAL writer. Its own mutex (not part of `state`) so a
    /// group fsync never blocks readers or maintenance installs. Only
    /// commit leaders and exclusive sections touch it.
    wal: Mutex<LogWriter>,
    /// Group-commit queue + exclusion flag.
    commit: Mutex<CommitQueue>,
    /// Wakes queued committers (their result arrived, or leadership is
    /// free) and exclusion waiters.
    commit_cv: Condvar,
    /// The current read view. Writers to this lock only ever *store* a
    /// prebuilt `Arc` (never hold it across work), so readers observe a
    /// few-instruction critical section — an `Arc` swap in effect.
    view: RwLock<Arc<ReadView>>,
    /// Highest sequence number handed out (WAL-ordered). Advanced only
    /// inside the commit-exclusion domain.
    seq_alloc: AtomicU64,
    /// Highest sequence number published to readers (memtable inserts
    /// complete, result about to be acknowledged).
    visible_seqno: AtomicU64,
    /// File-id allocator, shared lock-free so workers can name output
    /// tables without holding the state lock during a merge.
    next_file_id: AtomicU64,
    maint: Mutex<MaintState>,
    /// Signalled when new work may exist (kicks, unpause, shutdown).
    work_cv: Condvar,
    /// Signalled when a worker finishes a step (pauses and stalled
    /// writers wait on this).
    done_cv: Condvar,
    /// Single-flusher ticket: flushes must install in queue order, so
    /// only one worker owns the front of the sealed queue at a time.
    flush_claimed: AtomicBool,
    /// Flight recorder: lock-free ring of typed maintenance events.
    /// Emission is one atomic seqno plus one slot write, so the hooks
    /// stay on unconditionally.
    obs: EventLog,
    /// Delete-persistence gauges for the installed tree, recomputed by
    /// [`DbCore::publish_view_locked`] (the single version-install
    /// point). A leaf mutex: only ever held for a pointer store/load,
    /// never while any other lock is taken.
    gauges: Mutex<Arc<TombstoneGauges>>,
    /// Value-log append head, created lazily on the first separated
    /// value so separation-off databases (and restarts that never write
    /// a large value) never churn empty segments. Touched only inside
    /// the WAL critical section of a commit leader or by vlog GC; lock
    /// order is `wal` before `vlog`.
    vlog: Mutex<Option<VlogWriter>>,
    /// The segment id a lazily created writer starts at; recovery
    /// bounds it past every segment on disk.
    vlog_next_segment: AtomicU64,
    /// Shared pointer-dereference path with a per-segment fd cache.
    vlog_reader: Arc<VlogReader>,
    /// Per-segment value-log live/dead accounting (leaf mutex).
    vlog_state: Mutex<VlogState>,
    /// Per-op trace sampler + retention buffer. With sampling off its
    /// entire cost is one untaken branch per operation.
    tracer: Tracer,
    /// Delete-lifecycle cohort ledger. Every mutation site already runs
    /// serialized (commit leader, state-lock installs), so this leaf
    /// mutex is uncontended; it is never held across another lock.
    ledger: Mutex<DeleteLedger>,
}

struct DbInner {
    core: Arc<DbCore>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        self.core.request_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Handle to an open database. Cheap to clone; all clones share state.
/// Dropping the last handle stops the background workers (joining any
/// in-flight flush/compaction first).
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

/// A consistent read point. Readers holding a snapshot see exactly the
/// data visible at its sequence number; compactions preserve the
/// versions it needs. Unregisters itself on drop.
pub struct Snapshot {
    core: Arc<DbCore>,
    seqno: SeqNo,
}

impl Snapshot {
    /// The snapshot's sequence number.
    pub fn seqno(&self) -> SeqNo {
        self.seqno
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.core.snapshots.lock();
        if let Some(count) = snaps.get_mut(&self.seqno) {
            *count -= 1;
            if *count == 0 {
                snaps.remove(&self.seqno);
            }
        }
    }
}

/// RAII guard from [`Db::pause_maintenance`]: background workers are
/// quiesced (no step in flight, none will start) until it is dropped.
/// Pauses nest.
pub struct MaintenancePause {
    core: Arc<DbCore>,
}

impl Drop for MaintenancePause {
    fn drop(&mut self) {
        self.core.unpause_raw();
    }
}

/// Internal pause guard used by foreground maintenance entry points.
struct PauseGuard<'a> {
    core: &'a DbCore,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.core.unpause_raw();
    }
}

/// A group of writes applied atomically via [`Db::write_batch`]: they
/// become durable (one WAL record) and visible (consecutive sequence
/// numbers committed together) as a unit.
///
/// ```
/// # use acheron::{Db, DbOptions, db::WriteBatch};
/// # use acheron_vfs::MemFs;
/// # use std::sync::Arc;
/// # let db = Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap();
/// let mut batch = WriteBatch::new();
/// batch.put(b"debit:alice", b"-10");
/// batch.put(b"credit:bob", b"+10");
/// batch.delete(b"pending:tx17");
/// db.write_batch(batch).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct WriteBatch {
    ops: Vec<WalOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue an insert/update (delete key = 0; use
    /// [`WriteBatch::put_with_dkey`] to tag one).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey: acheron_types::DELETE_KEY_NONE,
        });
        self
    }

    /// Queue an insert/update with an explicit secondary delete key.
    pub fn put_with_dkey(&mut self, key: &[u8], value: &[u8], dkey: u64) -> &mut Self {
        self.ops.push(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey,
        });
        self
    }

    /// Queue a point delete. The tombstone's age starts at the tick the
    /// batch commits.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        // Tick 0 placeholder; stamped at commit time below.
        self.ops.push(WalOp::Delete {
            key: Bytes::copy_from_slice(key),
            tick: u64::MAX,
        });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A streaming range scan (see [`Db::range_iter`]): yields live
/// key/value pairs in sort-key order without materializing the range.
pub struct RangeIter {
    merge: crate::merge::MergeIterator,
    hi: Vec<u8>,
    snapshot: SeqNo,
    rts: Vec<RangeTombstone>,
    krts: Arc<acheron_types::FragmentedRangeTombstones>,
    decided_key: Option<Bytes>,
    core: Arc<DbCore>,
}

impl RangeIter {
    /// The next live key/value pair, or `None` at the end of the range.
    ///
    /// (A fallible, streaming cursor — not `std::iter::Iterator` —
    /// because each step can hit I/O errors.)
    pub fn next_entry(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        while self.merge.valid() {
            let e = self.merge.entry()?;
            if e.key[..] > self.hi[..] {
                return Ok(None);
            }
            if self.decided_key.as_deref() == Some(&e.key[..]) || e.seqno > self.snapshot {
                self.merge.advance()?;
                continue;
            }
            // Newest visible version decides the key: a put that is not
            // range-erased (by either tombstone flavor) yields the
            // value; anything else hides the key. The sort-key check is
            // one binary search over the pre-fragmented index.
            self.decided_key = Some(e.key.clone());
            let live = e.kind.is_put_like()
                && !self.rts.iter().any(|rt| rt.shadows(e.seqno, e.dkey))
                && self
                    .krts
                    .max_seqno_covering(&e.key, self.snapshot)
                    .is_none_or(|cover| e.seqno >= cover);
            self.merge.advance()?;
            if live {
                // Separated values are dereferenced lazily, at yield
                // time: skipped keys never touch the vlog.
                if e.kind == acheron_types::ValueKind::ValuePointer {
                    let value = self.core.deref_value_pointer(&e)?;
                    return Ok(Some((e.key, value)));
                }
                return Ok(Some((e.key, e.value)));
            }
        }
        Ok(None)
    }
}

/// Instantaneous write-pressure gauges (see [`Db::write_pressure`]):
/// what the engine's own throttle consults, exported so a service layer
/// in front of the engine can shed load *before* a write would block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePressure {
    /// Live files in level 0.
    pub l0_files: usize,
    /// Sealed memtables queued for flush.
    pub sealed_memtables: usize,
    /// L0 has reached the soft limit: the write path injects a small
    /// per-write delay.
    pub slowdown: bool,
    /// A hard limit is reached (L0 stall files or sealed-queue depth):
    /// the next write blocks until background maintenance catches up.
    pub stall: bool,
}

/// Summary of one level for stats displays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelInfo {
    /// Level index.
    pub level: usize,
    /// Live files.
    pub files: usize,
    /// Distinct runs.
    pub runs: usize,
    /// Total bytes.
    pub bytes: u64,
    /// Live entries.
    pub entries: u64,
    /// Live point tombstones.
    pub tombstones: u64,
}

impl Db {
    /// Open (creating or recovering) a database under `dir`.
    pub fn open(fs: Arc<dyn Vfs>, dir: &str, opts: DbOptions) -> Result<Db> {
        Self::open_with_shared(fs, dir, opts, None, None, None)
    }

    /// Open with an optionally injected fleet-shared block cache and
    /// memory budget (how [`crate::ShardedDb`] gives every shard one
    /// cache instance and one arbiter instead of N private copies).
    ///
    /// Resolution order for the cache/budget pair:
    /// 1. injected shared instances (the caller owns their sizing);
    /// 2. `opts.memory_budget_bytes > 0`: a private budget plus a cache
    ///    sized to its cache share (even if `block_cache_bytes` is 0);
    /// 3. legacy: a private cache of `block_cache_bytes` if non-zero,
    ///    no budget.
    pub(crate) fn open_with_shared(
        fs: Arc<dyn Vfs>,
        dir: &str,
        opts: DbOptions,
        shared_cache: Option<Arc<acheron_sstable::BlockCache>>,
        shared_budget: Option<Arc<MemoryBudget>>,
        shard_identity: Option<(usize, Arc<AtomicU64>)>,
    ) -> Result<Db> {
        opts.validate()?;
        // A sharded fleet names each engine's ledger shard and shares
        // one trace-id allocator so ids stay fleet-unique; a standalone
        // engine is shard 0 with a private allocator.
        let (shard, trace_ids) = shard_identity.unwrap_or_else(|| (0, Arc::new(AtomicU64::new(1))));
        fs.mkdir_all(dir)?;
        let cache_is_shared = shared_cache.is_some();
        let (cache, memory) = match (shared_cache, shared_budget) {
            (Some(c), budget) => (Some(c), budget),
            (None, _) if opts.memory_budget_bytes > 0 => {
                let budget = Arc::new(MemoryBudget::new(opts.memory_budget_bytes));
                let cache = Arc::new(acheron_sstable::BlockCache::new(budget.cache_share_bytes()));
                (Some(cache), Some(budget))
            }
            (None, _) => (
                (opts.block_cache_bytes > 0)
                    .then(|| Arc::new(acheron_sstable::BlockCache::new(opts.block_cache_bytes))),
                None,
            ),
        };
        if let Some(m) = &memory {
            m.register_writer();
        }
        let boot = match read_current(fs.as_ref(), dir)? {
            None => Self::initialize(&fs, dir, &opts)?,
            Some(manifest) => Self::recover(&fs, dir, &opts, &manifest, cache.as_ref())?,
        };
        let Bootstrap {
            state,
            wal,
            last_seqno,
            next_file_id,
            events: boot_events,
            vlog_segments,
            vlog_dropped,
            vlog_next_segment,
        } = boot;
        let view = Arc::new(ReadView {
            mem: Arc::clone(&state.mem),
            imms: Vec::new(),
            version: Arc::clone(&state.version),
            rts: state.version.range_tombstones.clone().into(),
        });
        let gauges = Arc::new(TombstoneGauges::from_version(&state.version));
        let core = Arc::new(DbCore {
            picker: Picker::new(&opts),
            obs: EventLog::new(opts.event_log_capacity),
            gauges: Mutex::new(gauges),
            tracer: Tracer::new(opts.trace_sample_every, trace_ids),
            ledger: Mutex::new(DeleteLedger::new(shard)),
            vlog: Mutex::new(None),
            vlog_next_segment: AtomicU64::new(vlog_next_segment),
            vlog_reader: Arc::new(VlogReader::new(Arc::clone(&fs), dir)),
            vlog_state: Mutex::new(VlogState {
                segments: vlog_segments,
                dropped: vlog_dropped,
            }),
            fs,
            dir: dir.to_string(),
            opts,
            stats: DbStats::default(),
            cache,
            memory,
            cache_is_shared,
            pinned_contrib: AtomicUsize::new(0),
            snapshots: Mutex::new(BTreeMap::new()),
            state: RwLock::new(state),
            wal: Mutex::new(wal),
            commit: Mutex::new(CommitQueue::default()),
            commit_cv: Condvar::new(),
            view: RwLock::new(view),
            seq_alloc: AtomicU64::new(last_seqno),
            visible_seqno: AtomicU64::new(last_seqno),
            next_file_id: AtomicU64::new(next_file_id),
            maint: Mutex::new(MaintState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            flush_claimed: AtomicBool::new(false),
        });
        // Replay the recovery milestones into the ring now that it
        // exists, before any live traffic can interleave with them.
        for ev in boot_events {
            core.obs.log(ev);
        }
        // Report the recovered table set's pinned bytes before any
        // traffic: a freshly opened tree already taxes the budget.
        core.refresh_pinned(&core.state.read());
        let mut workers = Vec::with_capacity(core.opts.background_threads);
        for i in 0..core.opts.background_threads {
            let c = Arc::clone(&core);
            match std::thread::Builder::new()
                .name(format!("acheron-maint-{i}"))
                .spawn(move || DbCore::worker_loop(c))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    core.request_shutdown();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(Error::Internal(format!("spawn maintenance worker: {e}")));
                }
            }
        }
        let db = Db {
            inner: Arc::new(DbInner { core, workers }),
        };
        // Recovery may leave the tree over its triggers.
        db.maintain()?;
        Ok(db)
    }

    fn core(&self) -> &DbCore {
        &self.inner.core
    }

    /// Create a fresh database directory layout.
    fn initialize(fs: &Arc<dyn Vfs>, dir: &str, opts: &DbOptions) -> Result<Bootstrap> {
        let mut next_file_id = 1u64;
        let manifest_number = next_file_id;
        next_file_id += 1;
        let wal_number = next_file_id;
        next_file_id += 1;

        let name = manifest_name(manifest_number);
        let mut manifest = ManifestWriter::create(fs.as_ref(), &acheron_vfs::join(dir, &name))?;
        manifest.append(&EditBatch {
            edits: vec![
                VersionEdit::NextFileId { id: next_file_id },
                VersionEdit::LogNumber { number: wal_number },
            ],
        })?;
        write_current(fs.as_ref(), dir, &name)?;
        // The directory entries for the manifest and CURRENT must be
        // durable before the open reports success.
        fs.sync_dir(dir)?;
        let wal = LogWriter::new(fs.create(&wal_path(dir, wal_number))?);
        Ok(Bootstrap {
            state: State {
                mem: Arc::new(Memtable::new()),
                imms: VecDeque::new(),
                live_wals: vec![wal_number],
                version: Arc::new(Version::empty(opts.max_levels)),
                persisted_seqno: 0,
                manifest,
                ttl_deadline: None,
            },
            wal,
            last_seqno: 0,
            next_file_id,
            events: Vec::new(),
            vlog_segments: BTreeMap::new(),
            vlog_dropped: BTreeSet::new(),
            vlog_next_segment: 1,
        })
    }

    /// Recover from an existing manifest + WAL set.
    fn recover(
        fs: &Arc<dyn Vfs>,
        dir: &str,
        opts: &DbOptions,
        manifest: &str,
        cache: Option<&Arc<acheron_sstable::BlockCache>>,
    ) -> Result<Bootstrap> {
        let batches = read_manifest(fs.as_ref(), &acheron_vfs::join(dir, manifest))?;
        // Milestones are buffered here and replayed into the event ring
        // by `open` — recovery runs before the ring exists.
        let mut events: Vec<Event> = Vec::new();
        // Fold edits into the recovered metadata state.
        struct RecFile {
            level: u64,
            run: u64,
            size: u64,
            created_tick: u64,
        }
        let mut files: BTreeMap<u64, RecFile> = BTreeMap::new();
        let mut rts: Vec<RangeTombstone> = Vec::new();
        let mut persisted_seqno = 0u64;
        let mut log_number = 0u64;
        let mut next_file_id = 1u64;
        let mut vlog_dropped: BTreeSet<u64> = BTreeSet::new();
        for batch in &batches {
            for edit in &batch.edits {
                match edit {
                    VersionEdit::AddFile {
                        level,
                        run,
                        id,
                        size,
                        created_tick,
                    } => {
                        files.insert(
                            *id,
                            RecFile {
                                level: *level,
                                run: *run,
                                size: *size,
                                created_tick: *created_tick,
                            },
                        );
                    }
                    VersionEdit::DeleteFile { id } => {
                        files.remove(id);
                    }
                    VersionEdit::AddRangeTombstone { seqno, range } => {
                        rts.push(RangeTombstone {
                            seqno: *seqno,
                            range: *range,
                        });
                    }
                    VersionEdit::DropRangeTombstone { seqno } => {
                        rts.retain(|rt| rt.seqno != *seqno);
                    }
                    VersionEdit::PersistedSeqno { seqno } => {
                        persisted_seqno = persisted_seqno.max(*seqno);
                    }
                    VersionEdit::LogNumber { number } => log_number = log_number.max(*number),
                    VersionEdit::NextFileId { id } => next_file_id = next_file_id.max(*id),
                    VersionEdit::DropVlogSegment { segment } => {
                        vlog_dropped.insert(*segment);
                    }
                }
            }
        }

        events.push(Event::RecoveryStep {
            step: RecoveryStepKind::ManifestLoaded,
            detail: files.len() as u64,
        });

        // Open every live table.
        let mut version = Version::empty(opts.max_levels);
        let mut metas = Vec::with_capacity(files.len());
        for (id, rec) in &files {
            let path = sst_path(dir, *id);
            let table = acheron_sstable::Table::open_with_cache(fs.open(&path)?, cache.cloned())?;
            let stats = table.stats().clone();
            metas.push(Arc::new(FileMeta {
                id: *id,
                level: rec.level as usize,
                run: rec.run,
                size_bytes: rec.size,
                stats,
                created_tick: rec.created_tick,
                table,
            }));
        }
        version = version.apply(metas, &[], &rts, &[]);

        // Scan the directory for WALs to replay, vlog segments to
        // re-account, and to bound file ids.
        let mut wal_numbers: Vec<u64> = Vec::new();
        let mut vlog_on_disk: Vec<u64> = Vec::new();
        for name in fs.list(dir)? {
            match parse_file_name(&name) {
                FileKind::Wal(n) => {
                    next_file_id = next_file_id.max(n + 1);
                    if n >= log_number {
                        wal_numbers.push(n);
                    }
                }
                FileKind::Table(n) | FileKind::Manifest(n) => {
                    next_file_id = next_file_id.max(n + 1);
                }
                FileKind::Vlog(n) => vlog_on_disk.push(n),
                _ => {}
            }
        }
        wal_numbers.sort_unstable();

        // Replay surviving WAL records into a fresh memtable.
        //
        // Prefix recovery: the first torn tail ends replay *globally*,
        // not just for its own segment. Records in later-numbered
        // segments were written strictly after the ones lost in the
        // tear, so replaying them would recover a non-contiguous
        // history — resurrecting overwritten values and, worse, deleted
        // keys. How segments past a tear are handled depends on the
        // durability mode — see the tear block below.
        let mem = Memtable::new();
        let mut last_seqno = persisted_seqno.max(rts.iter().map(|rt| rt.seqno).max().unwrap_or(0));
        let mut replayed: Vec<u64> = Vec::new();
        let mut dropped_wals: Vec<u64> = Vec::new();
        let mut tear: Option<(u64, u64)> = None; // (segment, valid prefix length)
                                                 // Pointer probes during replay. The commit path appends and
                                                 // syncs vlog frames *before* the WAL record that references
                                                 // them, so a replayed pointer whose frame does not read back is
                                                 // a commit that never finished — treated exactly like a torn
                                                 // WAL tail at that record.
        let vlog_probe = VlogReader::new(Arc::clone(fs), dir);
        let mut vlog_wal_live: BTreeMap<u64, u64> = BTreeMap::new();
        let mut vlog_wal_refs: BTreeSet<u64> = BTreeSet::new();
        for n in wal_numbers {
            if tear.is_some() {
                dropped_wals.push(n);
                continue;
            }
            let data = fs.read_all(&wal_path(dir, n))?;
            let recovered = recover_records(data.clone());
            let mut applied = 0usize;
            let mut ptr_torn = false;
            'records: for rec in &recovered.records {
                let batch = WalBatch::decode(rec)?;
                let (entries, _ranges, key_ranges) = batch.entries();
                // Validate every pointer the record references before
                // any of its entries become visible — a record is an
                // atomic unit, so one unreadable frame voids it whole.
                for e in &entries {
                    if e.kind == acheron_types::ValueKind::ValuePointer && e.seqno > persisted_seqno
                    {
                        // A pointer into a GC-dropped segment is not a
                        // tear: the drop record's durability ordering
                        // guarantees the rewrite that shadows this
                        // entry is later in the WAL.
                        let ok = ValuePointer::decode(&e.value).is_some_and(|ptr| {
                            vlog_dropped.contains(&ptr.segment)
                                || vlog_probe.get(&ptr, &e.key).is_ok()
                        });
                        if !ok {
                            ptr_torn = true;
                            break 'records;
                        }
                    }
                }
                for e in entries {
                    if e.seqno > persisted_seqno {
                        last_seqno = last_seqno.max(e.seqno);
                        if e.kind == acheron_types::ValueKind::ValuePointer {
                            if let Some(ptr) = ValuePointer::decode(&e.value) {
                                vlog_wal_refs.insert(ptr.segment);
                                if !vlog_dropped.contains(&ptr.segment) {
                                    *vlog_wal_live.entry(ptr.segment).or_default() +=
                                        u64::from(ptr.len);
                                }
                            }
                        }
                        mem.insert(e);
                    }
                }
                for krt in key_ranges {
                    if krt.seqno > persisted_seqno {
                        last_seqno = last_seqno.max(krt.seqno);
                        mem.add_range_tombstone(krt);
                    }
                }
                applied += 1;
            }
            replayed.push(n);
            events.push(Event::RecoveryStep {
                step: RecoveryStepKind::WalSegmentReplayed,
                detail: applied as u64,
            });
            if ptr_torn {
                tear = Some((n, wal_record_prefix_len(&data, applied)));
            } else if recovered.is_torn() {
                tear = Some((n, recovered.valid_len));
            }
        }
        if let Some((torn_wal, valid_len)) = tear {
            // A crash can only tear the highest-numbered segment: under
            // `wal_sync` every record in an older segment was synced
            // before anything was written after it. Segments *beyond* a
            // tear therefore mean media corruption mid-history — their
            // records may be durably acknowledged writes, so silently
            // discarding them would be data loss. Fail open and leave
            // the image for explicit repair. Without `wal_sync` no
            // write was ever acknowledged durable and multiple torn
            // segments are ordinary crash debris; the prefix rule keeps
            // recovery consistent.
            if !dropped_wals.is_empty() && opts.wal_sync {
                return Err(Error::corruption(format!(
                    "WAL segment {torn_wal:06} is torn mid-history: {} later segment(s) \
                     (first: {:06}) hold records that may be acknowledged synced writes; \
                     refusing to discard them",
                    dropped_wals.len(),
                    dropped_wals[0],
                )));
            }
            // Durably remove every post-tear segment BEFORE the heal
            // below can land. Once the tear is healed the segment reads
            // as clean, so nothing would stop a later open from
            // replaying these segments — resurrecting deleted keys and
            // overwritten values. Failure here is fatal to the open for
            // the same reason; these deletes must not be best-effort.
            for n in &dropped_wals {
                fs.delete(&wal_path(dir, *n))?;
                events.push(Event::GcDropped {
                    kind: GcKind::DeadWal,
                    id: *n,
                });
            }
            if !dropped_wals.is_empty() {
                fs.sync_dir(dir)?;
            }
            // Heal the tear: cut the segment back to its valid prefix
            // so it is healed once, here, instead of being rediscovered
            // (and re-reported by `doctor`) on every future open. The
            // rewrite goes write-temp-then-rename — an in-place rewrite
            // would destroy the valid prefix (synced, acknowledged
            // records whose only copy is this segment) if the power
            // died mid-write. A crash before the rename leaves the torn
            // original plus `.tmp` debris the next recovery collects; a
            // crash after it leaves the healed segment. The segment
            // stays live — it holds the replayed records until the next
            // flush retires it.
            let path = wal_path(dir, torn_wal);
            let data = fs.read_all(&path)?;
            let tmp = format!("{path}.tmp");
            let mut healed = fs.create(&tmp)?;
            healed.append(&data[..valid_len as usize])?;
            healed.sync()?;
            healed.finish()?;
            drop(healed);
            fs.rename(&tmp, &path)?;
            events.push(Event::RecoveryStep {
                step: RecoveryStepKind::TornTailHealed,
                detail: torn_wal,
            });
        }
        let wal_numbers = replayed;

        // A dropped-segment marker only matters while some live table
        // or surviving WAL record still names the segment; once
        // compaction has rewritten the last stale pointer the marker is
        // garbage and stops being carried forward. The next-segment
        // high-water is taken before pruning so a fully forgotten
        // segment's id is never reused under old pointers.
        let vlog_next_segment = vlog_on_disk
            .iter()
            .chain(vlog_dropped.iter())
            .max()
            .map_or(1, |m| m + 1);
        let mut vlog_referenced = vlog_wal_refs;
        for f in version.all_files() {
            for r in &f.stats.vlog_refs {
                vlog_referenced.insert(r.segment);
            }
        }
        vlog_dropped.retain(|seg| vlog_referenced.contains(seg));

        // Start a new manifest containing a snapshot of the recovered
        // state (keeps manifests from growing without bound and lets the
        // old one be collected).
        let manifest_number = next_file_id;
        next_file_id += 1;
        let wal_number = next_file_id;
        next_file_id += 1;
        let name = manifest_name(manifest_number);
        let mut manifest = ManifestWriter::create(fs.as_ref(), &acheron_vfs::join(dir, &name))?;
        let mut snapshot_edits = vec![
            VersionEdit::NextFileId { id: next_file_id },
            VersionEdit::PersistedSeqno {
                seqno: persisted_seqno,
            },
        ];
        // Old WALs must still replay next time if we crash before the
        // next flush, so the log number keeps pointing at the oldest
        // live segment.
        let oldest_live_wal = wal_numbers.first().copied().unwrap_or(wal_number);
        snapshot_edits.push(VersionEdit::LogNumber {
            number: oldest_live_wal.min(wal_number),
        });
        for f in version.all_files() {
            snapshot_edits.push(VersionEdit::AddFile {
                level: f.level as u64,
                run: f.run,
                id: f.id,
                size: f.size_bytes,
                created_tick: f.created_tick,
            });
        }
        for rt in &version.range_tombstones {
            snapshot_edits.push(VersionEdit::AddRangeTombstone {
                seqno: rt.seqno,
                range: rt.range,
            });
        }
        for seg in &vlog_dropped {
            snapshot_edits.push(VersionEdit::DropVlogSegment { segment: *seg });
        }
        manifest.append(&EditBatch {
            edits: snapshot_edits,
        })?;
        write_current(fs.as_ref(), dir, &name)?;
        // Make the snapshot manifest, the CURRENT repoint, and the tear
        // heal durable before anything they supersede is deleted: until
        // this fsync a real filesystem may still have CURRENT pointing
        // at the *old* manifest, and deleting it first would leave the
        // database unopenable after a crash.
        fs.sync_dir(dir)?;
        events.push(Event::RecoveryStep {
            step: RecoveryStepKind::SnapshotManifestWritten,
            detail: manifest_number,
        });

        // Rebuild value-log accounting. Live bytes are whatever the
        // recovered tree (per-table vlog refs) and the replayed WAL
        // still reference; every other byte inside a referenced segment
        // is dead with an unknown stamp, so it is conservatively
        // treated as already overdue (stamp 0) — `D_th` must hold even
        // across a crash that lost the in-memory stamps. Segments no
        // pointer references at all are deleted outright below.
        let mut vlog_segments: BTreeMap<u64, VlogSegmentAcct> = BTreeMap::new();
        for f in version.all_files() {
            for r in &f.stats.vlog_refs {
                // References into GC-dropped segments are stale and
                // shadowed — they hold no bytes live.
                if !vlog_dropped.contains(&r.segment) {
                    vlog_segments.entry(r.segment).or_default().live_bytes += r.bytes;
                }
            }
        }
        for (seg, bytes) in vlog_wal_live {
            vlog_segments.entry(seg).or_default().live_bytes += bytes;
        }
        // Referenced-but-missing segments stay out of the accounting:
        // reads through such a pointer fail loudly (and `doctor` flags
        // them); GC must not try to rewrite a file that is not there.
        vlog_segments.retain(|seg, _| vlog_on_disk.contains(seg));
        let mut vlog_healed = false;
        for seg in &vlog_on_disk {
            if let Some(acct) = vlog_segments.get_mut(seg) {
                let path = vlog_path(dir, *seg);
                let data = fs.read_all(&path)?;
                let scan = acheron_vlog::scan_segment(&data);
                let mut size = data.len() as u64;
                if scan.torn {
                    // Trim crash debris past the last intact frame, the
                    // same write-temp-then-rename heal as a torn WAL
                    // tail (an in-place rewrite would risk the intact
                    // prefix, whose frames live pointers reference).
                    // No record is lost: a pointer into the torn region
                    // already ended WAL replay at its record.
                    let tmp = format!("{path}.tmp");
                    let mut healed = fs.create(&tmp)?;
                    healed.append(&data[..scan.valid_len as usize])?;
                    healed.sync()?;
                    healed.finish()?;
                    drop(healed);
                    fs.rename(&tmp, &path)?;
                    vlog_healed = true;
                    size = scan.valid_len;
                }
                let dead = size.saturating_sub(acct.live_bytes);
                if dead > 0 {
                    acct.dead_bytes = dead;
                    acct.oldest_dead_tick = Some(0);
                }
            }
        }
        if vlog_healed {
            fs.sync_dir(dir)?;
        }

        // Garbage-collect everything the snapshot manifest does not
        // reference: tables orphaned by a crash between a manifest
        // append and its physical deletes (or mid-build), WAL segments
        // older than the log number (post-tear segments were already
        // durably removed above), superseded manifests, temp-file
        // debris from an interrupted heal or CURRENT update, vlog
        // segments no surviving pointer names (an unreferenced head
        // left by a crash before its WAL record landed, or one emptied
        // by compaction), and — in torn-tail crashes — partially
        // persisted junk. Safe now that CURRENT durably points at the
        // snapshot; best-effort because everything deleted here is
        // unreferenced, so leftover garbage is a space leak, not a
        // correctness problem.
        let live_tables: BTreeSet<u64> = version.all_files().map(|f| f.id).collect();
        for fname in fs.list(dir)? {
            let dead = match parse_file_name(&fname) {
                FileKind::Table(id) if !live_tables.contains(&id) => {
                    Some((GcKind::OrphanTable, id))
                }
                FileKind::Wal(n) if n < oldest_live_wal.min(wal_number) => {
                    Some((GcKind::DeadWal, n))
                }
                FileKind::Manifest(m) if manifest_name(m) != name => {
                    Some((GcKind::StaleManifest, m))
                }
                FileKind::Vlog(seg) if !vlog_segments.contains_key(&seg) => {
                    Some((GcKind::VlogSegment, seg))
                }
                FileKind::Temp => Some((GcKind::TempFile, 0)),
                _ => None,
            };
            if let Some((kind, id)) = dead {
                let _ = fs.delete(&acheron_vfs::join(dir, &fname));
                events.push(Event::GcDropped { kind, id });
            }
        }

        let wal = LogWriter::new(fs.create(&wal_path(dir, wal_number))?);
        let mut live_wals = wal_numbers;
        live_wals.push(wal_number);

        // Keep the clock ahead of every recovered tombstone tick so ages
        // stay meaningful after restart.
        let max_tick = version
            .all_files()
            .map(|f| f.created_tick)
            .chain(mem.stats().max_dkey)
            .chain(mem.range_tombstone_list().iter().map(|krt| krt.dkey))
            .max()
            .unwrap_or(0);
        opts.clock_advance_to(max_tick);

        events.push(Event::RecoveryStep {
            step: RecoveryStepKind::Finished,
            detail: mem.stats().entries as u64,
        });
        Ok(Bootstrap {
            state: State {
                mem: Arc::new(mem),
                imms: VecDeque::new(),
                live_wals,
                version: Arc::new(version),
                persisted_seqno,
                manifest,
                ttl_deadline: None,
            },
            wal,
            last_seqno,
            next_file_id,
            events,
            vlog_segments,
            vlog_dropped,
            vlog_next_segment,
        })
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Insert or update `key`, tagging it with the current tick as its
    /// secondary delete key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let dkey = self.core().opts.clock.now();
        self.put_with_dkey(key, value, dkey)
    }

    /// Insert or update `key` with an explicit secondary delete key.
    pub fn put_with_dkey(&self, key: &[u8], value: &[u8], dkey: u64) -> Result<()> {
        self.write(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey,
        })
    }

    /// Point-delete `key` (inserts a tombstone; physical erasure follows
    /// within the persistence threshold when FADE is enabled).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let tick = self.core().opts.clock.now();
        self.write(WalOp::Delete {
            key: Bytes::copy_from_slice(key),
            tick,
        })
    }

    /// Range-delete every sort key in `[start, end]` (inclusive) with a
    /// single WAL-logged range tombstone — O(1) writes regardless of how
    /// many keys the range covers. The tombstone shadows older versions
    /// immediately, travels through flush into SSTable metadata, and is
    /// purged by bottommost compactions within the FADE persistence
    /// threshold, exactly like a point tombstone.
    pub fn range_delete_keys(&self, start: &[u8], end: &[u8]) -> Result<()> {
        if start > end {
            return Err(Error::invalid_argument("range_delete_keys: start > end"));
        }
        let tick = self.core().opts.clock.now();
        self.write(WalOp::RangeDeleteKeys {
            start: Bytes::copy_from_slice(start),
            end: Bytes::copy_from_slice(end),
            tick,
        })
    }

    /// Apply a [`WriteBatch`] atomically: all of its operations become
    /// durable and visible together (one WAL record, consecutive
    /// sequence numbers), or none do.
    pub fn write_batch(&self, batch: WriteBatch) -> Result<()> {
        if batch.ops.is_empty() {
            return Ok(());
        }
        // Stamp queued deletes with the commit tick (their FADE age
        // starts now, not when they were queued).
        let now = self.core().opts.clock.now();
        let ops = batch
            .ops
            .into_iter()
            .map(|op| match op {
                WalOp::Delete { key, tick } if tick == u64::MAX => WalOp::Delete { key, tick: now },
                other => other,
            })
            .collect();
        self.write_ops(ops)
    }

    fn write(&self, op: WalOp) -> Result<()> {
        self.write_ops(vec![op])
    }

    /// Group commit. The calling thread enqueues its ops and either
    /// becomes the leader (drains the whole queue, appends + fsyncs the
    /// WAL once outside the state lock, publishes the group) or parks
    /// until a leader hands it the group's result.
    fn write_ops(&self, ops: Vec<WalOp>) -> Result<()> {
        let trace = self.core().tracer.sample(trace_op_for(&ops));
        self.write_ops_traced(ops, trace).map(|_| ())
    }

    /// [`Db::write_ops`] with an optional in-flight trace; returns the
    /// finished trace when one was supplied. A rider (a thread whose
    /// batch a leader committed for it) attributes only its queue wait
    /// — the leader's trace owns the WAL/vlog/memtable spans.
    fn write_ops_traced(
        &self,
        ops: Vec<WalOp>,
        mut trace: Option<TraceBuf>,
    ) -> Result<Option<OpTrace>> {
        let core = self.core();
        // Backpressure first, before any lock: stalled writers hold
        // nothing, so workers, readers, and commit leaders proceed
        // freely.
        if let Some(t) = trace.as_mut() {
            let started = Instant::now();
            core.throttle_writes()?;
            t.add(
                TraceStage::ThrottleWait,
                started.elapsed().as_micros() as u64,
            );
        } else {
            core.throttle_writes()?;
        }
        let mut q = core.commit.lock();
        if !q.exclusive && q.queue.is_empty() {
            // Uncontended fast path: commit alone as a group of one,
            // with no request allocation or result round-trip.
            q.exclusive = true;
            drop(q);
            let outcome = core.commit_group_inner(vec![ops], trace.as_mut());
            let mut q = core.commit.lock();
            q.exclusive = false;
            core.commit_cv.notify_all();
            drop(q);
            return match outcome {
                Ok(kick) => {
                    if kick {
                        core.kick_workers();
                    }
                    Ok(trace.map(|t| core.finish_trace(t)))
                }
                Err(e) => Err(e),
            };
        }
        let req = Arc::new(CommitRequest::default());
        q.queue.push(PendingCommit {
            req: Arc::clone(&req),
            ops,
        });
        let queued_at = trace.as_ref().map(|_| Instant::now());
        loop {
            // A previous leader may have committed us while we waited
            // for the queue lock or the condvar.
            if let Some(res) = req.result.lock().take() {
                if let (Some(t), Some(at)) = (trace.as_mut(), queued_at) {
                    t.add(TraceStage::CommitQueueWait, at.elapsed().as_micros() as u64);
                }
                res.map_err(Error::Internal)?;
                return Ok(trace.map(|t| core.finish_trace(t)));
            }
            if !q.exclusive {
                // Become the leader for everything queued so far.
                if let (Some(t), Some(at)) = (trace.as_mut(), queued_at) {
                    t.add(TraceStage::CommitQueueWait, at.elapsed().as_micros() as u64);
                }
                q.exclusive = true;
                let group = std::mem::take(&mut q.queue);
                drop(q);
                let kick = core.commit_group(group, trace.as_mut());
                let mut q = core.commit.lock();
                q.exclusive = false;
                core.commit_cv.notify_all();
                drop(q);
                if kick {
                    core.kick_workers();
                }
                let res = req.result.lock().take().expect("leader result is set");
                res.map_err(Error::Internal)?;
                return Ok(trace.map(|t| core.finish_trace(t)));
            }
            core.commit_cv.wait(&mut q);
        }
    }

    /// Secondary range delete: physically erase every entry whose delete
    /// key falls in `[lo, hi]` (inclusive). Takes effect immediately for
    /// reads; storage is reclaimed by compactions (which drop fully
    /// covered KiWi pages without reading them).
    pub fn range_delete_secondary(&self, lo: u64, hi: u64) -> Result<()> {
        let range = DeleteKeyRange::new(lo, hi);
        if range.is_empty() {
            return Err(Error::invalid_argument("range_delete_secondary: lo > hi"));
        }
        let core = self.core();
        // Seqno allocation requires the commit-exclusion domain (no
        // leader may interleave an allocation with ours).
        let _excl = core.commit_exclusive();
        let mut st = core.state.write();
        let seqno = core.seq_alloc.load(Ordering::Relaxed) + 1;
        if seqno > MAX_SEQNO {
            return Err(Error::Internal("sequence number space exhausted".into()));
        }
        core.seq_alloc.store(seqno, Ordering::Relaxed);
        let rt = RangeTombstone { seqno, range };
        st.manifest.append(&EditBatch {
            edits: vec![VersionEdit::AddRangeTombstone { seqno, range }],
        })?;
        st.version = Arc::new(st.version.apply(vec![], &[], &[rt], &[]));
        core.visible_seqno.store(seqno, Ordering::Release);
        core.stats.range_deletes.fetch_add(1, Ordering::Relaxed);
        if core.opts.auto_advance_clock {
            core.opts.clock_advance(1);
        }
        core.publish_view_locked(&st);
        Ok(())
    }

    /// Force-flush the memtable (and any queued sealed memtables) to L0;
    /// a no-op when everything is empty. Quiesces background workers for
    /// the duration so the flush is complete on return.
    pub fn flush(&self) -> Result<()> {
        let core = self.core();
        let _pause = core.paused();
        core.check_background_error()?;
        let _excl = core.commit_exclusive();
        let mut st = core.state.write();
        core.seal_memtable_locked(&mut st)?;
        core.flush_imms_locked(&mut st)
    }

    /// Full manual compaction: flush, then merge every level down until
    /// all data rests in a single bottom-level run. (The manual
    /// counterpart of RocksDB's full `CompactRange`.) Runs with
    /// background workers quiesced.
    pub fn compact_all(&self) -> Result<()> {
        let core = self.core();
        let _pause = core.paused();
        core.check_background_error()?;
        let _excl = core.commit_exclusive();
        let mut st = core.state.write();
        core.seal_memtable_locked(&mut st)?;
        core.flush_imms_locked(&mut st)?;
        core.maintain_locked(&mut st)?;
        let bottom = core.opts.max_levels - 1;
        for level in 0..bottom {
            loop {
                let inputs = st.version.levels[level].clone();
                if inputs.is_empty() {
                    break;
                }
                let next = {
                    let mut lo: Option<Bytes> = None;
                    let mut hi: Option<Bytes> = None;
                    for f in inputs.iter().filter(|f| f.stats.entry_count > 0) {
                        lo =
                            Some(lo.map_or(f.min_key().clone(), |c: Bytes| {
                                c.min(f.min_key().clone())
                            }));
                        hi =
                            Some(hi.map_or(f.max_key().clone(), |c: Bytes| {
                                c.max(f.max_key().clone())
                            }));
                    }
                    match (lo, hi) {
                        (Some(lo), Some(hi)) => st.version.overlapping_files(level + 1, &lo, &hi),
                        _ => Vec::new(),
                    }
                };
                let task = CompactionTask {
                    level,
                    inputs,
                    next_level_inputs: next,
                    output_level: level + 1,
                    output_run: 0,
                    reason: CompactionReason::Manual,
                };
                core.run_task_locked(&mut st, &task)?;
            }
        }
        // Reclaim pass: bottom-level files still overlapping a live
        // range tombstone (secondary *or* sort-key) are rewritten in
        // place so the erased entries (and, under KiWi, whole covered
        // pages) are physically dropped and the tombstone can retire or
        // purge. Bounded passes: snapshots may legitimately pin covered
        // entries, leaving the tombstone live; don't spin on it.
        for _ in 0..4 {
            let rts = st.version.range_tombstones.clone();
            let krts = st.version.collect_key_range_tombstones();
            if rts.is_empty() && krts.is_empty() {
                break;
            }
            let mut victims: Vec<_> = st.version.levels[bottom]
                .iter()
                .filter(|f| {
                    f.has_key_range_tombstones()
                        || (f.stats.entry_count > 0
                            && (rts.iter().any(|rt| {
                                f.stats.min_seqno < rt.seqno
                                    && rt.range.overlaps(f.stats.min_dkey, f.stats.max_dkey)
                            }) || krts.iter().any(|k| {
                                f.stats.min_seqno < k.seqno && f.overlaps_keys(&k.start, &k.end)
                            })))
                })
                .cloned()
                .collect();
            if victims.is_empty() {
                break;
            }
            // Close the victim set over entry-hull overlap so the merge
            // stays bottommost (required for any physical drop).
            loop {
                let span =
                    {
                        let mut lo: Option<Bytes> = None;
                        let mut hi: Option<Bytes> = None;
                        for f in victims.iter().filter(|f| f.stats.entry_count > 0) {
                            lo = Some(lo.map_or(f.min_key().clone(), |c: Bytes| {
                                c.min(f.min_key().clone())
                            }));
                            hi = Some(hi.map_or(f.max_key().clone(), |c: Bytes| {
                                c.max(f.max_key().clone())
                            }));
                        }
                        lo.zip(hi)
                    };
                let Some((lo, hi)) = span else { break };
                let before = victims.len();
                for f in st.version.levels[bottom].iter() {
                    if f.overlaps_keys(&lo, &hi) && !victims.iter().any(|v| v.id == f.id) {
                        victims.push(Arc::clone(f));
                    }
                }
                if victims.len() == before {
                    break;
                }
            }
            let task = CompactionTask {
                level: bottom,
                inputs: victims,
                next_level_inputs: Vec::new(),
                output_level: bottom,
                output_run: 0,
                reason: CompactionReason::Manual,
            };
            core.run_task_locked(&mut st, &task)?;
        }
        core.maintain_locked(&mut st)
    }

    /// Advance the engine's logical clock by `n` ticks (no-op when the
    /// configured clock is not a [`acheron_types::LogicalClock`]).
    /// Experiments use this to age tombstones without issuing writes.
    /// Wakes background workers so TTL expiries are acted on promptly.
    pub fn advance_clock(&self, n: u64) {
        self.core().opts.clock_advance(n);
        self.core().kick_workers();
    }

    /// Run pending maintenance (flushes, FADE TTL expirations,
    /// saturation compactions) inline until quiescent. Call after
    /// advancing an external clock. Background workers are quiesced for
    /// the duration; any sticky background error is surfaced here.
    pub fn maintain(&self) -> Result<()> {
        let core = self.core();
        let _pause = core.paused();
        core.check_background_error()?;
        {
            let _excl = core.commit_exclusive();
            let mut st = core.state.write();
            if let Some(ttl) = core.picker.ttl_schedule() {
                if ttl.buffer_expired(&st.mem, core.opts.clock.now()) {
                    core.seal_memtable_locked(&mut st)?;
                }
            }
            core.flush_imms_locked(&mut st)?;
            core.maintain_locked(&mut st)?;
        }
        // One arbiter sample per quiescent pass: this is the inline
        // analogue of the background workers' per-step tick.
        core.memory_tick();
        // Vlog GC runs after the tree is quiescent — compaction installs
        // above are what turn frames dead — and outside the locks, since
        // each rewrite re-enters the commit path.
        core.run_vlog_gc_until_quiet()
    }

    /// Block until background maintenance has nothing left to do: no
    /// sealed memtables queued, no expired write buffer, no pickable
    /// compaction, and no worker mid-step. With `background_threads = 0`
    /// this simply runs [`Db::maintain`] inline. Surfaces any sticky
    /// background error.
    pub fn wait_idle(&self) -> Result<()> {
        let core = self.core();
        if !core.background() {
            return self.maintain();
        }
        loop {
            core.check_background_error()?;
            core.kick_workers();
            if !core.has_pending_work() {
                let idle = core.maint.lock().in_flight == 0;
                // A worker may have installed new work between the two
                // checks, so re-verify emptiness after seeing in-flight
                // drain.
                if idle && !core.has_pending_work() {
                    return Ok(());
                }
            }
            let mut maint = core.maint.lock();
            core.done_cv.wait_for(&mut maint, WORKER_TICK);
        }
    }

    /// Quiesce background maintenance until the returned guard is
    /// dropped: in-flight steps finish, and no new ones start. Useful
    /// for tests and for taking consistent external backups. Pauses
    /// nest; writes continue (and may stall if pressure builds while
    /// maintenance is paused).
    pub fn pause_maintenance(&self) -> MaintenancePause {
        let core = Arc::clone(&self.inner.core);
        core.pause_raw();
        MaintenancePause { core }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Point lookup at the latest state. Lock-free: one atomic load for
    /// the read point, one `Arc` clone for the view, then the lookup
    /// runs entirely against the immutable view. The seqno MUST be
    /// loaded before the view — see the ordering rule on `ReadView`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let core = self.core();
        let mut trace = core.tracer.sample(TraceOp::Get);
        let view_started = trace.as_ref().map(|_| Instant::now());
        let snapshot = core.visible_seqno.load(Ordering::Acquire);
        let view = core.current_view();
        if let (Some(t), Some(s)) = (trace.as_mut(), view_started) {
            t.add(TraceStage::ViewClone, s.elapsed().as_micros() as u64);
        }
        let res = self.get_in_view(&view, key, snapshot, trace.as_mut());
        if let Some(t) = trace {
            core.finish_trace(t);
        }
        res
    }

    /// Point lookup at a snapshot.
    pub fn get_at(&self, snap: &Snapshot, key: &[u8]) -> Result<Option<Bytes>> {
        let view = self.core().current_view();
        self.get_in_view(&view, key, snap.seqno, None)
    }

    /// Early-exit newest-wins lookup. Sources are probed in recency
    /// order — active memtable, sealed memtables newest-first, L0
    /// newest-first, then deeper levels — and each source is skipped
    /// outright when its seqno ceiling cannot beat the best version
    /// found so far. Correctness does not depend on the probe order:
    /// the per-file `max_seqno` bound is what allows a skip, which also
    /// stays sound when FADE's TTL descents sink newer versions below
    /// older runs. Table probes consult the per-page bloom filters
    /// internally before any block read.
    fn get_in_view(
        &self,
        view: &ReadView,
        key: &[u8],
        snapshot: SeqNo,
        mut trace: Option<&mut TraceBuf>,
    ) -> Result<Option<Bytes>> {
        let core = self.core();
        core.stats.gets.fetch_add(1, Ordering::Relaxed);
        let Some(newest) = core.newest_live_in_view(view, key, snapshot, trace.as_deref_mut())?
        else {
            return Ok(None);
        };
        Ok(match newest.kind {
            acheron_types::ValueKind::Put => Some(newest.value),
            acheron_types::ValueKind::ValuePointer => {
                let started = trace.as_ref().map(|_| Instant::now());
                let value = core.deref_value_pointer(&newest)?;
                if let (Some(t), Some(s)) = (trace, started) {
                    t.add(TraceStage::VlogDeref, s.elapsed().as_micros() as u64);
                }
                Some(value)
            }
            _ => None,
        })
    }

    /// Register a read snapshot at the current sequence number.
    pub fn snapshot(&self) -> Snapshot {
        let core = self.core();
        // No state lock needed: the visible seqno is always at or above
        // every seqno inside any in-flight compaction's inputs (file
        // seqnos <= persisted <= visible), so a compaction that picked
        // its snapshot list before this registration cannot drop a
        // version this snapshot needs — the newest version <= seqno it
        // keeps anyway is the decider. See ARCHITECTURE.md for the full
        // ordering argument.
        let seqno = core.visible_seqno.load(Ordering::Acquire);
        *core.snapshots.lock().entry(seqno).or_insert(0) += 1;
        Snapshot {
            core: Arc::clone(&self.inner.core),
            seqno,
        }
    }

    /// Range scan over user keys `[lo, hi]` (inclusive) at the latest
    /// state. Returns key/value pairs in order.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>> {
        let mut it = self.range_iter(lo, hi)?;
        let mut out = Vec::new();
        while let Some(kv) = it.next_entry()? {
            out.push(kv);
        }
        Ok(out)
    }

    /// Range scan at a snapshot.
    pub fn scan_at(&self, snap: &Snapshot, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>> {
        let mut it = self.range_iter_at(snap, lo, hi)?;
        let mut out = Vec::new();
        while let Some(kv) = it.next_entry()? {
            out.push(kv);
        }
        Ok(out)
    }

    /// A streaming iterator over user keys `[lo, hi]` (inclusive) at the
    /// latest state — use instead of [`Db::scan`] when the range may be
    /// large and you want to stop early or avoid materializing it.
    ///
    /// The iterator reads from the version current at creation; writes
    /// issued afterwards are not visible to it.
    pub fn range_iter(&self, lo: &[u8], hi: &[u8]) -> Result<RangeIter> {
        let core = self.core();
        // Seqno before view — see the ordering rule on `ReadView`.
        let snapshot = core.visible_seqno.load(Ordering::Acquire);
        let view = core.current_view();
        self.range_iter_in_view(&view, lo, hi, snapshot)
    }

    /// A streaming range iterator at a snapshot.
    pub fn range_iter_at(&self, snap: &Snapshot, lo: &[u8], hi: &[u8]) -> Result<RangeIter> {
        let view = self.core().current_view();
        self.range_iter_in_view(&view, lo, hi, snap.seqno)
    }

    fn range_iter_in_view(
        &self,
        view: &ReadView,
        lo: &[u8],
        hi: &[u8],
        snapshot: SeqNo,
    ) -> Result<RangeIter> {
        use crate::merge::{KvSource, MergeIterator, VecSource};
        let core = self.core();
        core.stats.scans.fetch_add(1, Ordering::Relaxed);
        let visible_rts: Vec<RangeTombstone> = view
            .rts
            .iter()
            .filter(|rt| rt.seqno <= snapshot)
            .copied()
            .collect();
        // Sort-key range tombstones from every source. When only the
        // tree holds any, the version's prebuilt index is shared as-is;
        // buffered ones (rare) force a combined rebuild. Visibility is
        // filtered per-probe via the snapshot argument.
        let buffered_krts: Vec<acheron_types::KeyRangeTombstone> = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .filter(|m| m.range_tombstone_count() > 0)
            .flat_map(|m| m.range_tombstone_list())
            .collect();
        let krts = if buffered_krts.is_empty() {
            Arc::clone(&view.version.key_range_tombstones)
        } else {
            let mut all = view.version.collect_key_range_tombstones();
            all.extend(buffered_krts);
            Arc::new(acheron_types::FragmentedRangeTombstones::build(&all))
        };

        let seek_key = acheron_types::InternalKey::for_seek(lo, MAX_SEQNO);
        let mut sources: Vec<Box<dyn KvSource>> = Vec::new();

        // Memtables (active + sealed): materialize the range (all
        // versions; filtered below). Bounded by the write-buffer size,
        // so this is cheap even for huge on-disk ranges.
        for mem in std::iter::once(&view.mem).chain(view.imms.iter()) {
            let mut it = mem.iter();
            it.seek(seek_key.encoded());
            let mut buf = Vec::new();
            while it.valid() {
                let e = it.entry();
                if &e.key[..] > hi {
                    break;
                }
                buf.push(e.clone());
                it.next();
            }
            if !buf.is_empty() {
                sources.push(Box::new(VecSource::new(buf)));
            }
        }
        for f in view.version.all_files() {
            if f.overlaps_keys(lo, hi) {
                // No page skipping on reads: chain heads must be seen
                // (newest-version-decides).
                let mut it = f.table.iter(Vec::new());
                it.seek(seek_key.encoded())?;
                if acheron_sstable::TableIterator::valid(&it) {
                    sources.push(Box::new(it));
                }
            }
        }
        // The iterator holds Arc'd tables and owned entries, so it stays
        // valid however long it lives; compactions cannot delete the
        // files out from under it (Arc<Table> pins them, and MemFs/StdFs
        // handles stay readable after unlink).
        Ok(RangeIter {
            merge: MergeIterator::new(sources),
            hi: hi.to_vec(),
            snapshot,
            rts: visible_rts,
            krts,
            decided_key: None,
            core: Arc::clone(&self.inner.core),
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Engine statistics counters.
    pub fn stats(&self) -> &DbStats {
        &self.core().stats
    }

    /// The current write-pressure gauges, evaluated against the
    /// configured slowdown/stall limits. With `background_threads = 0`
    /// maintenance runs inline and writes never block, so the flags are
    /// advisory only in that mode.
    pub fn write_pressure(&self) -> WritePressure {
        let core = self.core();
        let (l0_files, sealed_memtables) = core.pressure();
        WritePressure {
            l0_files,
            sealed_memtables,
            slowdown: l0_files >= core.opts.l0_slowdown_files,
            stall: l0_files >= core.opts.l0_stall_files
                || sealed_memtables >= core.opts.max_imm_memtables,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &DbOptions {
        &self.core().opts
    }

    /// The filesystem the database lives on (for I/O accounting).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.core().fs)
    }

    /// Current clock tick.
    pub fn now(&self) -> Tick {
        self.core().opts.clock.now()
    }

    /// Page-cache hit/miss counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.core().cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// A snapshot of the engine's counters with the cache and
    /// memory-budget gauges filled in.
    ///
    /// Shared-scope fields (cache counters, total budget) are left zero
    /// when the cache is fleet-shared — the router reports the single
    /// shared instance once, so summing shard snapshots stays correct.
    /// Per-engine fields (memtable allowance, pinned bytes) are always
    /// filled.
    pub fn stats_snapshot(&self) -> crate::stats::StatsSnapshot {
        let core = self.core();
        let mut s = core.stats.snapshot();
        if !core.cache_is_shared {
            if let Some(c) = &core.cache {
                s.cache_hits = c.hits();
                s.cache_misses = c.misses();
                s.cache_evictions = c.evictions();
                s.cache_inserted_bytes = c.inserted_bytes();
                s.cache_used_bytes = c.used_bytes() as u64;
                s.cache_capacity_bytes = c.capacity_bytes() as u64;
            }
            if let Some(m) = &core.memory {
                s.memory_budget_bytes = m.total_bytes() as u64;
                s.memory_adjustments = m.adjustments();
            }
        }
        s.memtable_budget_bytes = core.write_buffer_limit() as u64;
        s.pinned_bytes = core.pinned_contrib.load(Ordering::Relaxed) as u64;
        s
    }

    /// The engine's memory arbiter, when one is configured (either via
    /// [`DbOptions::memory_budget_bytes`] or injected by a sharded
    /// fleet). Exposed for observability and experiments.
    pub fn memory_budget(&self) -> Option<Arc<MemoryBudget>> {
        self.core().memory.clone()
    }

    /// Per-level summary of the current tree.
    pub fn level_summary(&self) -> Vec<LevelInfo> {
        let view = self.core().current_view();
        (0..view.version.levels.len())
            .map(|level| LevelInfo {
                level,
                files: view.version.level_files(level),
                runs: view.version.level_runs(level),
                bytes: view.version.level_bytes(level),
                entries: view.version.levels[level]
                    .iter()
                    .map(|f| f.stats.entry_count)
                    .sum(),
                tombstones: view.version.levels[level]
                    .iter()
                    .map(|f| f.stats.tombstone_count)
                    .sum(),
            })
            .collect()
    }

    /// Point tombstones currently alive anywhere (memtables + tree).
    pub fn live_tombstones(&self) -> u64 {
        let view = self.core().current_view();
        let buffered: u64 = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .map(|m| m.stats().tombstones as u64)
            .sum();
        view.version.live_tombstones() + buffered
    }

    /// Total table bytes on storage.
    pub fn table_bytes(&self) -> u64 {
        self.core().current_view().version.total_bytes()
    }

    /// Live secondary range tombstones.
    pub fn live_range_tombstones(&self) -> Vec<RangeTombstone> {
        self.core().current_view().rts.to_vec()
    }

    /// Live sort-key range tombstones (buffered + on disk). Buffered
    /// tombstones are read from the active and sealed memtables; disk
    /// tombstones from the installed version's per-file metadata.
    pub fn live_key_range_tombstones(&self) -> u64 {
        let view = self.core().current_view();
        let buffered: u64 = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .map(|m| m.range_tombstone_count() as u64)
            .sum();
        view.version.live_key_range_tombstones() + buffered
    }

    /// Age (at `now`) of the oldest live sort-key range tombstone, if
    /// any — FADE bounds it by the same `D_th` as point deletes.
    pub fn oldest_live_key_range_tombstone_age(&self) -> Option<Tick> {
        let view = self.core().current_view();
        let now = self.core().opts.clock.now();
        let file_oldest = view
            .version
            .all_files()
            .filter_map(|f| f.stats.oldest_range_tombstone_tick())
            .min();
        let buffered_oldest = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .filter_map(|m| m.stats().oldest_range_tombstone_tick)
            .min();
        file_oldest
            .into_iter()
            .chain(buffered_oldest)
            .min()
            .map(|t| now.saturating_sub(t))
    }

    /// Age (at `now`) of the oldest live point tombstone, if any — the
    /// quantity FADE bounds by `D_th`.
    pub fn oldest_live_tombstone_age(&self) -> Option<Tick> {
        let view = self.core().current_view();
        let now = self.core().opts.clock.now();
        let file_oldest = view
            .version
            .all_files()
            .filter_map(|f| f.stats.oldest_tombstone_tick)
            .min();
        let buffered_oldest = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .filter_map(|m| m.stats().oldest_tombstone_tick)
            .min();
        file_oldest
            .into_iter()
            .chain(buffered_oldest)
            .min()
            .map(|t| now.saturating_sub(t))
    }

    /// Drain the flight recorder: a consistent snapshot of the newest
    /// retained events plus emission/drop totals. Never blocks or
    /// delays the writers feeding the ring.
    pub fn events(&self) -> EventSnapshot {
        self.core().obs.snapshot()
    }

    /// Put with an unconditional trace (bypasses the sampler; used by
    /// the wire `traced` command). `trace_id` overrides the allocated
    /// id so a client-chosen id survives the round trip.
    pub fn put_traced(&self, key: &[u8], value: &[u8], trace_id: Option<u64>) -> Result<OpTrace> {
        let core = self.core();
        let dkey = core.opts.clock.now();
        let mut buf = core.tracer.begin(TraceOp::Put);
        if let Some(id) = trace_id {
            buf.trace_id = id;
        }
        let trace = self.write_ops_traced(
            vec![WalOp::Put {
                key: Bytes::copy_from_slice(key),
                value: Bytes::copy_from_slice(value),
                dkey,
            }],
            Some(buf),
        )?;
        Ok(trace.expect("trace supplied"))
    }

    /// Point delete with an unconditional trace.
    pub fn delete_traced(&self, key: &[u8], trace_id: Option<u64>) -> Result<OpTrace> {
        let core = self.core();
        let tick = core.opts.clock.now();
        let mut buf = core.tracer.begin(TraceOp::Delete);
        if let Some(id) = trace_id {
            buf.trace_id = id;
        }
        let trace = self.write_ops_traced(
            vec![WalOp::Delete {
                key: Bytes::copy_from_slice(key),
                tick,
            }],
            Some(buf),
        )?;
        Ok(trace.expect("trace supplied"))
    }

    /// Point lookup with an unconditional trace.
    pub fn get_traced(
        &self,
        key: &[u8],
        trace_id: Option<u64>,
    ) -> Result<(Option<Bytes>, OpTrace)> {
        let core = self.core();
        let mut buf = core.tracer.begin(TraceOp::Get);
        if let Some(id) = trace_id {
            buf.trace_id = id;
        }
        let started = Instant::now();
        let snapshot = core.visible_seqno.load(Ordering::Acquire);
        let view = core.current_view();
        buf.add(TraceStage::ViewClone, started.elapsed().as_micros() as u64);
        let value = self.get_in_view(&view, key, snapshot, Some(&mut buf))?;
        Ok((value, core.finish_trace(buf)))
    }

    /// Traces retained by the sampler and by wire-traced ops, oldest
    /// first (bounded buffer, newest win).
    pub fn recent_traces(&self) -> Vec<OpTrace> {
        self.core().tracer.recent()
    }

    /// The delete-lifecycle compliance report: the ledger's cohorts
    /// plus the live gauges' unresolved delete-family ages (which also
    /// cover state predating this process), judged against the
    /// configured `D_th`.
    pub fn delete_audit(&self) -> DeleteAudit {
        let core = self.core();
        let now = core.opts.clock.now();
        let d_th = core
            .opts
            .fade
            .as_ref()
            .map(|f| f.delete_persistence_threshold);
        // Fold point + sort-key-range families into one oldest birth
        // tick (ages come from the same clock, so the max age is the
        // min tick).
        let oldest_live = self
            .oldest_live_tombstone_age()
            .into_iter()
            .chain(self.oldest_live_key_range_tombstone_age())
            .max()
            .map(|age| now.saturating_sub(age));
        let oldest_vlog = {
            let vs = core.vlog_state.lock();
            vs.segments
                .values()
                .filter_map(|a| a.oldest_dead_tick)
                .min()
        };
        DeleteAudit {
            now,
            d_th,
            cohorts: core.ledger.lock().snapshot(),
            oldest_live_tombstone_tick: oldest_live,
            oldest_vlog_dead_tick: oldest_vlog,
        }
    }

    /// Live delete-persistence gauges. Disk-level state is the copy
    /// recomputed at the last version install; the write-buffer and
    /// range-tombstone fields are filled here from the current read
    /// view, because buffer contents change without a version install.
    pub fn tombstone_gauges(&self) -> TombstoneGauges {
        let core = self.core();
        let mut gauges = (**core.gauges.lock()).clone();
        let view = core.current_view();
        let mut buffered = 0u64;
        let mut oldest: Option<Tick> = None;
        let mut buffered_krts = 0u64;
        let mut oldest_krt: Option<Tick> = None;
        for m in std::iter::once(&view.mem).chain(view.imms.iter()) {
            let s = m.stats();
            buffered += s.tombstones as u64;
            if let Some(t0) = s.oldest_tombstone_tick {
                oldest = Some(oldest.map_or(t0, |cur| cur.min(t0)));
            }
            buffered_krts += s.range_tombstones as u64;
            if let Some(t0) = s.oldest_range_tombstone_tick {
                oldest_krt = Some(oldest_krt.map_or(t0, |cur| cur.min(t0)));
            }
        }
        gauges.buffer_tombstones = buffered;
        gauges.buffer_oldest_tick = oldest;
        gauges.buffer_key_range_tombstones = buffered_krts;
        gauges.buffer_oldest_key_range_tick = oldest_krt;
        gauges.range_tombstones = view.rts.len() as u64;
        {
            let vs = core.vlog_state.lock();
            for acct in vs.segments.values() {
                gauges.vlog_live_bytes += acct.live_bytes;
                gauges.vlog_dead_bytes += acct.dead_bytes;
                if let Some(t0) = acct.oldest_dead_tick {
                    gauges.vlog_oldest_dead_tick =
                        Some(gauges.vlog_oldest_dead_tick.map_or(t0, |cur| cur.min(t0)));
                }
            }
        }
        gauges
    }

    /// Check structural invariants of the current tree (I1/I6): level
    /// ordering, per-file metadata consistency with actual contents.
    pub fn verify_integrity(&self) -> Result<()> {
        let view = self.core().current_view();
        view.version.check_invariants()?;
        for f in view.version.all_files() {
            // A one-pass integrity scan must not wipe out the cache.
            let mut it = f.table.iter_nofill(vec![]);
            it.seek_to_first()?;
            let mut entries = 0u64;
            let mut tombstones = 0u64;
            let mut last: Option<Vec<u8>> = None;
            while acheron_sstable::TableIterator::valid(&it) {
                if let Some(prev) = &last {
                    if acheron_types::key::compare_internal(prev, it.key())
                        != std::cmp::Ordering::Less
                    {
                        return Err(Error::Internal(format!(
                            "file {}: entries out of order",
                            f.id
                        )));
                    }
                }
                last = Some(it.key().to_vec());
                let e = it.entry()?;
                entries += 1;
                if e.is_tombstone() {
                    tombstones += 1;
                }
                acheron_sstable::TableIterator::next(&mut it)?;
            }
            if entries != f.stats.entry_count || tombstones != f.stats.tombstone_count {
                return Err(Error::Internal(format!(
                    "file {}: stats mismatch (entries {entries} vs {}, tombstones {tombstones} vs {})",
                    f.id, f.stats.entry_count, f.stats.tombstone_count
                )));
            }
        }
        Ok(())
    }
}

impl DbCore {
    /// Whether maintenance runs on background workers (vs inline in the
    /// write path).
    fn background(&self) -> bool {
        self.opts.background_threads > 0
    }

    /// Allocate a globally unique file id (tables, WALs, manifests).
    fn alloc_file_id(&self) -> u64 {
        self.next_file_id.fetch_add(1, Ordering::SeqCst)
    }

    fn snapshot_list(&self) -> Vec<SeqNo> {
        self.snapshots.lock().keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Group commit + read views
    // ------------------------------------------------------------------

    /// The current read view (an O(1) `Arc` clone; the lock is only ever
    /// write-held for a pointer store).
    /// The newest visible version of `key` at `snapshot` that is not
    /// erased by either range-tombstone flavor — the version that
    /// decides the key. `None` when no version is visible or the newest
    /// one is range-erased; the caller maps the surviving entry's kind
    /// (a point tombstone here still means "deleted").
    fn newest_live_in_view(
        &self,
        view: &ReadView,
        key: &[u8],
        snapshot: SeqNo,
        mut trace: Option<&mut TraceBuf>,
    ) -> Result<Option<Entry>> {
        let mem_started = trace.as_ref().map(|_| Instant::now());
        let mut best: Option<Entry> = view.mem.newest_visible(key, snapshot);
        if let (Some(t), Some(s)) = (trace.as_deref_mut(), mem_started) {
            t.add(TraceStage::MemtableProbe, s.elapsed().as_micros() as u64);
        }

        // Sealed memtables, newest first: their ceilings are strictly
        // decreasing, so once the best beats one it beats the rest.
        let mut imm_probes = 0u64;
        for imm in &view.imms {
            let ceiling = imm.max_seqno().unwrap_or(0);
            if best.as_ref().is_some_and(|b| b.seqno >= ceiling) {
                break;
            }
            imm_probes += 1;
            if let Some(e) = imm.newest_visible(key, snapshot) {
                if best.as_ref().is_none_or(|b| e.seqno > b.seqno) {
                    best = Some(e);
                }
            }
        }

        // L0 files in reverse install order (newest flush last), then
        // deeper levels. `Table::get` passes no range tombstones (`&[]`)
        // deliberately: the newest version must be seen even when
        // range-erased, because it is what decides the key's visibility.
        let cache_before = match (&trace, &self.cache) {
            (Some(_), Some(c)) => Some((c.hits(), c.misses())),
            _ => None,
        };
        let mut seqno_skips = 0u64;
        let mut bloom_skips = 0u64;
        let mut table_probes = 0u64;
        let l0 = view.version.levels[0].iter().rev();
        let deeper = view.version.levels[1..].iter().flatten();
        for f in l0.chain(deeper) {
            if f.stats.min_seqno > snapshot
                || best.as_ref().is_some_and(|b| b.seqno >= f.stats.max_seqno)
            {
                seqno_skips += 1;
                continue;
            }
            if !f.contains_key(key) {
                bloom_skips += 1;
                continue;
            }
            table_probes += 1;
            if let Some(e) = f.table.get(key, snapshot, &[])? {
                if best.as_ref().is_none_or(|b| e.seqno > b.seqno) {
                    best = Some(e);
                }
            }
        }
        if let Some(t) = trace {
            if imm_probes > 0 {
                t.add(TraceStage::ImmProbes, imm_probes);
            }
            if seqno_skips > 0 {
                t.add(TraceStage::SeqnoSkips, seqno_skips);
            }
            if bloom_skips > 0 {
                t.add(TraceStage::BloomPrescreenSkips, bloom_skips);
            }
            t.add(TraceStage::TableProbes, table_probes);
            if let (Some(c), Some((h0, m0))) = (&self.cache, cache_before) {
                // Global counter deltas: concurrent readers can bleed
                // in, so these are attribution hints, not exact counts.
                t.add(TraceStage::CacheHitPages, c.hits().saturating_sub(h0));
                t.add(TraceStage::CacheMissPages, c.misses().saturating_sub(m0));
            }
        }

        // Newest-version-decides: the single newest visible version
        // determines the outcome. The range-tombstone shadow check runs
        // in place over the view's shared slice — no per-get allocation.
        let Some(newest) = best else {
            return Ok(None);
        };
        if view
            .rts
            .iter()
            .any(|rt| rt.seqno <= snapshot && rt.shadows(newest.seqno, newest.dkey))
        {
            return Ok(None); // range-erased
        }
        // Sort-key range tombstones: the newest visible cover across the
        // buffers and the tree hides any older best. Each probe is a
        // binary search over a fragment index (empty-index fast path
        // short-circuits without taking a lock).
        let cover = std::iter::once(&view.mem)
            .chain(view.imms.iter())
            .filter_map(|m| m.range_cover(key, snapshot))
            .chain(
                view.version
                    .key_range_tombstones
                    .max_seqno_covering(key, snapshot),
            )
            .max();
        if cover.is_some_and(|c| newest.seqno < c) {
            return Ok(None); // inside a deleted sort-key range
        }
        Ok(Some(newest))
    }

    /// Resolve a `ValuePointer` entry to the user value it references.
    ///
    /// Fails loudly (never returns wrong data) on a malformed pointer,
    /// a missing segment, or a frame whose embedded key does not match:
    /// every frame carries its key precisely so a stale pointer can be
    /// detected at read time.
    fn deref_value_pointer(&self, entry: &Entry) -> Result<Bytes> {
        let Some(ptr) = ValuePointer::decode(&entry.value) else {
            return Err(Error::Corruption(format!(
                "malformed value pointer for key {:?}",
                entry.key
            )));
        };
        self.stats.vlog_reads.fetch_add(1, Ordering::Relaxed);
        self.vlog_reader.get(&ptr, &entry.key)
    }

    fn current_view(&self) -> Arc<ReadView> {
        Arc::clone(&self.view.read())
    }

    /// Build and swap in a fresh read view from `st`. Called (with the
    /// state write lock held) by every *structural* mutation — memtable
    /// seal, flush install, compaction install, range delete. Plain
    /// commits do not republish: they insert into the `mem` the current
    /// view already shares and advance `visible_seqno` (see the
    /// ordering rule on [`ReadView`]).
    fn publish_view_locked(&self, st: &State) {
        let view = Arc::new(ReadView {
            mem: Arc::clone(&st.mem),
            imms: st.imms.iter().rev().map(|i| Arc::clone(&i.mem)).collect(),
            version: Arc::clone(&st.version),
            rts: st.version.range_tombstones.clone().into(),
        });
        *self.view.write() = view;
        self.stats.read_view_swaps.fetch_add(1, Ordering::Relaxed);
        // Structural mutations are the only moment the installed file
        // set changes, so recomputing the delete-persistence gauges
        // here (O(files) over metadata only) keeps reads free and the
        // gauges incapable of drifting from the tree.
        *self.gauges.lock() = Arc::new(TombstoneGauges::from_version(&st.version));
        self.refresh_pinned(st);
    }

    /// The active memtable's seal threshold: the arbiter's per-writer
    /// allowance when a memory budget is configured, else the static
    /// [`DbOptions::write_buffer_bytes`].
    fn write_buffer_limit(&self) -> usize {
        self.memory
            .as_ref()
            .map(|m| m.memtable_bytes_per_writer())
            .unwrap_or(self.opts.write_buffer_bytes)
    }

    /// Recompute this engine's pinned filter/tile-metadata bytes (same
    /// install points as the gauges: the file set only changes here).
    /// The gauge is maintained whether or not a budget is configured —
    /// it is exported as `db_memory_pinned_bytes` either way. Under a
    /// budget, pinned growth additionally squeezes the arbitrated
    /// pool, so a material change re-applies the cache share too.
    fn refresh_pinned(&self, st: &State) {
        let pinned: usize = st.version.all_files().map(|f| f.table.pinned_bytes()).sum();
        let old = self.pinned_contrib.swap(pinned, Ordering::Relaxed);
        if old == pinned {
            return;
        }
        if let Some(m) = &self.memory {
            m.adjust_pinned(old, pinned);
            if let Some(c) = &self.cache {
                m.apply_cache_share(c);
            }
        }
    }

    /// Feed one cumulative sample to the memory arbiter and re-apply
    /// the cache share if the split moved. Cheap when idle (the tuner
    /// differences its inputs, so an unchanged window classifies as
    /// hold); called from both the inline and background maintenance
    /// paths.
    fn memory_tick(&self) {
        let (Some(m), Some(c)) = (&self.memory, &self.cache) else {
            return;
        };
        let sample = TunerSample {
            cache_fill_bytes: c.inserted_bytes(),
            write_bytes: self.stats.user_bytes.load(Ordering::Relaxed),
            write_stalls: self.stats.write_stalls.load(Ordering::Relaxed),
        };
        if m.tick(sample) {
            m.apply_cache_share(c);
        }
    }

    /// Close a trace: emit each span into the event ring, count it, and
    /// retain the whole trace for the `traces` command.
    fn finish_trace(&self, buf: TraceBuf) -> OpTrace {
        let trace = buf.finish();
        for (stage, value) in &trace.spans {
            self.obs.log(Event::TraceSpan {
                trace_id: trace.trace_id,
                op: trace.op,
                stage: *stage,
                value: *value,
            });
        }
        self.stats.traces_sampled.fetch_add(1, Ordering::Relaxed);
        self.tracer.record(trace.clone());
        trace
    }

    /// Enter the commit-exclusion domain: wait out any commit leader or
    /// other exclusive section, then own the WAL writer + seqno
    /// allocator until the token drops. Must be acquired *before* the
    /// state lock.
    fn commit_exclusive(&self) -> CommitExclusion<'_> {
        let mut q = self.commit.lock();
        while q.exclusive {
            self.commit_cv.wait(&mut q);
        }
        q.exclusive = true;
        CommitExclusion { core: self }
    }

    /// Commit a drained group as its leader: one WAL record per request
    /// (so per-batch atomicity and recovery framing are unchanged), one
    /// fsync for the whole group — both outside the state lock — then
    /// publish the memtable inserts, seqnos, and a fresh read view under
    /// a short state critical section. Distributes the result to every
    /// request; returns whether workers need a kick.
    fn commit_group(&self, group: Vec<PendingCommit>, trace: Option<&mut TraceBuf>) -> bool {
        let mut reqs = Vec::with_capacity(group.len());
        let mut op_lists = Vec::with_capacity(group.len());
        for p in group {
            reqs.push(p.req);
            op_lists.push(p.ops);
        }
        match self.commit_group_inner(op_lists, trace) {
            Ok(kick) => {
                for req in &reqs {
                    *req.result.lock() = Some(Ok(()));
                }
                kick
            }
            Err(e) => {
                let msg = e.to_string();
                for req in &reqs {
                    *req.result.lock() = Some(Err(msg.clone()));
                }
                false
            }
        }
    }

    fn commit_group_inner(
        &self,
        group: Vec<Vec<WalOp>>,
        mut trace: Option<&mut TraceBuf>,
    ) -> Result<bool> {
        // Phase 1: durability. WAL append + one group fsync under the
        // WAL mutex only — readers and background installs proceed.
        let mut batches: Vec<WalBatch> = Vec::with_capacity(group.len());
        let separation = self.opts.value_separation_threshold;
        // (segment, frame bytes) per value separated in this group,
        // folded into the live accounting once the WAL section ends.
        let mut separated: Vec<(u64, u64)> = Vec::new();
        let wal_started = trace.as_ref().map(|_| Instant::now());
        let mut vlog_micros = 0u64;
        {
            let mut wal = self.wal.lock();
            let mut vlog = self.vlog.lock();
            for mut ops in group {
                // Key-value separation: a large put moves its value into
                // the vlog *before* the WAL record referencing it is
                // appended (and the vlog head is synced before the WAL
                // sync below), so a durable pointer always has durable
                // bytes behind it. Recovery relies on this ordering.
                if separation > 0 {
                    let sep_started = trace.as_ref().map(|_| Instant::now());
                    for op in ops.iter_mut() {
                        let WalOp::Put { key, value, dkey } = op else {
                            continue;
                        };
                        if value.len() < separation {
                            continue;
                        }
                        if vlog.is_none() {
                            let seg = self.vlog_next_segment.load(Ordering::Relaxed);
                            *vlog = Some(VlogWriter::create(
                                Arc::clone(&self.fs),
                                &self.dir,
                                seg,
                                self.opts.vlog_segment_bytes,
                            )?);
                        }
                        let writer = vlog.as_mut().expect("writer just created");
                        let ptr = writer.append(key, value)?;
                        separated.push((ptr.segment, u64::from(ptr.len)));
                        self.stats.vlog_appends.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .vlog_bytes_written
                            .fetch_add(u64::from(ptr.len), Ordering::Relaxed);
                        *op = WalOp::PutPtr {
                            key: std::mem::take(key),
                            ptr,
                            dkey: *dkey,
                        };
                    }
                    if let Some(s) = sep_started {
                        vlog_micros += s.elapsed().as_micros() as u64;
                    }
                }
                let base = self.seq_alloc.load(Ordering::Relaxed) + 1;
                if base > MAX_SEQNO {
                    return Err(Error::Internal("sequence number space exhausted".into()));
                }
                let batch = WalBatch {
                    base_seqno: base,
                    ops,
                };
                // Advance the allocator before the append: on an append
                // error the consumed seqnos are never reused, so a
                // durably written record from earlier in the group can
                // never collide with a later retry's seqnos.
                self.seq_alloc.store(batch.last_seqno(), Ordering::Relaxed);
                wal.add_record(&batch.encode())?;
                batches.push(batch);
            }
            if let Some(w) = vlog.as_mut() {
                self.vlog_next_segment
                    .store(w.segment() + 1, Ordering::Relaxed);
            }
            if self.opts.wal_sync {
                // Vlog before WAL: a synced WAL record must never
                // reference unsynced frames.
                if let Some(w) = vlog.as_mut() {
                    w.sync()?;
                }
                wal.sync()?;
                self.stats.wal_syncs.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .wal_syncs_saved
                    .fetch_add(batches.len() as u64 - 1, Ordering::Relaxed);
            }
        }
        if let Some(t) = trace.as_deref_mut() {
            // The vlog appends happen inside the WAL critical section;
            // report them as their own stage and the remainder as the
            // WAL append + fsync.
            let section = wal_started
                .expect("timed when traced")
                .elapsed()
                .as_micros() as u64;
            t.add(
                TraceStage::WalAppendFsync,
                section.saturating_sub(vlog_micros),
            );
            if !separated.is_empty() {
                t.add(TraceStage::VlogAppend, vlog_micros);
                t.add(TraceStage::VlogFramesAppended, separated.len() as u64);
            }
        }
        if !separated.is_empty() {
            let mut vs = self.vlog_state.lock();
            for (segment, bytes) in &separated {
                vs.add_live(*segment, *bytes);
            }
        }
        self.stats.commit_groups.fetch_add(1, Ordering::Relaxed);
        let total_ops: u64 = batches.iter().map(|b| b.ops.len() as u64).sum();
        self.stats.commit_group_ops.record(total_ops);
        self.obs.log(Event::WalGroupCommit {
            ops: total_ops,
            commits: batches.len() as u64,
            synced: self.opts.wal_sync,
        });

        // Phase 2: visibility. Publish the whole group's inserts and the
        // new visible seqno, then swap the read view.
        let mem_started = trace.as_ref().map(|_| Instant::now());
        let mut st = self.state.write();
        // Delete-lifecycle ledger inputs, gathered while the entries
        // stream by so the ledger lock is taken at most once per group.
        let mut point_deletes = 0u64;
        let mut krt_deletes = 0u64;
        let mut first_delete_tick: Option<Tick> = None;
        for batch in &batches {
            let (entries, _ranges, key_ranges) = batch.entries();
            for e in entries {
                let mut payload_len = e.value.len();
                match e.kind {
                    acheron_types::ValueKind::Put => {
                        self.stats.puts.fetch_add(1, Ordering::Relaxed);
                    }
                    acheron_types::ValueKind::ValuePointer => {
                        // Separated put: account the user's original value
                        // length, not the 20-byte pointer the tree stores.
                        self.stats.puts.fetch_add(1, Ordering::Relaxed);
                        if let Some(ptr) = ValuePointer::decode(&e.value) {
                            payload_len = (ptr.len as usize)
                                .saturating_sub(acheron_vlog::FRAME_HEADER + 4 + e.key.len());
                        }
                    }
                    acheron_types::ValueKind::Tombstone => {
                        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                        point_deletes += 1;
                        first_delete_tick =
                            Some(first_delete_tick.map_or(e.dkey, |t| t.min(e.dkey)));
                    }
                    acheron_types::ValueKind::RangeTombstone
                    | acheron_types::ValueKind::KeyRangeTombstone => {}
                }
                self.stats
                    .user_bytes
                    .fetch_add((e.key.len() + payload_len) as u64, Ordering::Relaxed);
                st.mem.insert(e);
            }
            for krt in key_ranges {
                self.stats
                    .sort_range_deletes
                    .fetch_add(1, Ordering::Relaxed);
                self.stats
                    .user_bytes
                    .fetch_add((krt.start.len() + krt.end.len()) as u64, Ordering::Relaxed);
                krt_deletes += 1;
                first_delete_tick = Some(first_delete_tick.map_or(krt.dkey, |t| t.min(krt.dkey)));
                st.mem.add_range_tombstone(krt);
            }
            if self.opts.auto_advance_clock {
                self.opts.clock_advance(batch.ops.len() as u64);
            }
        }
        if point_deletes > 0 || krt_deletes > 0 {
            // Fold this group's deletes into the open cohort; the tick
            // is each delete's own stamp (its FADE age already runs).
            self.ledger.lock().note_deletes(
                point_deletes,
                krt_deletes,
                first_delete_tick.expect("deletes carry ticks"),
            );
        }
        let last = batches.last().expect("non-empty group").last_seqno();
        // This store is the entire visibility publish for a plain
        // commit: the inserts above went into the memtable every current
        // and future view shares, so advancing the ceiling (Release,
        // paired with the readers' Acquire load) makes them readable
        // without rebuilding the view.
        self.visible_seqno.store(last, Ordering::Release);
        if let Some(t) = trace.as_deref_mut() {
            let started = mem_started.expect("timed when traced");
            t.add(
                TraceStage::MemtableInsert,
                started.elapsed().as_micros() as u64,
            );
        }
        let maint_started = trace.as_ref().map(|_| Instant::now());

        // Tighten the cached TTL deadline when a tombstone — point or
        // sort-key range — enters the buffer (the buffer's oldest
        // tombstone only gets older, so the first one fixes the buffer
        // deadline until the next flush).
        if let Some(ttl) = self.picker.ttl_schedule() {
            if let Some(mem_deadline) = ttl.buffer_deadline(&st.mem) {
                st.ttl_deadline = Some(
                    st.ttl_deadline
                        .map_or(mem_deadline, |d| d.min(mem_deadline)),
                );
            }
        }
        let mut kick = false;
        if st.mem.approximate_bytes() >= self.write_buffer_limit() {
            // The leader already owns the commit-exclusion domain, so it
            // may seal (swap the WAL writer) directly.
            self.seal_memtable_locked(&mut st)?;
            if self.background() {
                // Workers flush the sealed queue; the writer moves on.
                kick = true;
            } else {
                self.flush_imms_locked(&mut st)?;
                self.maintain_locked(&mut st)?;
            }
        } else if let Some(deadline) = st.ttl_deadline {
            // Exact FADE trigger: something's residency budget ran out.
            if self.opts.clock.now() > deadline {
                if self.background() {
                    kick = true;
                } else {
                    if let Some(ttl) = self.picker.ttl_schedule() {
                        if ttl.buffer_expired(&st.mem, self.opts.clock.now()) {
                            self.seal_memtable_locked(&mut st)?;
                            self.flush_imms_locked(&mut st)?;
                        }
                    }
                    self.maintain_locked(&mut st)?;
                }
            }
        }
        if let Some(t) = trace {
            // Nonzero only in synchronous mode, where the seal/flush/
            // compaction this commit triggered ran inside the op.
            let micros = maint_started
                .expect("timed when traced")
                .elapsed()
                .as_micros() as u64;
            if micros > 0 {
                t.add(TraceStage::InlineMaintenance, micros);
            }
        }
        Ok(kick)
    }

    /// Recompute the cached earliest-TTL-expiry tick from the current
    /// tree and all buffers (active + sealed).
    fn recompute_ttl_deadline(&self, st: &mut State) {
        let Some(ttl) = self.picker.ttl_schedule() else {
            st.ttl_deadline = None;
            return;
        };
        let tree = ttl.next_deadline(st.version.all_files().map(|f| f.as_ref()), &st.mem);
        // Sealed memtables are still "station 0": their tombstones keep
        // aging against the buffer TTL until their flush installs.
        let imm = st
            .imms
            .iter()
            .filter_map(|i| ttl.buffer_deadline(&i.mem))
            .min();
        st.ttl_deadline = tree.into_iter().chain(imm).min();
    }

    // ------------------------------------------------------------------
    // Seal / flush / install
    // ------------------------------------------------------------------

    /// Seal the active memtable onto the flush queue and start a fresh
    /// memtable + WAL segment. No-op when the memtable is empty. No
    /// manifest record is written here: until the flush installs, the
    /// sealed data's durability still comes from its WAL segment, whose
    /// replay is bounded by the manifest's last `LogNumber`.
    ///
    /// Callers must be inside the commit-exclusion domain (they are a
    /// commit leader or hold a [`CommitExclusion`]): swapping the WAL
    /// writer under a leader's feet would tear its group.
    fn seal_memtable_locked(&self, st: &mut State) -> Result<()> {
        if st.mem.is_empty() {
            return Ok(());
        }
        let max_seqno = st.mem.max_seqno().expect("non-empty memtable");
        let sealed_entries = st.mem.stats().entries as u64;
        let sealed_bytes = st.mem.approximate_bytes() as u64;
        let new_wal_number = self.alloc_file_id();
        let new_wal = LogWriter::new(self.fs.create(&wal_path(&self.dir, new_wal_number))?);
        let sealed_wal = *st.live_wals.last().expect("active wal present");
        let sealed = std::mem::replace(&mut st.mem, Arc::new(Memtable::new()));
        *self.wal.lock() = new_wal;
        st.live_wals.push(new_wal_number);
        st.imms.push_back(ImmMemtable {
            mem: sealed,
            wal_number: sealed_wal,
            max_seqno,
        });
        self.stats
            .imm_queue_peak
            .fetch_max(st.imms.len() as u64, Ordering::Relaxed);
        self.obs.log(Event::MemtableSealed {
            entries: sealed_entries,
            bytes: sealed_bytes,
            sealed_behind: st.imms.len() as u64,
        });
        // Ledger: the open cohort's generation just sealed. Delete-free
        // seals still advance the epoch so flush completions (FIFO over
        // the sealed queue) stay aligned with their epochs.
        {
            let sealed_ref = &st.imms.back().expect("just pushed").mem;
            let min_seqno = sealed_ref.min_seqno().unwrap_or(0);
            let tombstones = sealed_ref.stats().tombstones as u64;
            let now = self.opts.clock.now();
            if let Some(epoch) = self.ledger.lock().seal(min_seqno, max_seqno, now) {
                self.obs.log(Event::CohortAdvanced {
                    epoch,
                    stage: CohortStage::Sealed,
                    level: 0,
                    tombstones,
                    tick: now,
                });
            }
        }
        self.recompute_ttl_deadline(st);
        // Readers (and the write throttle's gauges) must see the sealed
        // queue grow promptly.
        self.publish_view_locked(st);
        Ok(())
    }

    /// Build an L0 table from a sealed memtable. Pure I/O — callers run
    /// this without the state lock (background) or with it (inline).
    fn build_l0_table(&self, mem: &Memtable) -> Result<Option<Arc<FileMeta>>> {
        self.obs.log(Event::FlushStart {
            entries: mem.stats().entries as u64,
        });
        let now = self.opts.clock.now();
        let id = self.alloc_file_id();
        // Entries are flushed as-is; range-erased versions are purged at
        // bottommost compactions (purging here could let older, deeper
        // versions decide reads). Buffered sort-key range tombstones
        // ride into the table's stats block — a tombstone-only buffer
        // still produces a (carrier) file.
        write_l0_table(
            &self.fs,
            &self.dir,
            &self.opts,
            self.cache.as_ref(),
            mem.entries(),
            mem.range_tombstone_list(),
            id,
            id,
            now,
        )
    }

    /// Install a built L0 table for the *front* sealed memtable: manifest
    /// record first, then WAL retirement, then version publish — the
    /// crash-safety ordering the seed engine established.
    fn install_flush_locked(
        &self,
        st: &mut State,
        file: Option<Arc<FileMeta>>,
        micros: u64,
    ) -> Result<()> {
        let imm = st.imms.pop_front().expect("a sealed memtable is queued");
        // Ledger: the oldest sealed epoch finished flushing (flushes
        // pop the queue FIFO, matching the ledger's pending order).
        {
            let now = self.opts.clock.now();
            if let Some(epoch) = self.ledger.lock().flushed(now) {
                self.obs.log(Event::CohortAdvanced {
                    epoch,
                    stage: CohortStage::Flushed,
                    level: 0,
                    tombstones: imm.mem.stats().tombstones as u64,
                    tick: now,
                });
            }
        }
        // WAL segments strictly older than the next live one (the next
        // queued memtable's segment, or the active segment) are covered
        // by this install's PersistedSeqno and can be retired.
        let next_live_wal = st
            .imms
            .front()
            .map(|i| i.wal_number)
            .unwrap_or_else(|| *st.live_wals.last().expect("active wal present"));
        let mut edits = vec![
            VersionEdit::PersistedSeqno {
                seqno: imm.max_seqno,
            },
            VersionEdit::LogNumber {
                number: next_live_wal,
            },
            VersionEdit::NextFileId {
                id: self.next_file_id.load(Ordering::SeqCst),
            },
        ];
        if let Some(f) = &file {
            edits.insert(
                0,
                VersionEdit::AddFile {
                    level: 0,
                    run: f.run,
                    id: f.id,
                    size: f.size_bytes,
                    created_tick: f.created_tick,
                },
            );
            self.stats
                .compaction_bytes_out
                .fetch_add(f.size_bytes, Ordering::Relaxed);
        }
        st.manifest.append(&EditBatch { edits })?;

        // Retire WAL segments only after the manifest's LogNumber no
        // longer references them.
        let (retired, kept): (Vec<u64>, Vec<u64>) = std::mem::take(&mut st.live_wals)
            .into_iter()
            .partition(|n| *n < next_live_wal);
        st.live_wals = kept;
        for old in retired {
            let path = wal_path(&self.dir, old);
            if self.fs.exists(&path) {
                self.fs.delete(&path)?;
            }
        }

        let flushed = file
            .as_ref()
            .map(|f| (f.id, f.size_bytes, f.stats.entry_count));
        if let Some(f) = file {
            st.version = Arc::new(st.version.apply(vec![f], &[], &[], &[]));
        }
        st.persisted_seqno = st.persisted_seqno.max(imm.max_seqno);
        self.recompute_ttl_deadline(st);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let (file_id, bytes, entries) = flushed.unwrap_or((0, 0, 0));
        self.obs.log(Event::FlushEnd {
            file_id,
            bytes,
            entries,
            micros,
        });
        self.publish_view_locked(st);
        Ok(())
    }

    /// Drain the sealed-memtable queue inline (state lock held). Used by
    /// the synchronous mode and by paused foreground maintenance.
    fn flush_imms_locked(&self, st: &mut State) -> Result<()> {
        while let Some(front) = st.imms.front() {
            let mem = Arc::clone(&front.mem);
            let started = Instant::now();
            let file = self.build_l0_table(&mem)?;
            self.install_flush_locked(st, file, started.elapsed().as_micros() as u64)?;
        }
        Ok(())
    }

    /// Background flush of the front sealed memtable: build the table
    /// off-lock, then install under the state lock. Returns whether a
    /// flush happened. Callers must hold the `flush_claimed` ticket —
    /// combined with pauses draining `in_flight` before any foreground
    /// flush, that makes the front of the queue stable for the builder.
    fn flush_front_imm(&self) -> Result<bool> {
        let mem = {
            let st = self.state.read();
            match st.imms.front() {
                Some(i) => Arc::clone(&i.mem),
                None => return Ok(false),
            }
        };
        let started = Instant::now();
        let file = self.build_l0_table(&mem)?;
        {
            let mut st = self.state.write();
            self.install_flush_locked(&mut st, file, started.elapsed().as_micros() as u64)?;
        }
        self.stats
            .flush_micros
            .record(started.elapsed().as_micros() as u64);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// Run saturation/TTL compactions inline until the picker is
    /// quiescent (state lock held).
    fn maintain_locked(&self, st: &mut State) -> Result<()> {
        for _ in 0..MAX_COMPACTIONS_PER_PASS {
            let now = self.opts.clock.now();
            let Some(task) = self.picker.pick(&st.version, now) else {
                return Ok(());
            };
            self.run_task_locked(st, &task)?;
        }
        Err(Error::Internal(
            "compaction did not converge within the per-pass bound".into(),
        ))
    }

    /// Record a `CompactionPicked` event for `task`, with the FADE
    /// trigger inputs (most overdue input tombstone, cumulative budget
    /// at the input level) when a TTL schedule is configured.
    fn log_compaction_picked(&self, task: &CompactionTask, now: Tick) {
        let (overdue_by, deadline) = match self.picker.ttl_schedule() {
            Some(ttl) => ttl.trigger_inputs(task.all_inputs().map(|f| f.as_ref()), task.level, now),
            None => (0, 0),
        };
        self.obs.log(Event::CompactionPicked {
            level: task.level as u64,
            output_level: task.output_level as u64,
            input_files: task.all_inputs().count() as u64,
            input_bytes: task.input_bytes(),
            reason: task.reason,
            overdue_by,
            deadline,
        });
    }

    /// Execute one compaction task inline: run it against the current
    /// version, then install the outcome (state lock held throughout).
    fn run_task_locked(&self, st: &mut State, task: &CompactionTask) -> Result<()> {
        let started = Instant::now();
        let now = self.opts.clock.now();
        self.log_compaction_picked(task, now);
        let snapshots = self.snapshot_list();
        let outcome = run_compaction(
            &self.fs,
            &self.dir,
            &self.opts,
            self.cache.as_ref(),
            &st.version,
            task,
            &snapshots,
            now,
            || self.alloc_file_id(),
        )?;
        self.install_compaction_locked(st, task, outcome, now, started.elapsed().as_micros() as u64)
    }

    /// Background variant: merge against the version captured when the
    /// task was claimed (disjointness is guaranteed by the picker's
    /// claim marks), then install against the *current* version. Sound
    /// because concurrent installs are key- and file-disjoint, newer L0
    /// flushes only add data above the inputs, and snapshots registered
    /// after the claim hold seqnos at or above everything in the inputs.
    fn run_claimed_compaction(&self, version: &Version, task: &CompactionTask) -> Result<()> {
        let started = Instant::now();
        let now = self.opts.clock.now();
        self.log_compaction_picked(task, now);
        let snapshots = self.snapshot_list();
        let outcome = run_compaction(
            &self.fs,
            &self.dir,
            &self.opts,
            self.cache.as_ref(),
            version,
            task,
            &snapshots,
            now,
            || self.alloc_file_id(),
        )?;
        {
            let mut st = self.state.write();
            self.install_compaction_locked(
                &mut st,
                task,
                outcome,
                now,
                started.elapsed().as_micros() as u64,
            )?;
        }
        self.stats
            .compaction_micros
            .record(started.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Apply a compaction outcome: version delta, range-tombstone
    /// retirement, manifest record, physical deletes, statistics. The
    /// ordering invariant is manifest-append before version publish and
    /// before any physical file deletion.
    fn install_compaction_locked(
        &self,
        st: &mut State,
        task: &CompactionTask,
        outcome: crate::compaction::CompactionOutcome,
        now: Tick,
        micros: u64,
    ) -> Result<()> {
        // Apply to the version first so range-tombstone retirement sees
        // the post-compaction file set. A tombstone is retirable only if
        // no *buffer* (active or sealed memtable) holds anything it
        // could still shadow either — un-flushed covered entries must
        // remain shadowed once they reach disk.
        let mut new_version =
            st.version
                .apply(outcome.added.clone(), &outcome.deleted_ids, &[], &[]);
        let mut retirable = new_version.retirable_range_tombstones();
        if !retirable.is_empty() {
            let mut buffers: Vec<(SeqNo, u64, u64)> = Vec::new();
            for m in std::iter::once(st.mem.as_ref()).chain(st.imms.iter().map(|i| i.mem.as_ref()))
            {
                let stats = m.stats();
                if let (Some(min_seq), Some(lo), Some(hi)) =
                    (m.min_seqno(), stats.min_dkey, stats.max_dkey)
                {
                    buffers.push((min_seq, lo, hi));
                }
            }
            let rts = st.version.range_tombstones.clone();
            retirable.retain(|seqno| {
                !rts.iter().any(|rt| {
                    rt.seqno == *seqno
                        && buffers
                            .iter()
                            .any(|(ms, lo, hi)| *ms < rt.seqno && rt.range.overlaps(*lo, *hi))
                })
            });
        }
        if !retirable.is_empty() {
            new_version = new_version.apply(vec![], &[], &[], &retirable);
        }

        // Manifest record (deletes first so trivial moves replay
        // correctly).
        let mut edits: Vec<VersionEdit> = outcome
            .deleted_ids
            .iter()
            .map(|id| VersionEdit::DeleteFile { id: *id })
            .collect();
        for f in &outcome.added {
            edits.push(VersionEdit::AddFile {
                level: f.level as u64,
                run: f.run,
                id: f.id,
                size: f.size_bytes,
                created_tick: f.created_tick,
            });
        }
        for seqno in &retirable {
            edits.push(VersionEdit::DropRangeTombstone { seqno: *seqno });
        }
        edits.push(VersionEdit::NextFileId {
            id: self.next_file_id.load(Ordering::SeqCst),
        });
        st.manifest.append(&EditBatch { edits })?;

        // Physically remove replaced files (not those merely moved).
        let kept: Vec<u64> = outcome.added.iter().map(|f| f.id).collect();
        for id in &outcome.deleted_ids {
            if !kept.contains(id) {
                let path = sst_path(&self.dir, *id);
                if self.fs.exists(&path) {
                    self.fs.delete(&path)?;
                }
            }
        }
        st.version = Arc::new(new_version);

        // Statistics.
        use std::sync::atomic::Ordering::Relaxed;
        self.stats.compactions.fetch_add(1, Relaxed);
        if task.reason == CompactionReason::TtlExpired {
            self.stats.ttl_compactions.fetch_add(1, Relaxed);
        }
        self.stats
            .compaction_bytes_in
            .fetch_add(outcome.bytes_in, Relaxed);
        self.stats
            .compaction_bytes_out
            .fetch_add(outcome.bytes_out, Relaxed);
        self.stats
            .entries_shadowed
            .fetch_add(outcome.shadowed, Relaxed);
        self.stats
            .entries_range_purged
            .fetch_add(outcome.range_purged, Relaxed);
        self.stats
            .entries_key_range_purged
            .fetch_add(outcome.key_range_purged, Relaxed);
        self.stats
            .pages_dropped
            .fetch_add(outcome.pages_dropped, Relaxed);
        let d_th = self
            .opts
            .fade
            .as_ref()
            .map(|f| f.delete_persistence_threshold);
        for (delete_tick, _seqno) in &outcome.tombstones_dropped {
            if std::env::var_os("ACHERON_DEBUG_PURGE").is_some() {
                if let Some(d) = d_th {
                    let lat = now.saturating_sub(*delete_tick);
                    if lat > d {
                        eprintln!(
                            "VIOLATION lat={lat} d_th={d} now={now} t0={delete_tick} reason={:?} level={} out={} inputs={:?}",
                            task.reason, task.level, task.output_level,
                            task.all_inputs().map(|f| (f.id, f.level, f.stats.oldest_tombstone_tick)).collect::<Vec<_>>()
                        );
                    }
                }
            }
            self.stats.record_tombstone_purge(*delete_tick, now, d_th);
        }
        // Purged sort-key range tombstones feed the same persistence
        // histogram: FADE bounds their resolution latency by the same
        // D_th as point tombstones.
        for (delete_tick, _seqno) in &outcome.key_range_tombstones_dropped {
            self.stats.key_range_tombstones_purged.fetch_add(1, Relaxed);
            self.stats.record_tombstone_purge(*delete_tick, now, d_th);
        }
        // Pointers dropped by this compaction (shadowed or purged) turn
        // their vlog frames dead; the stamp is the tombstone's dkey (or
        // `now` for overwrites), which is what the GC deadline rule ages.
        if !outcome.vlog_dead.is_empty() {
            let mut vs = self.vlog_state.lock();
            for (segment, bytes, stamp) in &outcome.vlog_dead {
                vs.mark_dead(*segment, *bytes, *stamp);
            }
        }
        // Ledger: stamp cohort descent and member-tombstone resolution.
        // Every tombstone leaves a compaction exactly one way — purged,
        // superseded by a newer version, or krt-purged — and each way
        // reports its seqno here, so cohorts can account members out.
        {
            let mut ledger = self.ledger.lock();
            let windows: Vec<(SeqNo, SeqNo)> = task
                .all_inputs()
                .map(|f| (f.stats.min_seqno, f.stats.max_seqno))
                .collect();
            for epoch in ledger.entered_level(&windows, task.output_level as u64, now) {
                self.obs.log(Event::CohortAdvanced {
                    epoch,
                    stage: CohortStage::EnteredLevel,
                    level: task.output_level as u64,
                    tombstones: 0,
                    tick: now,
                });
            }
            let resolved = outcome
                .tombstones_dropped
                .iter()
                .chain(outcome.key_range_tombstones_dropped.iter())
                .map(|(_, seqno)| *seqno)
                .chain(outcome.tombstones_superseded.iter().copied());
            for seqno in resolved {
                if let Some(epoch) = ledger.tombstone_resolved(seqno, now) {
                    self.obs.log(Event::CohortAdvanced {
                        epoch,
                        stage: CohortStage::Purged,
                        level: task.output_level as u64,
                        tombstones: 0,
                        tick: now,
                    });
                }
            }
            for (segment, _bytes, stamp) in &outcome.vlog_dead {
                ledger.vlog_dead(*segment, *stamp);
            }
        }
        *self.stats.last_compaction_reason.lock() = Some(format!("{:?}", task.reason));
        self.obs.log(Event::CompactionEnd {
            level: task.level as u64,
            output_level: task.output_level as u64,
            bytes_in: outcome.bytes_in,
            bytes_out: outcome.bytes_out,
            entries_dropped: outcome.entries_dropped(),
            tombstones_purged: (outcome.tombstones_dropped.len()
                + outcome.key_range_tombstones_dropped.len()) as u64,
            micros,
        });
        self.recompute_ttl_deadline(st);
        self.publish_view_locked(st);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Value-log garbage collection
    // ------------------------------------------------------------------

    /// Pick one vlog segment worth rewriting, or `None` when the value
    /// log is quiescent.
    ///
    /// Two triggers, mirroring FADE's deadline semantics for the tree:
    /// a segment whose oldest dead extent has aged past `D_th` MUST be
    /// rewritten now (the deleted bytes are overdue for physical
    /// reclamation), and a segment whose dead fraction passed the
    /// configured ratio is rewritten opportunistically to bound space
    /// amplification. The head segment (still being appended) is never
    /// picked, and a retired segment — already rewritten, kept only for
    /// snapshot readers — becomes eligible for deletion once the last
    /// snapshot drops.
    fn vlog_gc_candidate(&self, now: Tick) -> Option<u64> {
        let head = self.vlog.lock().as_ref().map(|w| w.segment());
        let d_th = self
            .opts
            .fade
            .as_ref()
            .map(|f| f.delete_persistence_threshold);
        let ratio = u64::from(self.opts.vlog_gc_dead_ratio_percent);
        let snapshots_empty = self.snapshots.lock().is_empty();
        let vs = self.vlog_state.lock();
        for (seg, acct) in vs.segments.iter() {
            if acct.dead_bytes == 0 {
                continue;
            }
            if acct.retired {
                if snapshots_empty {
                    return Some(*seg);
                }
                continue;
            }
            let overdue = d_th
                .zip(acct.oldest_dead_tick)
                .is_some_and(|(d, t0)| now.saturating_sub(t0) >= d);
            if Some(*seg) == head {
                // The segment still being appended is only rewritten
                // when D_th forces it (run_vlog_gc rolls the writer
                // first); the ratio trigger waits for the roll.
                if overdue {
                    return Some(*seg);
                }
                continue;
            }
            let ratio_hit =
                ratio > 0 && acct.dead_bytes * 100 >= (acct.live_bytes + acct.dead_bytes) * ratio;
            if overdue || ratio_hit {
                return Some(*seg);
            }
        }
        None
    }

    /// Rewrite one vlog segment: re-commit its still-live values (they
    /// re-separate through the normal write path, landing at the vlog
    /// head with fresh pointers), then physically delete the file — or
    /// mark it retired when snapshot readers may still hold pointers
    /// into it, deferring the delete until the last snapshot drops.
    ///
    /// Liveness is decided under commit exclusion: the visible seqno is
    /// frozen while we compare each frame against the newest live
    /// version of its key, so a frame judged dead cannot be resurrected
    /// and a frame judged live cannot be superseded before our own
    /// rewrite batch commits. A frame is live iff the deciding version
    /// is a pointer to exactly this frame.
    fn run_vlog_gc(&self, segment: u64) -> Result<()> {
        let started = Instant::now();
        // A deadline-forced rewrite of the head segment first retires
        // the writer (synced, then dropped): the segment is immutable
        // from here on, so the scan below cannot miss late appends —
        // new separated values open a fresh segment.
        {
            let mut vlog = self.vlog.lock();
            if vlog.as_ref().is_some_and(|w| w.segment() == segment) {
                if let Some(w) = vlog.as_mut() {
                    w.sync()?;
                }
                *vlog = None;
                self.vlog_next_segment.store(segment + 1, Ordering::Relaxed);
            }
        }
        let path = vlog_path(&self.dir, segment);
        if !self.fs.exists(&path) {
            // A concurrent pass already reclaimed it.
            return Ok(());
        }
        let data = self.fs.read_all(&path)?;
        let scan = acheron_vlog::scan_segment(&data);

        let _excl = self.commit_exclusive();
        let snapshot = self.visible_seqno.load(Ordering::Acquire);
        let view = self.current_view();
        let mut ops: Vec<WalOp> = Vec::new();
        let mut rewritten = 0u64;
        for frame in &scan.frames {
            let Some(entry) = self.newest_live_in_view(&view, &frame.key, snapshot, None)? else {
                continue;
            };
            if entry.kind != acheron_types::ValueKind::ValuePointer {
                continue;
            }
            let Some(ptr) = ValuePointer::decode(&entry.value) else {
                continue;
            };
            if ptr.segment != segment || ptr.offset != frame.offset || ptr.len != frame.len {
                continue; // superseded pointer: this frame is dead
            }
            let frame_bytes =
                data.slice(frame.offset as usize..(frame.offset + u64::from(frame.len)) as usize);
            let (_key, value) = acheron_vlog::decode_frame(&frame_bytes)?;
            rewritten += u64::from(frame.len);
            ops.push(WalOp::Put {
                key: frame.key.clone(),
                value,
                dkey: entry.dkey,
            });
        }
        if !ops.is_empty() {
            // Safe under the held exclusion: the commit path takes only
            // the WAL/vlog/state locks, never the exclusion itself.
            self.commit_group_inner(vec![ops], None)?;
        }

        let reclaimed;
        if self.snapshots.lock().is_empty() {
            // No reader can hold a pointer into this segment any more:
            // every live value was just re-pointed at the head, and dead
            // frames are invisible at the frozen seqno.
            self.vlog_reader.invalidate(segment);
            if self.fs.exists(&path) {
                // Durability order for the delete: the rewrite batch
                // must be stable before the drop record, and the drop
                // record (manifest appends sync) before the file
                // vanishes. Live tables keep shadowed pointers into the
                // segment until compaction rewrites them; the manifest
                // record is what tells recovery and `doctor` those
                // references are expected-stale, not dangling.
                if !self.opts.wal_sync {
                    let mut wal = self.wal.lock();
                    if let Some(w) = self.vlog.lock().as_mut() {
                        w.sync()?;
                    }
                    wal.sync()?;
                }
                self.state.write().manifest.append(&EditBatch {
                    edits: vec![VersionEdit::DropVlogSegment { segment }],
                })?;
                self.fs.delete(&path)?;
                self.fs.sync_dir(&self.dir)?;
            }
            let mut vs = self.vlog_state.lock();
            vs.segments.remove(&segment);
            vs.dropped.insert(segment);
            drop(vs);
            // Ledger: cohorts waiting on this segment's dead extents
            // are released — their deletes are now physically gone.
            {
                let now = self.opts.clock.now();
                for epoch in self.ledger.lock().vlog_reclaimed(segment, now) {
                    self.obs.log(Event::CohortAdvanced {
                        epoch,
                        stage: CohortStage::VlogReclaimed,
                        level: 0,
                        tombstones: 0,
                        tick: now,
                    });
                }
            }
            reclaimed = data.len() as u64;
            self.stats
                .vlog_segments_deleted
                .fetch_add(1, Ordering::Relaxed);
            self.stats
                .vlog_gc_reclaimed_bytes
                .fetch_add(reclaimed, Ordering::Relaxed);
        } else {
            // A registered snapshot predates the rewrite and may still
            // dereference into this file. Keep the bytes; the segment is
            // now all-dead and is deleted on a later pass once the
            // snapshot count drains to zero.
            let mut vs = self.vlog_state.lock();
            let acct = vs.segments.entry(segment).or_default();
            acct.live_bytes = 0;
            acct.dead_bytes = data.len() as u64;
            acct.retired = true;
            reclaimed = 0;
        }
        self.stats.vlog_gc_rewrites.fetch_add(1, Ordering::Relaxed);
        self.stats
            .vlog_gc_rewritten_bytes
            .fetch_add(rewritten, Ordering::Relaxed);
        self.obs.log(Event::VlogGc {
            segment,
            rewritten_bytes: rewritten,
            reclaimed_bytes: reclaimed,
            micros: started.elapsed().as_micros() as u64,
        });
        Ok(())
    }

    /// Run vlog GC until no candidate remains (bounded, like
    /// `maintain_locked`, against pathological configurations).
    fn run_vlog_gc_until_quiet(&self) -> Result<()> {
        for _ in 0..MAX_COMPACTIONS_PER_PASS {
            let now = self.opts.clock.now();
            let Some(segment) = self.vlog_gc_candidate(now) else {
                return Ok(());
            };
            self.run_vlog_gc(segment)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Background executor
    // ------------------------------------------------------------------

    /// Worker thread body: claim a step, run it, repeat; sleep (with a
    /// periodic re-poll, so clock-driven TTL expiry is noticed) when
    /// there is nothing to do, while paused, and after an error.
    fn worker_loop(core: Arc<DbCore>) {
        loop {
            let mut maint = core.maint.lock();
            if maint.shutdown {
                return;
            }
            if maint.pause_depth > 0 || maint.error.is_some() {
                core.work_cv.wait_for(&mut maint, WORKER_TICK);
                continue;
            }
            // `in_flight` is bumped under the same critical section that
            // observed `pause_depth == 0`, so a pause that begins after
            // this point waits for the step below to finish.
            let seen_kicks = maint.kicks;
            maint.in_flight += 1;
            drop(maint);

            let outcome = core.run_one_maintenance_step();
            // Sample the arbiter once per worker step; differencing in
            // the tuner makes redundant calls classify as hold.
            core.memory_tick();

            let mut maint = core.maint.lock();
            maint.in_flight -= 1;
            core.done_cv.notify_all();
            match outcome {
                Ok(true) => {} // made progress: immediately look again
                Ok(false) => {
                    if maint.kicks == seen_kicks && !maint.shutdown {
                        core.work_cv.wait_for(&mut maint, WORKER_TICK);
                    }
                }
                Err(e) => {
                    if maint.error.is_none() {
                        maint.error = Some(e.to_string());
                    }
                    core.stats.background_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Perform at most one unit of maintenance, most urgent first:
    /// seal a TTL-expired write buffer, flush the oldest sealed
    /// memtable, or run one claimed compaction. Returns whether any
    /// work was done.
    fn run_one_maintenance_step(&self) -> Result<bool> {
        // 1. FADE: a tombstone in the active buffer ran out its station
        //    budget — seal so the flush (next step) starts its descent.
        if let Some(ttl) = self.picker.ttl_schedule() {
            let expired = {
                let st = self.state.read();
                ttl.buffer_expired(&st.mem, self.opts.clock.now())
            };
            if expired {
                // Sealing swaps the WAL writer, so enter the commit-
                // exclusion domain first (before the state lock, per the
                // lock hierarchy).
                let _excl = self.commit_exclusive();
                let mut st = self.state.write();
                // Re-check under the write lock: a racing writer may
                // have sealed already.
                if ttl.buffer_expired(&st.mem, self.opts.clock.now()) {
                    self.seal_memtable_locked(&mut st)?;
                    return Ok(true);
                }
            }
        }
        // 2. Flush the front of the sealed queue (single flusher keeps
        //    installs in seqno order).
        if self
            .flush_claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            let flushed = self.flush_front_imm();
            self.flush_claimed.store(false, Ordering::SeqCst);
            if flushed? {
                return Ok(true);
            }
        }
        // 3. One compaction, claimed so concurrent workers never touch
        //    overlapping inputs.
        let picked = {
            let st = self.state.read();
            let now = self.opts.clock.now();
            self.picker
                .pick_claimed(&st.version, now)
                .map(|(task, claim)| (task, claim, Arc::clone(&st.version)))
        };
        if let Some((task, claim, version)) = picked {
            let result = self.run_claimed_compaction(&version, &task);
            self.picker.release(claim);
            result?;
            return Ok(true);
        }
        // 4. Vlog GC: rewrite one segment whose dead bytes are overdue
        //    under D_th or past the dead-ratio trigger.
        if let Some(segment) = self.vlog_gc_candidate(self.opts.clock.now()) {
            self.run_vlog_gc(segment)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Wake all workers (and bump the kick counter so a worker that was
    /// mid-step re-polls instead of sleeping).
    fn kick_workers(&self) {
        if !self.background() {
            return;
        }
        {
            let mut maint = self.maint.lock();
            maint.kicks = maint.kicks.wrapping_add(1);
        }
        self.work_cv.notify_all();
    }

    /// Ask workers to exit and wake them; called from `DbInner::drop`
    /// (which then joins them) and from a failed `open`.
    fn request_shutdown(&self) {
        {
            let mut maint = self.maint.lock();
            maint.shutdown = true;
        }
        self.work_cv.notify_all();
    }

    /// Enter a pause: no new steps start, and any in-flight step is
    /// drained before this returns.
    fn pause_raw(&self) {
        let mut maint = self.maint.lock();
        maint.pause_depth += 1;
        while maint.in_flight > 0 {
            self.done_cv.wait_for(&mut maint, WORKER_TICK);
        }
    }

    fn unpause_raw(&self) {
        {
            let mut maint = self.maint.lock();
            maint.pause_depth -= 1;
        }
        self.work_cv.notify_all();
    }

    /// Scoped pause used by foreground maintenance entry points.
    fn paused(&self) -> PauseGuard<'_> {
        self.pause_raw();
        PauseGuard { core: self }
    }

    /// Surface the sticky background error, if any.
    fn check_background_error(&self) -> Result<()> {
        match &self.maint.lock().error {
            Some(e) => Err(Error::Internal(format!(
                "background maintenance failed: {e}"
            ))),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Write throttling
    // ------------------------------------------------------------------

    /// Current pressure gauges: (L0 file count, sealed-queue depth).
    /// Read off the current view — every seal and install publishes one,
    /// so the gauges are as fresh as the structures they meter.
    fn pressure(&self) -> (usize, usize) {
        let view = self.current_view();
        (view.version.level_files(0), view.imms.len())
    }

    /// Whether background work can still reduce the pressure. Guards the
    /// stall loop against waiting forever on a tree the picker considers
    /// final (e.g. a misconfigured stall limit below the picker's own
    /// triggers).
    fn reducible_pressure(&self) -> bool {
        let view = self.current_view();
        if !view.imms.is_empty() {
            return true;
        }
        self.picker
            .pick(&view.version, self.opts.clock.now())
            .is_some()
    }

    /// Backpressure, applied before each write takes any lock: delay
    /// briefly at the soft L0 limit; at a hard limit (L0 or sealed
    /// queue), block until workers bring the gauge back down.
    fn throttle_writes(&self) -> Result<()> {
        if !self.background() {
            return Ok(());
        }
        let (l0, imms) = self.pressure();
        let stall = l0 >= self.opts.l0_stall_files || imms >= self.opts.max_imm_memtables;
        if stall {
            let started = Instant::now();
            self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
            self.obs.log(Event::StallEnter {
                l0_files: l0 as u64,
                sealed_memtables: imms as u64,
            });
            self.kick_workers();
            loop {
                self.check_background_error()?;
                let (l0, imms) = self.pressure();
                if l0 < self.opts.l0_stall_files && imms < self.opts.max_imm_memtables {
                    break;
                }
                if !self.reducible_pressure() {
                    break;
                }
                let mut maint = self.maint.lock();
                self.done_cv.wait_for(&mut maint, STALL_RECHECK);
            }
            let waited_micros = started.elapsed().as_micros() as u64;
            self.stats.stall_micros.record(waited_micros);
            self.obs.log(Event::StallExit { waited_micros });
        } else if l0 >= self.opts.l0_slowdown_files {
            self.stats.write_slowdowns.fetch_add(1, Ordering::Relaxed);
            self.obs.log(Event::SlowdownEnter {
                l0_files: l0 as u64,
                sealed_memtables: imms as u64,
            });
            self.kick_workers();
            std::thread::sleep(SLOWDOWN_DELAY);
            self.obs.log(Event::SlowdownExit);
        }
        Ok(())
    }

    /// Whether any maintenance work is currently visible (used by
    /// [`Db::wait_idle`]).
    fn has_pending_work(&self) -> bool {
        let view = self.current_view();
        if !view.imms.is_empty() {
            return true;
        }
        let now = self.opts.clock.now();
        if let Some(ttl) = self.picker.ttl_schedule() {
            if ttl.buffer_expired(&view.mem, now) {
                return true;
            }
        }
        if self.picker.pick(&view.version, now).is_some() {
            return true;
        }
        self.vlog_gc_candidate(now).is_some()
    }
}

/// The trace-op classification of a WAL op list: a lone put or delete
/// keeps its identity, anything else is a batch write.
fn trace_op_for(ops: &[WalOp]) -> TraceOp {
    match ops {
        [WalOp::Put { .. }] | [WalOp::PutPtr { .. }] => TraceOp::Put,
        [WalOp::Delete { .. }] => TraceOp::Delete,
        _ => TraceOp::Write,
    }
}

impl DbOptions {
    fn clock_advance(&self, n: u64) {
        if let Some(lc) = self.logical_clock() {
            lc.advance(n);
        }
    }

    fn clock_advance_to(&self, t: Tick) {
        if let Some(lc) = self.logical_clock() {
            lc.advance_to(t);
        }
    }

    /// Downcast the clock to a logical clock, if that is what it is.
    fn logical_clock(&self) -> Option<&acheron_types::LogicalClock> {
        // Clock is object-safe without Any; use the concrete default.
        // DbOptions users driving a custom clock advance it themselves.
        let clock: &dyn Clock = self.clock.as_ref();
        // SAFETY-free downcast via trait object comparison is not
        // possible without `Any`; instead LogicalClock is detected by a
        // vtable-free helper on the trait.
        clock.as_logical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompactionLayout;
    use acheron_vfs::MemFs;

    fn open_mem(opts: DbOptions) -> (Arc<MemFs>, Db) {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts).unwrap();
        (fs, db)
    }

    fn small() -> DbOptions {
        DbOptions::small()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let (_fs, db) = open_mem(small());
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
        db.put(b"a", b"1bis").unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1bis");
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn reads_span_memtable_and_levels() {
        let (_fs, db) = open_mem(small());
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64])
                .unwrap();
        }
        // The tree must have flushed at least once by now.
        assert!(
            db.stats()
                .flushes
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
        for i in (0..2000u32).step_by(97) {
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
            assert!(got.is_some(), "key{i:05} lost");
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn overwrites_survive_compaction() {
        let (_fs, db) = open_mem(small());
        for round in 0..5u32 {
            for i in 0..500u32 {
                db.put(
                    format!("key{i:04}").as_bytes(),
                    format!("r{round}-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        db.compact_all().unwrap();
        for i in (0..500u32).step_by(13) {
            let got = db.get(format!("key{i:04}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_ref(), format!("r4-{i}").as_bytes());
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn deletes_survive_flush_and_compaction() {
        let (_fs, db) = open_mem(small());
        for i in 0..1000u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'x'; 32])
                .unwrap();
        }
        db.compact_all().unwrap();
        for i in 0..1000u32 {
            if i % 3 == 0 {
                db.delete(format!("key{i:04}").as_bytes()).unwrap();
            }
        }
        db.compact_all().unwrap();
        for i in 0..1000u32 {
            let got = db.get(format!("key{i:04}").as_bytes()).unwrap();
            assert_eq!(got.is_none(), i % 3 == 0, "key{i:04}");
        }
    }

    #[test]
    fn scan_merges_all_sources() {
        let (_fs, db) = open_mem(small());
        for i in 0..300u32 {
            db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        // Updates and deletes land in the memtable.
        db.put(b"key0010", b"updated").unwrap();
        db.delete(b"key0011").unwrap();
        let got = db.scan(b"key0009", b"key0013").unwrap();
        let rendered: Vec<(String, String)> = got
            .iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(k).into_owned(),
                    String::from_utf8_lossy(v).into_owned(),
                )
            })
            .collect();
        assert_eq!(
            rendered,
            vec![
                ("key0009".into(), "v9".into()),
                ("key0010".into(), "updated".into()),
                ("key0012".into(), "v12".into()),
                ("key0013".into(), "v13".into()),
            ]
        );
    }

    #[test]
    fn scan_bounds_are_inclusive() {
        let (_fs, db) = open_mem(small());
        for k in ["a", "b", "c", "d"] {
            db.put(k.as_bytes(), b"v").unwrap();
        }
        let got = db.scan(b"b", b"c").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.as_ref(), b"b");
        assert_eq!(got[1].0.as_ref(), b"c");
        assert!(db.scan(b"x", b"z").unwrap().is_empty());
    }

    #[test]
    fn snapshot_isolation_for_gets() {
        let (_fs, db) = open_mem(small());
        db.put(b"k", b"old").unwrap();
        let snap = db.snapshot();
        db.put(b"k", b"new").unwrap();
        db.delete(b"j").unwrap();
        assert_eq!(db.get_at(&snap, b"k").unwrap().unwrap().as_ref(), b"old");
        assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"new");
        drop(snap);
    }

    #[test]
    fn snapshot_survives_compaction() {
        let (_fs, db) = open_mem(small());
        db.put(b"pinned", b"v1").unwrap();
        let snap = db.snapshot();
        for i in 0..3000u32 {
            db.put(format!("fill{i:05}").as_bytes(), &[b'f'; 64])
                .unwrap();
        }
        db.put(b"pinned", b"v2").unwrap();
        db.compact_all().unwrap();
        assert_eq!(
            db.get_at(&snap, b"pinned").unwrap().unwrap().as_ref(),
            b"v1"
        );
        assert_eq!(db.get(b"pinned").unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn range_delete_secondary_erases_by_dkey() {
        let (_fs, db) = open_mem(small());
        for i in 0..100u32 {
            db.put_with_dkey(format!("key{i:03}").as_bytes(), b"v", u64::from(i))
                .unwrap();
        }
        db.range_delete_secondary(10, 19).unwrap();
        for i in 0..100u32 {
            let got = db.get(format!("key{i:03}").as_bytes()).unwrap();
            assert_eq!(got.is_none(), (10..20).contains(&i), "key{i:03}");
        }
        // Scans agree.
        let got = db.scan(b"key000", b"key099").unwrap();
        assert_eq!(got.len(), 90);
        // And the erasure persists through compaction.
        db.compact_all().unwrap();
        for i in 0..100u32 {
            let got = db.get(format!("key{i:03}").as_bytes()).unwrap();
            assert_eq!(
                got.is_none(),
                (10..20).contains(&i),
                "key{i:03} after compact"
            );
        }
    }

    #[test]
    fn range_delete_on_newest_version_hides_the_key() {
        // Newest-version-decides semantics: erasing the newest version
        // deletes the key; older versions do not resurface, no matter
        // when compaction physically reclaims the bytes.
        let (_fs, db) = open_mem(small());
        db.put_with_dkey(b"k", b"v-old", 5).unwrap();
        db.put_with_dkey(b"k", b"v-new", 50).unwrap();
        db.range_delete_secondary(40, 60).unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.compact_all().unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        // An older version *is* still readable through a range that does
        // not cover the newest one.
        db.put_with_dkey(b"j", b"j-old", 5).unwrap();
        db.put_with_dkey(b"j", b"j-new", 100).unwrap();
        db.range_delete_secondary(0, 10).unwrap();
        assert_eq!(db.get(b"j").unwrap().unwrap().as_ref(), b"j-new");
    }

    #[test]
    fn range_delete_rejects_inverted_range() {
        let (_fs, db) = open_mem(small());
        assert!(db.range_delete_secondary(10, 5).is_err());
    }

    #[test]
    fn range_tombstones_retire_once_applied() {
        let (_fs, db) = open_mem(small());
        for i in 0..500u32 {
            db.put_with_dkey(format!("key{i:04}").as_bytes(), &[b'v'; 32], u64::from(i))
                .unwrap();
        }
        db.range_delete_secondary(0, 100).unwrap();
        assert_eq!(db.live_range_tombstones().len(), 1);
        db.compact_all().unwrap();
        assert!(
            db.live_range_tombstones().is_empty(),
            "fully applied range tombstone must retire"
        );
        db.verify_integrity().unwrap();
    }

    #[test]
    fn fade_bounds_tombstone_age() {
        let d_th = 2_000u64;
        let (_fs, db) = open_mem(small().with_fade(d_th));
        for i in 0..800u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
                .unwrap();
        }
        for i in 0..400u32 {
            db.delete(format!("key{i:04}").as_bytes()).unwrap();
        }
        // Drive the clock well past the threshold with unrelated writes.
        for i in 0..6000u32 {
            db.put(format!("other{i:05}").as_bytes(), &[b'w'; 32])
                .unwrap();
        }
        db.maintain().unwrap();
        let age = db.oldest_live_tombstone_age();
        assert!(
            age.is_none_or(|a| a <= d_th),
            "oldest tombstone age {age:?} exceeds D_th {d_th}"
        );
        assert_eq!(
            db.stats()
                .persistence_violations
                .load(std::sync::atomic::Ordering::Relaxed),
            0,
            "FADE must never violate the threshold"
        );
        assert!(
            db.stats()
                .ttl_compactions
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0,
            "TTL trigger should have fired"
        );
    }

    #[test]
    fn baseline_accumulates_tombstones_fade_purges_them() {
        // The scenario the paper motivates: a cold key range is deleted
        // and then the workload goes quiet. The baseline has no trigger
        // left, so its tombstones linger forever; FADE's TTL trigger
        // purges them as the clock advances.
        let d_th = 3_000u64;
        let run = |fade: bool| -> u64 {
            let opts = if fade {
                small().with_fade(d_th)
            } else {
                small()
            };
            let (_fs, db) = open_mem(opts);
            for i in 0..1000u32 {
                db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
                    .unwrap();
            }
            for i in 0..1000u32 {
                db.delete(format!("key{i:04}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
            // Quiet period: time passes, no writes.
            db.advance_clock(10 * d_th);
            db.maintain().unwrap();
            db.live_tombstones()
        };
        let baseline = run(false);
        let fade = run(true);
        assert_eq!(fade, 0, "FADE must purge every expired tombstone");
        assert!(
            baseline > 0,
            "delete-blind baseline has no reason to purge: {baseline}"
        );
    }

    #[test]
    fn crash_recovery_restores_acknowledged_writes() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            for i in 0..1500u32 {
                db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.delete(b"key00007").unwrap();
            db.range_delete_secondary(1, 2).unwrap();
            // No clean shutdown: just drop the handle.
        }
        let db = Db::open(fs as Arc<dyn Vfs>, "db", small()).unwrap();
        assert_eq!(db.get(b"key00007").unwrap(), None);
        for i in (0..1500u32).step_by(119) {
            if i == 7 {
                continue;
            }
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
            assert_eq!(
                got.unwrap().as_ref(),
                format!("v{i}").as_bytes(),
                "key{i:05}"
            );
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn recovery_is_idempotent_across_restarts() {
        let fs = Arc::new(MemFs::new());
        for restart in 0..3 {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            db.put(format!("round{restart}").as_bytes(), b"done")
                .unwrap();
            for r in 0..=restart {
                assert_eq!(
                    db.get(format!("round{r}").as_bytes())
                        .unwrap()
                        .unwrap()
                        .as_ref(),
                    b"done",
                    "restart {restart}, round {r}"
                );
            }
        }
    }

    /// Build the torn-mid-history image of the test below: a torn
    /// active segment plus a later-numbered segment holding a delete of
    /// "alpha" that must never replay.
    fn torn_mid_history_image() -> (Arc<MemFs>, String) {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            db.put(b"alpha", b"keep").unwrap();
            db.put(b"beta", b"torn-away").unwrap();
        }
        // Tear the tail of the active segment: "beta" is lost.
        let wal_name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .max()
            .unwrap();
        let wal_file = acheron_vfs::join("db", &wal_name);
        let data = fs.read_all(&wal_file).unwrap();
        fs.write_all(&wal_file, &data[..data.len() - 3]).unwrap();
        // Craft a later-numbered segment holding a delete of "alpha" —
        // the on-disk shape of unsynced writes landing out of order.
        let later = acheron_vfs::join("db", "000099.log");
        let mut w = LogWriter::new(fs.create(&later).unwrap());
        let mut batch = WalBatch::new(10);
        batch.ops.push(WalOp::Delete {
            key: Bytes::from_static(b"alpha"),
            tick: 1,
        });
        w.add_record(&batch.encode()).unwrap();
        w.finish().unwrap();
        (fs, later)
    }

    #[test]
    fn torn_wal_tail_stops_replay_of_later_segments() {
        // A tear in one WAL segment must end replay globally: records in
        // later-numbered segments were written strictly after the bytes
        // lost in the tear, so replaying them would recover a
        // non-contiguous history — here, resurrecting a delete whose
        // predecessors were never durable. (Dropping them silently is
        // only legitimate without `wal_sync`, when no write was ever
        // acknowledged durable — which is what `small()` uses; the
        // synced-WAL case refuses to open instead, tested below.)
        let (fs, later) = torn_mid_history_image();
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
        assert_eq!(
            db.get(b"alpha").unwrap().as_deref(),
            Some(&b"keep"[..]),
            "a delete past the tear must not replay"
        );
        assert_eq!(db.get(b"beta").unwrap(), None, "the torn record is lost");
        assert!(
            !fs.exists(&later),
            "the unreplayable segment is collected at recovery"
        );
    }

    #[test]
    fn torn_mid_history_with_synced_wal_refuses_to_open() {
        // Under `wal_sync` every record in an older segment was synced
        // before anything after it was written, so a tear followed by
        // more segments cannot come from a crash — it is media
        // corruption, and the later segments may hold acknowledged
        // writes. Discarding them silently would be data loss.
        let (fs, _later) = torn_mid_history_image();
        let opts = DbOptions {
            wal_sync: true,
            ..small()
        };
        let err = match Db::open(fs as Arc<dyn Vfs>, "db", opts) {
            Err(e) => e,
            Ok(_) => panic!("open must refuse a torn mid-history image under wal_sync"),
        };
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("torn mid-history"), "{err}");
    }

    #[test]
    fn failed_dropped_segment_delete_is_fatal_to_open() {
        // The post-tear segments must be durably gone before the tear
        // is healed; a failed delete silently shrugged off would leave
        // a healed (clean-reading) segment alongside the dropped one,
        // and the next open would replay it — resurrecting the delete
        // of "alpha". So the delete failure must abort the open.
        use acheron_vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};
        let (fs, later) = torn_mid_history_image();
        let fault = FaultVfs::new(fs.clone() as Arc<dyn Vfs>);
        fault.inject(FaultRule::new(FaultOp::Delete, FaultKind::Error).on_path("000099.log"));
        assert!(
            Db::open(Arc::new(fault.clone()) as Arc<dyn Vfs>, "db", small()).is_err(),
            "a failed dropped-segment delete must be fatal"
        );
        assert!(fs.exists(&later), "the segment outlived its failed delete");
        // With the fault cleared the same image opens and the delete
        // past the tear still must not replay.
        fault.clear_faults();
        let db = Db::open(Arc::new(fault) as Arc<dyn Vfs>, "db", small()).unwrap();
        assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(&b"keep"[..]));
    }

    #[test]
    fn crash_between_dropped_segment_delete_and_heal_cannot_resurrect() {
        // Power dies exactly at the dropped-segment delete, before the
        // heal could land. The surviving image still shows the tear, so
        // the next open re-drops (and this time deletes) the later
        // segment instead of replaying its delete of "alpha".
        use acheron_vfs::{FaultKind, FaultOp, FaultRule, FaultVfs};
        let (fs, later) = torn_mid_history_image();
        let fault = FaultVfs::new(fs as Arc<dyn Vfs>);
        fault.inject(FaultRule::new(FaultOp::Delete, FaultKind::PowerCut).on_path("000099.log"));
        assert!(
            Db::open(Arc::new(fault.clone()) as Arc<dyn Vfs>, "db", small()).is_err(),
            "power died mid-recovery"
        );
        fault.reboot();
        let db = Db::open(Arc::new(fault.clone()) as Arc<dyn Vfs>, "db", small()).unwrap();
        assert_eq!(
            db.get(b"alpha").unwrap().as_deref(),
            Some(&b"keep"[..]),
            "the dropped segment's delete must not resurrect across the recovery crash"
        );
        assert!(
            !fault.exists(&later),
            "second recovery collected the dropped segment"
        );
    }

    #[test]
    fn crash_during_tear_heal_preserves_the_valid_prefix() {
        // The heal rewrites the torn segment via write-temp-then-rename;
        // whatever instant power dies at, the segment's valid prefix
        // (synced, acknowledged records whose only copy is this file)
        // must survive. Sweep a cut over every durability point of the
        // recovery, reboot, reopen, and check.
        use acheron_vfs::FaultVfs;
        for point in 0..8 {
            let fs = Arc::new(MemFs::new());
            {
                let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
                db.put(b"alpha", b"keep").unwrap();
                db.put(b"beta", b"torn-away").unwrap();
            }
            let wal_name = fs
                .list("db")
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".log"))
                .max()
                .unwrap();
            let wal_file = acheron_vfs::join("db", &wal_name);
            let data = fs.read_all(&wal_file).unwrap();
            fs.write_all(&wal_file, &data[..data.len() - 3]).unwrap();

            let fault = FaultVfs::new(fs as Arc<dyn Vfs>);
            fault.arm_power_cut_at(point);
            let _ = Db::open(Arc::new(fault.clone()) as Arc<dyn Vfs>, "db", small());
            fault.reboot();
            let db = Db::open(Arc::new(fault.clone()) as Arc<dyn Vfs>, "db", small())
                .unwrap_or_else(|e| panic!("reopen after cut at point {point}: {e}"));
            assert_eq!(
                db.get(b"alpha").unwrap().as_deref(),
                Some(&b"keep"[..]),
                "valid prefix lost by a heal crash at point {point}"
            );
            drop(db);
            for name in fault.list("db").unwrap() {
                assert!(
                    !name.ends_with(".tmp"),
                    "heal debris {name} not collected (cut point {point})"
                );
            }
        }
    }

    #[test]
    fn recovery_collects_orphan_files() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            for i in 0..2000u32 {
                db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48])
                    .unwrap();
            }
            db.flush().unwrap();
        }
        // Plant garbage a crash could leave behind: a table the
        // manifest never adopted and a stale pre-log-number WAL.
        fs.write_all("db/999990.sst", b"half-built table junk")
            .unwrap();
        fs.write_all("db/000001.log", b"stale segment").unwrap();
        let old_manifest = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("MANIFEST-"))
            .unwrap();
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
        assert!(!fs.exists("db/999990.sst"), "orphan table collected");
        assert!(!fs.exists("db/000001.log"), "obsolete WAL collected");
        assert!(
            !fs.exists(&acheron_vfs::join("db", &old_manifest)),
            "superseded manifest collected"
        );
        // Nothing live was touched.
        for i in (0..2000u32).step_by(97) {
            assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn tiering_layout_works_end_to_end() {
        let opts = DbOptions {
            layout: CompactionLayout::Tiering,
            ..small()
        };
        let (_fs, db) = open_mem(opts);
        for i in 0..4000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48])
                .unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..4000u32).step_by(211) {
            assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn lazy_leveling_layout_works_end_to_end() {
        let opts = DbOptions {
            layout: CompactionLayout::LazyLeveling,
            ..small()
        };
        let (_fs, db) = open_mem(opts);
        for i in 0..4000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48])
                .unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..4000u32).step_by(211) {
            assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn kiwi_tiles_preserve_correctness() {
        let opts = small().with_tile(8);
        let (_fs, db) = open_mem(opts);
        for i in 0..3000u32 {
            db.put_with_dkey(
                format!("key{i:05}").as_bytes(),
                format!("v{i}").as_bytes(),
                u64::from(i % 256),
            )
            .unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..3000u32).step_by(173) {
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_ref(), format!("v{i}").as_bytes());
        }
        let scanned = db.scan(b"key00100", b"key00200").unwrap();
        assert_eq!(scanned.len(), 101);
    }

    #[test]
    fn stats_track_operations() {
        let (_fs, db) = open_mem(small());
        db.put(b"a", b"1").unwrap();
        db.delete(b"a").unwrap();
        db.get(b"a").unwrap();
        db.scan(b"a", b"z").unwrap();
        db.range_delete_secondary(0, 1).unwrap();
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(db.stats().puts.load(Relaxed), 1);
        assert_eq!(db.stats().deletes.load(Relaxed), 1);
        assert_eq!(db.stats().gets.load(Relaxed), 1);
        assert_eq!(db.stats().scans.load(Relaxed), 1);
        assert_eq!(db.stats().range_deletes.load(Relaxed), 1);
    }

    #[test]
    fn level_summary_shape() {
        let (_fs, db) = open_mem(small());
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64])
                .unwrap();
        }
        db.compact_all().unwrap();
        let summary = db.level_summary();
        assert_eq!(summary.len(), db.options().max_levels);
        let total: u64 = summary.iter().map(|l| l.entries).sum();
        assert!(total > 0);
        assert!(
            summary.iter().any(|l| l.level > 0 && l.files > 0),
            "data should reach L1+"
        );
    }

    #[test]
    fn write_batch_is_atomic_and_visible_together() {
        let (_fs, db) = open_mem(small());
        db.put(b"victim", b"old").unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put_with_dkey(b"b", b"2", 77);
        batch.delete(b"victim");
        assert_eq!(batch.len(), 3);
        db.write_batch(batch).unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(db.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(db.get(b"victim").unwrap(), None);
        // Empty batches are a no-op.
        db.write_batch(WriteBatch::new()).unwrap();
        // dkey-tagged member is range-deletable.
        db.range_delete_secondary(77, 77).unwrap();
        assert_eq!(db.get(b"b").unwrap(), None);
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
    }

    #[test]
    fn batched_delete_age_starts_at_commit() {
        let (_fs, db) = open_mem(small().with_fade(5_000));
        db.put(b"k", b"v").unwrap();
        let mut batch = WriteBatch::new();
        batch.delete(b"k");
        db.write_batch(batch).unwrap();
        // The tombstone's tick must be a real clock value (not the
        // u64::MAX placeholder), or FADE aging breaks.
        let age = db.oldest_live_tombstone_age().expect("tombstone live");
        assert!(age < 1_000, "tombstone age {age} implies a bad commit tick");
    }

    #[test]
    fn block_cache_serves_repeated_reads() {
        let mut opts = small();
        opts.block_cache_bytes = 4 << 20;
        let (_fs, db) = open_mem(opts);
        for i in 0..3000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64])
                .unwrap();
        }
        db.compact_all().unwrap();
        let (h0, m0) = db.cache_stats().expect("cache configured");
        for _round in 0..3 {
            for i in (0..3000u32).step_by(17) {
                assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
            }
        }
        let (h1, m1) = db.cache_stats().expect("cache configured");
        let (hits, misses) = (h1 - h0, m1 - m0);
        assert!(
            hits > misses,
            "repeated reads should hit the cache: {hits} hits / {misses} misses"
        );
        // Without a cache the stats accessor reports None.
        let (_fs2, db2) = open_mem(small());
        assert!(db2.cache_stats().is_none());
    }

    #[test]
    fn results_identical_with_and_without_cache() {
        let run = |cache: usize| -> Vec<(Vec<u8>, Vec<u8>)> {
            let mut opts = small();
            opts.block_cache_bytes = cache;
            let (_fs, db) = open_mem(opts);
            for i in 0..2000u32 {
                db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
                if i % 3 == 0 {
                    db.delete(format!("key{:05}", i / 2).as_bytes()).unwrap();
                }
            }
            db.compact_all().unwrap();
            db.scan(b"key00000", b"key99999")
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect()
        };
        assert_eq!(run(0), run(1 << 20));
        // A pathologically tiny cache must also be correct.
        assert_eq!(run(0), run(64));
    }

    #[test]
    fn range_iter_streams_and_stops_early() {
        let (_fs, db) = open_mem(small());
        for i in 0..1000u32 {
            db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.delete(b"key0003").unwrap();
        db.flush().unwrap();
        // Stream only the first five live rows of a huge range.
        let mut it = db.range_iter(b"key0000", b"key9999").unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(it.next_entry().unwrap().expect("more rows"));
        }
        let keys: Vec<String> = got
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
            .collect();
        assert_eq!(
            keys,
            vec!["key0000", "key0001", "key0002", "key0004", "key0005"]
        );
        drop(it);
        // The streaming result equals the materialized scan.
        let mut it = db.range_iter(b"key0100", b"key0110").unwrap();
        let mut streamed = Vec::new();
        while let Some(kv) = it.next_entry().unwrap() {
            streamed.push(kv);
        }
        assert_eq!(streamed, db.scan(b"key0100", b"key0110").unwrap());
        // End-of-range is stable.
        assert!(it.next_entry().unwrap().is_none());
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn range_iter_survives_concurrent_compaction() {
        let (_fs, db) = open_mem(small());
        for i in 0..500u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32])
                .unwrap();
        }
        db.flush().unwrap();
        let mut it = db.range_iter(b"key0000", b"key9999").unwrap();
        // Pull a few rows, then compact everything underneath it.
        for _ in 0..10 {
            it.next_entry().unwrap().unwrap();
        }
        db.compact_all().unwrap();
        for i in 0..200u32 {
            db.put(format!("new{i:04}").as_bytes(), &[b'w'; 32])
                .unwrap();
        }
        // The iterator keeps serving its frozen view.
        let mut remaining = 10;
        while let Some((k, _)) = it.next_entry().unwrap() {
            assert!(
                k.starts_with(b"key"),
                "iterator view must not see new writes"
            );
            remaining += 1;
        }
        assert_eq!(remaining, 500);
    }

    #[test]
    fn empty_db_operations() {
        let (_fs, db) = open_mem(small());
        assert_eq!(db.get(b"nothing").unwrap(), None);
        assert!(db.scan(b"a", b"z").unwrap().is_empty());
        db.flush().unwrap();
        db.compact_all().unwrap();
        db.verify_integrity().unwrap();
        assert_eq!(db.live_tombstones(), 0);
    }

    // ------------------------------------------------------------------
    // Key-value separation (value log)
    // ------------------------------------------------------------------

    use std::sync::atomic::Ordering::Relaxed;

    fn vlog_opts() -> DbOptions {
        let mut opts = small().with_value_separation(64);
        // Small segments so workloads span several files and the GC has
        // non-head segments to work on.
        opts.vlog_segment_bytes = 2048;
        opts
    }

    fn big_value(i: u32) -> Vec<u8> {
        format!("value-{i:04}-")
            .into_bytes()
            .into_iter()
            .cycle()
            .take(300)
            .collect()
    }

    #[test]
    fn separated_values_round_trip_everywhere() {
        let (_fs, db) = open_mem(vlog_opts());
        db.put(b"small", b"tiny").unwrap();
        for i in 0..200u32 {
            db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                .unwrap();
        }
        assert!(db.stats().vlog_appends.load(Relaxed) >= 200);
        // Memtable read resolves through the pointer.
        assert_eq!(db.get(b"big0000").unwrap().unwrap(), big_value(0));
        db.flush().unwrap();
        db.compact_all().unwrap();
        // Table read resolves through the pointer.
        assert_eq!(db.get(b"big0123").unwrap().unwrap(), big_value(123));
        // Scans dereference at yield time.
        let got = db.scan(b"big0000", b"big0003").unwrap();
        assert_eq!(got.len(), 4);
        for (idx, (k, v)) in got.iter().enumerate() {
            assert_eq!(k.as_ref(), format!("big{idx:04}").as_bytes());
            assert_eq!(v, &big_value(idx as u32));
        }
        // Small values stay inline.
        assert_eq!(db.get(b"small").unwrap().unwrap().as_ref(), b"tiny");
        let gauges = db.tombstone_gauges();
        assert!(gauges.vlog_live_bytes > 0);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn separated_values_survive_crash_and_reopen() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
            for i in 0..120u32 {
                db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                    .unwrap();
            }
            db.flush().unwrap();
            // These stay in the WAL: recovery must re-validate their
            // vlog frames before replaying the pointers.
            for i in 120..160u32 {
                db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                    .unwrap();
            }
            // No clean shutdown: just drop the handle.
        }
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
        for i in 0..160u32 {
            assert_eq!(
                db.get(format!("big{i:04}").as_bytes()).unwrap().unwrap(),
                big_value(i),
                "big{i:04} lost across reopen"
            );
        }
        assert!(db.tombstone_gauges().vlog_live_bytes > 0);
        db.verify_integrity().unwrap();
    }

    #[test]
    fn recovery_drops_orphan_vlog_segments() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
            for i in 0..50u32 {
                db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        // A segment no pointer references (e.g. GC finished rewriting it
        // but crashed before deleting the file).
        let stray = "db/vlog-000099.vlg";
        (fs.clone() as Arc<dyn Vfs>)
            .write_all(stray, b"leftover bytes")
            .unwrap();
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
        assert!(
            !(fs.clone() as Arc<dyn Vfs>).exists(stray),
            "orphan segment should be removed by recovery GC"
        );
        assert_eq!(db.get(b"big0001").unwrap().unwrap(), big_value(1));
    }

    #[test]
    fn vlog_gc_drains_dead_extents_within_deadline() {
        let d_th = 2_000u64;
        let mut opts = vlog_opts().with_fade(d_th);
        // Disable the ratio trigger so only the deadline can drive GC.
        opts.vlog_gc_dead_ratio_percent = 0;
        let (_fs, db) = open_mem(opts);
        for i in 0..150u32 {
            db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                .unwrap();
        }
        db.flush().unwrap();
        for i in 0..150u32 {
            db.delete(format!("big{i:04}").as_bytes()).unwrap();
        }
        // Compaction drops the shadowed pointers, turning their frames
        // dead (stamped with the tombstone's dkey).
        db.compact_all().unwrap();
        assert!(
            db.tombstone_gauges().vlog_dead_bytes > 0,
            "purged pointers must surface as dead vlog bytes"
        );
        db.advance_clock(2 * d_th);
        db.maintain().unwrap();
        let gauges = db.tombstone_gauges();
        assert_eq!(gauges.vlog_dead_bytes, 0, "overdue dead extents must drain");
        assert_eq!(gauges.vlog_oldest_dead_tick, None);
        assert!(db.stats().vlog_segments_deleted.load(Relaxed) > 0);
        for i in 0..150u32 {
            assert_eq!(db.get(format!("big{i:04}").as_bytes()).unwrap(), None);
        }
    }

    #[test]
    fn vlog_gc_rewrites_live_values_and_preserves_reads() {
        let (_fs, db) = open_mem(vlog_opts());
        for i in 0..150u32 {
            db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                .unwrap();
        }
        db.flush().unwrap();
        // Kill most values so the dead ratio fires; survivors must be
        // carried to the vlog head by the rewrite.
        for i in 0..150u32 {
            if i % 5 != 0 {
                db.delete(format!("big{i:04}").as_bytes()).unwrap();
            }
        }
        db.compact_all().unwrap();
        db.maintain().unwrap();
        assert!(db.stats().vlog_gc_rewrites.load(Relaxed) > 0);
        assert!(db.stats().vlog_segments_deleted.load(Relaxed) > 0);
        for i in 0..150u32 {
            let got = db.get(format!("big{i:04}").as_bytes()).unwrap();
            if i % 5 == 0 {
                assert_eq!(got.unwrap(), big_value(i), "survivor big{i:04} lost by GC");
            } else {
                assert_eq!(got, None);
            }
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn vlog_gc_defers_deletion_while_snapshot_reads_old_pointers() {
        let (_fs, db) = open_mem(vlog_opts());
        for i in 0..100u32 {
            db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                .unwrap();
        }
        db.flush().unwrap();
        for i in 0..100u32 {
            if i % 4 != 0 {
                db.delete(format!("big{i:04}").as_bytes()).unwrap();
            }
        }
        db.compact_all().unwrap();
        // The snapshot's pointers into the rewritten segments must stay
        // dereferenceable until it is dropped.
        let snap = db.snapshot();
        db.maintain().unwrap();
        assert!(db.stats().vlog_gc_rewrites.load(Relaxed) > 0);
        assert_eq!(
            db.stats().vlog_segments_deleted.load(Relaxed),
            0,
            "no segment may be deleted while a snapshot is registered"
        );
        for i in 0..100u32 {
            if i % 4 == 0 {
                assert_eq!(
                    db.get_at(&snap, format!("big{i:04}").as_bytes())
                        .unwrap()
                        .unwrap(),
                    big_value(i),
                    "snapshot read of big{i:04} through retired segment"
                );
            }
        }
        drop(snap);
        db.maintain().unwrap();
        assert!(
            db.stats().vlog_segments_deleted.load(Relaxed) > 0,
            "retired segments must be reclaimed once the snapshot drops"
        );
        for i in (0..100u32).step_by(4) {
            assert_eq!(
                db.get(format!("big{i:04}").as_bytes()).unwrap().unwrap(),
                big_value(i)
            );
        }
    }

    #[test]
    fn recovery_rebuilds_vlog_accounting() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
            for i in 0..100u32 {
                db.put(format!("big{i:04}").as_bytes(), &big_value(i))
                    .unwrap();
            }
            db.flush().unwrap();
            for i in 0..40u32 {
                db.delete(format!("big{i:04}").as_bytes()).unwrap();
            }
            // Drop the pointers but leave GC to the next incarnation.
            let _pause = db.pause_maintenance();
            db.compact_all().unwrap();
        }
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", vlog_opts()).unwrap();
        let gauges = db.tombstone_gauges();
        assert!(
            gauges.vlog_live_bytes > 0,
            "live bytes rebuilt from table refs"
        );
        for i in 40..100u32 {
            assert_eq!(
                db.get(format!("big{i:04}").as_bytes()).unwrap().unwrap(),
                big_value(i)
            );
        }
        for i in 0..40u32 {
            assert_eq!(db.get(format!("big{i:04}").as_bytes()).unwrap(), None);
        }
    }

    #[test]
    fn separation_on_and_off_agree() {
        let run = |threshold: usize| -> Vec<(Bytes, Bytes)> {
            let mut opts = small();
            if threshold > 0 {
                opts = opts.with_value_separation(threshold);
                opts.vlog_segment_bytes = 2048;
            }
            let (_fs, db) = open_mem(opts);
            for i in 0..120u32 {
                db.put(format!("key{i:04}").as_bytes(), &big_value(i))
                    .unwrap();
            }
            for i in 0..120u32 {
                if i % 3 == 0 {
                    db.delete(format!("key{i:04}").as_bytes()).unwrap();
                }
            }
            for i in 0..120u32 {
                if i % 4 == 0 {
                    db.put(format!("key{i:04}").as_bytes(), &big_value(i + 1000))
                        .unwrap();
                }
            }
            db.compact_all().unwrap();
            db.maintain().unwrap();
            db.scan(b"key0000", b"key9999").unwrap()
        };
        assert_eq!(run(0), run(64), "separation must not change results");
    }
}
