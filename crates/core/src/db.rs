//! The Acheron database: a delete-aware LSM engine.
//!
//! # Concurrency model
//!
//! One writer at a time; readers share a `RwLock` over the mutable state
//! (active memtable + current version pointer). Flushes and compactions
//! run synchronously inside the write path — this keeps every experiment
//! deterministic (a given op sequence always produces the same tree),
//! which is what the reproduction needs; a background-compaction
//! scheduler would change throughput numbers but not the shapes the
//! paper's claims are about.
//!
//! # Secondary range-delete semantics
//!
//! `range_delete_secondary(lo, hi)` erases every entry whose delete key
//! lies in `[lo, hi]` as of the call, under **newest-version-decides**
//! visibility: a key whose newest visible version is erased reads as
//! deleted (older versions do *not* resurface — their visibility is
//! decided once, independent of when compaction physically removes
//! bytes). Physical reclamation happens at bottommost compactions,
//! which purge covered entries and — under KiWi — drop fully covered
//! pages without reading them.

use std::collections::BTreeMap;
use std::sync::Arc;

use acheron_memtable::Memtable;
use acheron_types::{
    Clock, DeleteKeyRange, Error, RangeTombstone, Result, SeqNo, Tick, MAX_SEQNO,
};
use acheron_vfs::Vfs;
use acheron_wal::{LogReader, LogWriter, ReadOutcome, WalBatch, WalOp};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::compaction::{run_compaction, write_l0_table};
use crate::filenames::{manifest_name, parse_file_name, sst_path, wal_path, FileKind};
use crate::manifest::{
    read_current, read_manifest, write_current, EditBatch, ManifestWriter, VersionEdit,
};
use crate::options::DbOptions;
use crate::picker::{CompactionReason, Picker};
use crate::stats::DbStats;
use crate::version::{FileMeta, Version};


/// Upper bound on back-to-back compactions per maintenance pass; a
/// correctly converging picker never reaches it.
const MAX_COMPACTIONS_PER_PASS: usize = 10_000;

struct State {
    mem: Memtable,
    wal: LogWriter,
    /// WAL segments that may still hold unflushed data (the active one
    /// last).
    live_wals: Vec<u64>,
    version: Arc<Version>,
    last_seqno: SeqNo,
    persisted_seqno: SeqNo,
    next_file_id: u64,
    manifest: ManifestWriter,
    /// Earliest tick at which a FADE TTL expires somewhere in the tree
    /// (None = nothing expires / FADE off). Maintained incrementally so
    /// the write path checks it in O(1).
    ttl_deadline: Option<Tick>,
}

struct DbInner {
    fs: Arc<dyn Vfs>,
    dir: String,
    opts: DbOptions,
    picker: Picker,
    stats: DbStats,
    cache: Option<Arc<acheron_sstable::BlockCache>>,
    snapshots: Mutex<BTreeMap<SeqNo, usize>>,
    state: RwLock<State>,
}

/// Handle to an open database. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Db {
    inner: Arc<DbInner>,
}

/// A consistent read point. Readers holding a snapshot see exactly the
/// data visible at its sequence number; compactions preserve the
/// versions it needs. Unregisters itself on drop.
pub struct Snapshot {
    inner: Arc<DbInner>,
    seqno: SeqNo,
}

impl Snapshot {
    /// The snapshot's sequence number.
    pub fn seqno(&self) -> SeqNo {
        self.seqno
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.inner.snapshots.lock();
        if let Some(count) = snaps.get_mut(&self.seqno) {
            *count -= 1;
            if *count == 0 {
                snaps.remove(&self.seqno);
            }
        }
    }
}

/// A group of writes applied atomically via [`Db::write_batch`]: they
/// become durable (one WAL record) and visible (consecutive sequence
/// numbers committed together) as a unit.
///
/// ```
/// # use acheron::{Db, DbOptions, db::WriteBatch};
/// # use acheron_vfs::MemFs;
/// # use std::sync::Arc;
/// # let db = Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap();
/// let mut batch = WriteBatch::new();
/// batch.put(b"debit:alice", b"-10");
/// batch.put(b"credit:bob", b"+10");
/// batch.delete(b"pending:tx17");
/// db.write_batch(batch).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct WriteBatch {
    ops: Vec<WalOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queue an insert/update (delete key = 0; use
    /// [`WriteBatch::put_with_dkey`] to tag one).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey: acheron_types::DELETE_KEY_NONE,
        });
        self
    }

    /// Queue an insert/update with an explicit secondary delete key.
    pub fn put_with_dkey(&mut self, key: &[u8], value: &[u8], dkey: u64) -> &mut Self {
        self.ops.push(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey,
        });
        self
    }

    /// Queue a point delete. The tombstone's age starts at the tick the
    /// batch commits.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        // Tick 0 placeholder; stamped at commit time below.
        self.ops.push(WalOp::Delete { key: Bytes::copy_from_slice(key), tick: u64::MAX });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A streaming range scan (see [`Db::range_iter`]): yields live
/// key/value pairs in sort-key order without materializing the range.
pub struct RangeIter {
    merge: crate::merge::MergeIterator,
    hi: Vec<u8>,
    snapshot: SeqNo,
    rts: Vec<RangeTombstone>,
    decided_key: Option<Bytes>,
}

impl RangeIter {
    /// The next live key/value pair, or `None` at the end of the range.
    ///
    /// (A fallible, streaming cursor — not `std::iter::Iterator` —
    /// because each step can hit I/O errors.)
    pub fn next_entry(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        while self.merge.valid() {
            let e = self.merge.entry()?;
            if e.key[..] > self.hi[..] {
                return Ok(None);
            }
            if self.decided_key.as_deref() == Some(&e.key[..]) || e.seqno > self.snapshot {
                self.merge.advance()?;
                continue;
            }
            // Newest visible version decides the key: a put that is not
            // range-erased yields the value; anything else hides the key.
            self.decided_key = Some(e.key.clone());
            let live = e.kind == acheron_types::ValueKind::Put
                && !self.rts.iter().any(|rt| rt.shadows(e.seqno, e.dkey));
            self.merge.advance()?;
            if live {
                return Ok(Some((e.key, e.value)));
            }
        }
        Ok(None)
    }
}

/// Summary of one level for stats displays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelInfo {
    /// Level index.
    pub level: usize,
    /// Live files.
    pub files: usize,
    /// Distinct runs.
    pub runs: usize,
    /// Total bytes.
    pub bytes: u64,
    /// Live entries.
    pub entries: u64,
    /// Live point tombstones.
    pub tombstones: u64,
}

impl Db {
    /// Open (creating or recovering) a database under `dir`.
    pub fn open(fs: Arc<dyn Vfs>, dir: &str, opts: DbOptions) -> Result<Db> {
        opts.validate()?;
        fs.mkdir_all(dir)?;
        let cache = (opts.block_cache_bytes > 0)
            .then(|| Arc::new(acheron_sstable::BlockCache::new(opts.block_cache_bytes)));
        let state = match read_current(fs.as_ref(), dir)? {
            None => Self::initialize(&fs, dir, &opts)?,
            Some(manifest) => Self::recover(&fs, dir, &opts, &manifest, cache.as_ref())?,
        };
        let inner = Arc::new(DbInner {
            picker: Picker::new(&opts),
            fs,
            dir: dir.to_string(),
            opts,
            stats: DbStats::default(),
            cache,
            snapshots: Mutex::new(BTreeMap::new()),
            state: RwLock::new(state),
        });
        let db = Db { inner };
        // Recovery may leave the tree over its triggers.
        db.maintain()?;
        Ok(db)
    }

    /// Create a fresh database directory layout.
    fn initialize(fs: &Arc<dyn Vfs>, dir: &str, opts: &DbOptions) -> Result<State> {
        let mut next_file_id = 1u64;
        let manifest_number = next_file_id;
        next_file_id += 1;
        let wal_number = next_file_id;
        next_file_id += 1;

        let name = manifest_name(manifest_number);
        let mut manifest = ManifestWriter::create(fs.as_ref(), &acheron_vfs::join(dir, &name))?;
        manifest.append(&EditBatch {
            edits: vec![
                VersionEdit::NextFileId { id: next_file_id },
                VersionEdit::LogNumber { number: wal_number },
            ],
        })?;
        write_current(fs.as_ref(), dir, &name)?;
        let wal = LogWriter::new(fs.create(&wal_path(dir, wal_number))?);
        Ok(State {
            mem: Memtable::new(),
            wal,
            live_wals: vec![wal_number],
            version: Arc::new(Version::empty(opts.max_levels)),
            last_seqno: 0,
            persisted_seqno: 0,
            next_file_id,
            manifest,
            ttl_deadline: None,
        })
    }

    /// Recover from an existing manifest + WAL set.
    fn recover(
        fs: &Arc<dyn Vfs>,
        dir: &str,
        opts: &DbOptions,
        manifest: &str,
        cache: Option<&Arc<acheron_sstable::BlockCache>>,
    ) -> Result<State> {
        let batches = read_manifest(fs.as_ref(), &acheron_vfs::join(dir, manifest))?;
        // Fold edits into the recovered metadata state.
        struct RecFile {
            level: u64,
            run: u64,
            size: u64,
            created_tick: u64,
        }
        let mut files: BTreeMap<u64, RecFile> = BTreeMap::new();
        let mut rts: Vec<RangeTombstone> = Vec::new();
        let mut persisted_seqno = 0u64;
        let mut log_number = 0u64;
        let mut next_file_id = 1u64;
        for batch in &batches {
            for edit in &batch.edits {
                match edit {
                    VersionEdit::AddFile { level, run, id, size, created_tick } => {
                        files.insert(
                            *id,
                            RecFile {
                                level: *level,
                                run: *run,
                                size: *size,
                                created_tick: *created_tick,
                            },
                        );
                    }
                    VersionEdit::DeleteFile { id } => {
                        files.remove(id);
                    }
                    VersionEdit::AddRangeTombstone { seqno, range } => {
                        rts.push(RangeTombstone { seqno: *seqno, range: *range });
                    }
                    VersionEdit::DropRangeTombstone { seqno } => {
                        rts.retain(|rt| rt.seqno != *seqno);
                    }
                    VersionEdit::PersistedSeqno { seqno } => {
                        persisted_seqno = persisted_seqno.max(*seqno);
                    }
                    VersionEdit::LogNumber { number } => log_number = log_number.max(*number),
                    VersionEdit::NextFileId { id } => next_file_id = next_file_id.max(*id),
                }
            }
        }

        // Open every live table.
        let mut version = Version::empty(opts.max_levels);
        let mut metas = Vec::with_capacity(files.len());
        for (id, rec) in &files {
            let path = sst_path(dir, *id);
            let table = acheron_sstable::Table::open_with_cache(fs.open(&path)?, cache.cloned())?;
            let stats = table.stats().clone();
            metas.push(Arc::new(FileMeta {
                id: *id,
                level: rec.level as usize,
                run: rec.run,
                size_bytes: rec.size,
                stats,
                created_tick: rec.created_tick,
                table,
            }));
        }
        version = version.apply(metas, &[], &rts, &[]);

        // Scan the directory for WALs to replay and to bound file ids.
        let mut wal_numbers: Vec<u64> = Vec::new();
        for name in fs.list(dir)? {
            match parse_file_name(&name) {
                FileKind::Wal(n) => {
                    next_file_id = next_file_id.max(n + 1);
                    if n >= log_number {
                        wal_numbers.push(n);
                    }
                }
                FileKind::Table(n) | FileKind::Manifest(n) => {
                    next_file_id = next_file_id.max(n + 1);
                }
                _ => {}
            }
        }
        wal_numbers.sort_unstable();

        // Replay surviving WAL records into a fresh memtable.
        let mut mem = Memtable::new();
        let mut last_seqno = persisted_seqno.max(rts.iter().map(|rt| rt.seqno).max().unwrap_or(0));
        for n in &wal_numbers {
            let data = fs.read_all(&wal_path(dir, *n))?;
            let mut reader = LogReader::new(data);
            loop {
                match reader.next_record() {
                    ReadOutcome::Record(rec) => {
                        let batch = WalBatch::decode(&rec)?;
                        let (entries, _ranges) = batch.entries();
                        for e in entries {
                            if e.seqno > persisted_seqno {
                                last_seqno = last_seqno.max(e.seqno);
                                mem.insert(e);
                            }
                        }
                    }
                    ReadOutcome::Eof => break,
                    // Torn tail: stop replay of this (and, by seqno
                    // ordering, every later) segment.
                    ReadOutcome::Corrupt { .. } => break,
                }
            }
        }

        // Start a new manifest containing a snapshot of the recovered
        // state (keeps manifests from growing without bound and lets the
        // old one be collected).
        let manifest_number = next_file_id;
        next_file_id += 1;
        let wal_number = next_file_id;
        next_file_id += 1;
        let name = manifest_name(manifest_number);
        let mut manifest = ManifestWriter::create(fs.as_ref(), &acheron_vfs::join(dir, &name))?;
        let mut snapshot_edits = vec![
            VersionEdit::NextFileId { id: next_file_id },
            VersionEdit::PersistedSeqno { seqno: persisted_seqno },
        ];
        // Old WALs must still replay next time if we crash before the
        // next flush, so the log number keeps pointing at the oldest
        // live segment.
        let oldest_live_wal = wal_numbers.first().copied().unwrap_or(wal_number);
        snapshot_edits.push(VersionEdit::LogNumber { number: oldest_live_wal.min(wal_number) });
        for f in version.all_files() {
            snapshot_edits.push(VersionEdit::AddFile {
                level: f.level as u64,
                run: f.run,
                id: f.id,
                size: f.size_bytes,
                created_tick: f.created_tick,
            });
        }
        for rt in &version.range_tombstones {
            snapshot_edits
                .push(VersionEdit::AddRangeTombstone { seqno: rt.seqno, range: rt.range });
        }
        manifest.append(&EditBatch { edits: snapshot_edits })?;
        write_current(fs.as_ref(), dir, &name)?;

        let wal = LogWriter::new(fs.create(&wal_path(dir, wal_number))?);
        let mut live_wals = wal_numbers;
        live_wals.push(wal_number);

        // Keep the clock ahead of every recovered tombstone tick so ages
        // stay meaningful after restart.
        let max_tick = version
            .all_files()
            .map(|f| f.created_tick)
            .chain(mem.stats().max_dkey)
            .max()
            .unwrap_or(0);
        opts.clock_advance_to(max_tick);

        Ok(State {
            mem,
            wal,
            live_wals,
            version: Arc::new(version),
            last_seqno,
            persisted_seqno,
            next_file_id,
            manifest,
            ttl_deadline: None,
        })
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Insert or update `key`, tagging it with the current tick as its
    /// secondary delete key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let dkey = self.inner.opts.clock.now();
        self.put_with_dkey(key, value, dkey)
    }

    /// Insert or update `key` with an explicit secondary delete key.
    pub fn put_with_dkey(&self, key: &[u8], value: &[u8], dkey: u64) -> Result<()> {
        self.write(WalOp::Put {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            dkey,
        })
    }

    /// Point-delete `key` (inserts a tombstone; physical erasure follows
    /// within the persistence threshold when FADE is enabled).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let tick = self.inner.opts.clock.now();
        self.write(WalOp::Delete { key: Bytes::copy_from_slice(key), tick })
    }

    /// Apply a [`WriteBatch`] atomically: all of its operations become
    /// durable and visible together (one WAL record, consecutive
    /// sequence numbers), or none do.
    pub fn write_batch(&self, batch: WriteBatch) -> Result<()> {
        if batch.ops.is_empty() {
            return Ok(());
        }
        // Stamp queued deletes with the commit tick (their FADE age
        // starts now, not when they were queued).
        let now = self.inner.opts.clock.now();
        let ops = batch
            .ops
            .into_iter()
            .map(|op| match op {
                WalOp::Delete { key, tick } if tick == u64::MAX => {
                    WalOp::Delete { key, tick: now }
                }
                other => other,
            })
            .collect();
        self.write_ops(ops)
    }

    fn write(&self, op: WalOp) -> Result<()> {
        self.write_ops(vec![op])
    }

    fn write_ops(&self, ops: Vec<WalOp>) -> Result<()> {
        let inner = &self.inner;
        let mut st = inner.state.write();
        let base = st.last_seqno + 1;
        if base > MAX_SEQNO {
            return Err(Error::Internal("sequence number space exhausted".into()));
        }
        let batch = WalBatch { base_seqno: base, ops };
        st.wal.add_record(&batch.encode())?;
        if inner.opts.wal_sync {
            st.wal.sync()?;
        }
        let (entries, _ranges) = batch.entries();
        for e in entries {
            match e.kind {
                acheron_types::ValueKind::Put => {
                    inner.stats.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                acheron_types::ValueKind::Tombstone => {
                    inner.stats.deletes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                acheron_types::ValueKind::RangeTombstone => {}
            }
            inner
                .stats
                .user_bytes
                .fetch_add((e.key.len() + e.value.len()) as u64, std::sync::atomic::Ordering::Relaxed);
            st.mem.insert(e);
        }
        st.last_seqno = batch.last_seqno();
        if inner.opts.auto_advance_clock {
            inner.opts.clock_advance(batch.ops.len() as u64);
        }

        // Tighten the cached TTL deadline when a tombstone enters the
        // buffer (the buffer's oldest tombstone only gets older, so the
        // first one fixes the buffer deadline until the next flush).
        if let (Some(ttl), Some(t0)) =
            (inner.picker.ttl_schedule(), st.mem.stats().oldest_tombstone_tick)
        {
            let mem_deadline = t0.saturating_add(ttl.buffer_ttl());
            st.ttl_deadline = Some(st.ttl_deadline.map_or(mem_deadline, |d| d.min(mem_deadline)));
        }

        if st.mem.approximate_bytes() >= inner.opts.write_buffer_bytes {
            self.flush_locked(&mut st)?;
            self.maintain_locked(&mut st)?;
        } else if let Some(deadline) = st.ttl_deadline {
            // Exact FADE trigger: something's residency budget ran out.
            if inner.opts.clock.now() > deadline {
                if let Some(ttl) = inner.picker.ttl_schedule() {
                    if ttl.buffer_expired(&st.mem, inner.opts.clock.now()) {
                        self.flush_locked(&mut st)?;
                    }
                }
                self.maintain_locked(&mut st)?;
            }
        }
        Ok(())
    }

    /// Secondary range delete: physically erase every entry whose delete
    /// key falls in `[lo, hi]` (inclusive). Takes effect immediately for
    /// reads; storage is reclaimed by compactions (which drop fully
    /// covered KiWi pages without reading them).
    pub fn range_delete_secondary(&self, lo: u64, hi: u64) -> Result<()> {
        let range = DeleteKeyRange::new(lo, hi);
        if range.is_empty() {
            return Err(Error::invalid_argument("range_delete_secondary: lo > hi"));
        }
        let inner = &self.inner;
        let mut st = inner.state.write();
        let seqno = st.last_seqno + 1;
        st.last_seqno = seqno;
        let rt = RangeTombstone { seqno, range };
        st.manifest.append(&EditBatch {
            edits: vec![VersionEdit::AddRangeTombstone { seqno, range }],
        })?;
        st.version = Arc::new(st.version.apply(vec![], &[], &[rt], &[]));
        inner
            .stats
            .range_deletes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if inner.opts.auto_advance_clock {
            inner.opts.clock_advance(1);
        }
        Ok(())
    }

    /// Force-flush the memtable to L0 (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.inner.state.write();
        self.flush_locked(&mut st)
    }

    /// Full manual compaction: flush, then merge every level down until
    /// all data rests in a single bottom-level run. (The manual
    /// counterpart of RocksDB's full `CompactRange`.)
    pub fn compact_all(&self) -> Result<()> {
        let mut st = self.inner.state.write();
        self.flush_locked(&mut st)?;
        self.maintain_locked(&mut st)?;
        let bottom = self.inner.opts.max_levels - 1;
        for level in 0..bottom {
            loop {
                let inputs = st.version.levels[level].clone();
                if inputs.is_empty() {
                    break;
                }
                let next = {
                    let mut lo: Option<Bytes> = None;
                    let mut hi: Option<Bytes> = None;
                    for f in inputs.iter().filter(|f| f.stats.entry_count > 0) {
                        lo = Some(lo.map_or(f.min_key().clone(), |c: Bytes| {
                            c.min(f.min_key().clone())
                        }));
                        hi = Some(hi.map_or(f.max_key().clone(), |c: Bytes| {
                            c.max(f.max_key().clone())
                        }));
                    }
                    match (lo, hi) {
                        (Some(lo), Some(hi)) => {
                            st.version.overlapping_files(level + 1, &lo, &hi)
                        }
                        _ => Vec::new(),
                    }
                };
                let task = crate::picker::CompactionTask {
                    level,
                    inputs,
                    next_level_inputs: next,
                    output_level: level + 1,
                    output_run: 0,
                    reason: CompactionReason::Manual,
                };
                self.run_task_locked(&mut st, &task)?;
            }
        }
        // Reclaim pass: bottom-level files still overlapping a live
        // range tombstone are rewritten in place so the erased entries
        // (and, under KiWi, whole covered pages) are physically dropped
        // and the tombstone can retire.
        // Bounded passes: snapshots may legitimately pin covered entries,
        // leaving the tombstone live; don't spin on it.
        for _ in 0..4 {
            let rts = st.version.range_tombstones.clone();
            if rts.is_empty() {
                break;
            }
            let victims: Vec<_> = st.version.levels[bottom]
                .iter()
                .filter(|f| {
                    f.stats.entry_count > 0
                        && rts.iter().any(|rt| {
                            f.stats.min_seqno < rt.seqno
                                && rt.range.overlaps(f.stats.min_dkey, f.stats.max_dkey)
                        })
                })
                .cloned()
                .collect();
            if victims.is_empty() {
                break;
            }
            let task = crate::picker::CompactionTask {
                level: bottom,
                inputs: victims,
                next_level_inputs: Vec::new(),
                output_level: bottom,
                output_run: 0,
                reason: CompactionReason::Manual,
            };
            self.run_task_locked(&mut st, &task)?;
        }
        self.maintain_locked(&mut st)
    }

    /// Advance the engine's logical clock by `n` ticks (no-op when the
    /// configured clock is not a [`acheron_types::LogicalClock`]).
    /// Experiments use this to age tombstones without issuing writes.
    pub fn advance_clock(&self, n: u64) {
        self.inner.opts.clock_advance(n);
    }

    /// Run pending compactions (FADE TTL expirations, saturations) until
    /// quiescent. Call after advancing an external clock.
    pub fn maintain(&self) -> Result<()> {
        let mut st = self.inner.state.write();
        if let Some(ttl) = self.inner.picker.ttl_schedule() {
            if ttl.buffer_expired(&st.mem, self.inner.opts.clock.now()) {
                self.flush_locked(&mut st)?;
            }
        }
        self.maintain_locked(&mut st)
    }

    fn flush_locked(&self, st: &mut State) -> Result<()> {
        let inner = &self.inner;
        if st.mem.is_empty() {
            return Ok(());
        }
        let now = inner.opts.clock.now();

        let id = st.next_file_id;
        st.next_file_id += 1;
        // Entries are flushed as-is; range-erased versions are purged at
        // bottommost compactions (purging here could let older, deeper
        // versions decide reads).
        let file = write_l0_table(
            &inner.fs,
            &inner.dir,
            &inner.opts,
            inner.cache.as_ref(),
            st.mem.entries(),
            id,
            id,
            now,
        )?;

        let persisted = st.mem.max_seqno().expect("non-empty memtable");
        let new_wal_number = st.next_file_id;
        st.next_file_id += 1;

        let mut edits = vec![
            VersionEdit::PersistedSeqno { seqno: persisted },
            VersionEdit::LogNumber { number: new_wal_number },
            VersionEdit::NextFileId { id: st.next_file_id },
        ];
        if let Some(f) = &file {
            edits.insert(
                0,
                VersionEdit::AddFile {
                    level: 0,
                    run: f.run,
                    id: f.id,
                    size: f.size_bytes,
                    created_tick: now,
                },
            );
            inner
                .stats
                .compaction_bytes_out
                .fetch_add(f.size_bytes, std::sync::atomic::Ordering::Relaxed);
        }
        st.manifest.append(&EditBatch { edits })?;

        // Swap in the new WAL, then retire old segments.
        st.wal = LogWriter::new(inner.fs.create(&wal_path(&inner.dir, new_wal_number))?);
        for old in std::mem::take(&mut st.live_wals) {
            let path = wal_path(&inner.dir, old);
            if inner.fs.exists(&path) {
                inner.fs.delete(&path)?;
            }
        }
        st.live_wals = vec![new_wal_number];

        if let Some(f) = file {
            st.version = Arc::new(st.version.apply(vec![f], &[], &[], &[]));
        }
        st.persisted_seqno = persisted;
        st.mem = Memtable::new();
        self.recompute_ttl_deadline(st);
        inner.stats.flushes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn maintain_locked(&self, st: &mut State) -> Result<()> {
        for _ in 0..MAX_COMPACTIONS_PER_PASS {
            let now = self.inner.opts.clock.now();
            let Some(task) = self.inner.picker.pick(&st.version, now) else {
                return Ok(());
            };
            self.run_task_locked(st, &task)?;
        }
        Err(Error::Internal(
            "compaction did not converge within the per-pass bound".into(),
        ))
    }

    /// Execute one compaction task: run it, apply the outcome to the
    /// version, log the manifest record, delete replaced files, update
    /// statistics.
    fn run_task_locked(&self, st: &mut State, task: &crate::picker::CompactionTask) -> Result<()> {
        let inner = &self.inner;
        let now = inner.opts.clock.now();
        let snapshots = self.snapshot_list();
        let mut next_id = st.next_file_id;
        let outcome = run_compaction(
            &inner.fs,
            &inner.dir,
            &inner.opts,
            inner.cache.as_ref(),
            &st.version,
            task,
            &snapshots,
            now,
            || {
                let id = next_id;
                next_id += 1;
                id
            },
        )?;
        st.next_file_id = next_id;

        // Apply to the version first so range-tombstone retirement sees
        // the post-compaction file set. A tombstone is retirable only if
        // the *memtable* holds nothing it could still shadow either —
        // un-flushed covered entries must remain shadowed once they
        // reach disk.
        let mut new_version =
            st.version.apply(outcome.added.clone(), &outcome.deleted_ids, &[], &[]);
        let mut retirable = new_version.retirable_range_tombstones();
        if let (Some(mem_min_seq), Some(lo), Some(hi)) = (
            st.mem.min_seqno(),
            st.mem.stats().min_dkey,
            st.mem.stats().max_dkey,
        ) {
            let rts = st.version.range_tombstones.clone();
            retirable.retain(|seqno| {
                !rts.iter().any(|rt| {
                    rt.seqno == *seqno && mem_min_seq < rt.seqno && rt.range.overlaps(lo, hi)
                })
            });
        }
        if !retirable.is_empty() {
            new_version = new_version.apply(vec![], &[], &[], &retirable);
        }

        // Manifest record (deletes first so trivial moves replay
        // correctly).
        let mut edits: Vec<VersionEdit> = outcome
            .deleted_ids
            .iter()
            .map(|id| VersionEdit::DeleteFile { id: *id })
            .collect();
        for f in &outcome.added {
            edits.push(VersionEdit::AddFile {
                level: f.level as u64,
                run: f.run,
                id: f.id,
                size: f.size_bytes,
                created_tick: f.created_tick,
            });
        }
        for seqno in &retirable {
            edits.push(VersionEdit::DropRangeTombstone { seqno: *seqno });
        }
        edits.push(VersionEdit::NextFileId { id: st.next_file_id });
        st.manifest.append(&EditBatch { edits })?;

        // Physically remove replaced files (not those merely moved).
        let kept: Vec<u64> = outcome.added.iter().map(|f| f.id).collect();
        for id in &outcome.deleted_ids {
            if !kept.contains(id) {
                let path = sst_path(&inner.dir, *id);
                if inner.fs.exists(&path) {
                    inner.fs.delete(&path)?;
                }
            }
        }
        st.version = Arc::new(new_version);

        // Statistics.
        use std::sync::atomic::Ordering::Relaxed;
        inner.stats.compactions.fetch_add(1, Relaxed);
        if task.reason == CompactionReason::TtlExpired {
            inner.stats.ttl_compactions.fetch_add(1, Relaxed);
        }
        inner.stats.compaction_bytes_in.fetch_add(outcome.bytes_in, Relaxed);
        inner.stats.compaction_bytes_out.fetch_add(outcome.bytes_out, Relaxed);
        inner.stats.entries_shadowed.fetch_add(outcome.shadowed, Relaxed);
        inner.stats.entries_range_purged.fetch_add(outcome.range_purged, Relaxed);
        inner.stats.pages_dropped.fetch_add(outcome.pages_dropped, Relaxed);
        let d_th = inner
            .opts
            .fade
            .as_ref()
            .map(|f| f.delete_persistence_threshold);
        for (delete_tick, _seqno) in &outcome.tombstones_dropped {
            if std::env::var_os("ACHERON_DEBUG_PURGE").is_some() {
                if let Some(d) = d_th {
                    let lat = now.saturating_sub(*delete_tick);
                    if lat > d {
                        eprintln!(
                            "VIOLATION lat={lat} d_th={d} now={now} t0={delete_tick} reason={:?} level={} out={} inputs={:?}",
                            task.reason, task.level, task.output_level,
                            task.all_inputs().map(|f| (f.id, f.level, f.stats.oldest_tombstone_tick)).collect::<Vec<_>>()
                        );
                    }
                }
            }
            inner.stats.record_tombstone_purge(*delete_tick, now, d_th);
        }
        *inner.stats.last_compaction_reason.lock() = Some(format!("{:?}", task.reason));
        self.recompute_ttl_deadline(st);
        Ok(())
    }

    /// Recompute the cached earliest-TTL-expiry tick from the current
    /// tree and buffer.
    fn recompute_ttl_deadline(&self, st: &mut State) {
        st.ttl_deadline = self
            .inner
            .picker
            .ttl_schedule()
            .and_then(|ttl| ttl.next_deadline(st.version.all_files().map(|f| f.as_ref()), &st.mem));
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Point lookup at the latest state.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let snapshot = self.inner.state.read().last_seqno;
        self.get_at_seqno(key, snapshot)
    }

    /// Point lookup at a snapshot.
    pub fn get_at(&self, snap: &Snapshot, key: &[u8]) -> Result<Option<Bytes>> {
        self.get_at_seqno(key, snap.seqno)
    }

    fn get_at_seqno(&self, key: &[u8], snapshot: SeqNo) -> Result<Option<Bytes>> {
        let inner = &self.inner;
        inner.stats.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let st = inner.state.read();
        let visible_rts: Vec<RangeTombstone> = st
            .version
            .range_tombstones
            .iter()
            .filter(|rt| rt.seqno <= snapshot)
            .copied()
            .collect();

        let mut candidates = st.mem.versions(key, snapshot);
        for f in st.version.all_files() {
            if f.contains_key(key) {
                // Read-path page skipping is disabled (`&[]`): the newest
                // version must be seen even when range-erased, because it
                // is what decides the key's visibility.
                candidates.extend(f.table.get_versions(key, snapshot, &[])?);
            }
        }
        // Newest-version-decides: the single newest visible version
        // determines the outcome.
        let Some(newest) = candidates.into_iter().max_by_key(|c| c.seqno) else {
            return Ok(None);
        };
        if visible_rts.iter().any(|rt| rt.shadows(newest.seqno, newest.dkey)) {
            return Ok(None); // range-erased
        }
        Ok(match newest.kind {
            acheron_types::ValueKind::Put => Some(newest.value),
            _ => None,
        })
    }

    /// Register a read snapshot at the current sequence number.
    pub fn snapshot(&self) -> Snapshot {
        let seqno = self.inner.state.read().last_seqno;
        *self.inner.snapshots.lock().entry(seqno).or_insert(0) += 1;
        Snapshot { inner: Arc::clone(&self.inner), seqno }
    }

    fn snapshot_list(&self) -> Vec<SeqNo> {
        self.inner.snapshots.lock().keys().copied().collect()
    }

    /// Range scan over user keys `[lo, hi]` (inclusive) at the latest
    /// state. Returns key/value pairs in order.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>> {
        let snapshot = self.inner.state.read().last_seqno;
        self.scan_at_seqno(lo, hi, snapshot)
    }

    /// Range scan at a snapshot.
    pub fn scan_at(&self, snap: &Snapshot, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>> {
        self.scan_at_seqno(lo, hi, snap.seqno)
    }

    fn scan_at_seqno(&self, lo: &[u8], hi: &[u8], snapshot: SeqNo) -> Result<Vec<(Bytes, Bytes)>> {
        let mut it = self.range_iter_at_seqno(lo, hi, snapshot)?;
        let mut out = Vec::new();
        while let Some(kv) = it.next_entry()? {
            out.push(kv);
        }
        Ok(out)
    }

    /// A streaming iterator over user keys `[lo, hi]` (inclusive) at the
    /// latest state — use instead of [`Db::scan`] when the range may be
    /// large and you want to stop early or avoid materializing it.
    ///
    /// The iterator reads from the version current at creation; writes
    /// issued afterwards are not visible to it.
    pub fn range_iter(&self, lo: &[u8], hi: &[u8]) -> Result<RangeIter> {
        let snapshot = self.inner.state.read().last_seqno;
        self.range_iter_at_seqno(lo, hi, snapshot)
    }

    /// A streaming range iterator at a snapshot.
    pub fn range_iter_at(&self, snap: &Snapshot, lo: &[u8], hi: &[u8]) -> Result<RangeIter> {
        self.range_iter_at_seqno(lo, hi, snap.seqno)
    }

    fn range_iter_at_seqno(&self, lo: &[u8], hi: &[u8], snapshot: SeqNo) -> Result<RangeIter> {
        use crate::merge::{KvSource, MergeIterator, VecSource};
        let inner = &self.inner;
        inner.stats.scans.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let st = inner.state.read();
        let visible_rts: Vec<RangeTombstone> = st
            .version
            .range_tombstones
            .iter()
            .filter(|rt| rt.seqno <= snapshot)
            .copied()
            .collect();

        let seek_key = acheron_types::InternalKey::for_seek(lo, MAX_SEQNO);
        let mut sources: Vec<Box<dyn KvSource>> = Vec::new();

        // Memtable: materialize the range (all versions; filtered below).
        // Bounded by the write-buffer size, so this is cheap even for
        // huge on-disk ranges.
        {
            let mut it = st.mem.iter();
            it.seek(seek_key.encoded());
            let mut buf = Vec::new();
            while it.valid() {
                let e = it.entry();
                if &e.key[..] > hi {
                    break;
                }
                buf.push(e.clone());
                it.next();
            }
            if !buf.is_empty() {
                sources.push(Box::new(VecSource::new(buf)));
            }
        }
        for f in st.version.all_files() {
            if f.overlaps_keys(lo, hi) {
                // No page skipping on reads: chain heads must be seen
                // (newest-version-decides).
                let mut it = f.table.iter(Vec::new());
                it.seek(seek_key.encoded())?;
                if acheron_sstable::TableIterator::valid(&it) {
                    sources.push(Box::new(it));
                }
            }
        }
        // The iterator holds Arc'd tables and owned entries, so it stays
        // valid after the state lock is released; compactions cannot
        // delete the files out from under it (Arc<Table> pins them, and
        // MemFs/StdFs handles stay readable after unlink).
        Ok(RangeIter {
            merge: MergeIterator::new(sources),
            hi: hi.to_vec(),
            snapshot,
            rts: visible_rts,
            decided_key: None,
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Engine statistics counters.
    pub fn stats(&self) -> &DbStats {
        &self.inner.stats
    }

    /// The configured options.
    pub fn options(&self) -> &DbOptions {
        &self.inner.opts
    }

    /// The filesystem the database lives on (for I/O accounting).
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.inner.fs)
    }

    /// Current clock tick.
    pub fn now(&self) -> Tick {
        self.inner.opts.clock.now()
    }

    /// Page-cache hit/miss counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.inner.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// Per-level summary of the current tree.
    pub fn level_summary(&self) -> Vec<LevelInfo> {
        let st = self.inner.state.read();
        (0..st.version.levels.len())
            .map(|level| LevelInfo {
                level,
                files: st.version.level_files(level),
                runs: st.version.level_runs(level),
                bytes: st.version.level_bytes(level),
                entries: st.version.levels[level].iter().map(|f| f.stats.entry_count).sum(),
                tombstones: st.version.levels[level]
                    .iter()
                    .map(|f| f.stats.tombstone_count)
                    .sum(),
            })
            .collect()
    }

    /// Point tombstones currently alive anywhere (memtable + tree).
    pub fn live_tombstones(&self) -> u64 {
        let st = self.inner.state.read();
        st.version.live_tombstones() + st.mem.stats().tombstones as u64
    }

    /// Total table bytes on storage.
    pub fn table_bytes(&self) -> u64 {
        self.inner.state.read().version.total_bytes()
    }

    /// Live secondary range tombstones.
    pub fn live_range_tombstones(&self) -> Vec<RangeTombstone> {
        self.inner.state.read().version.range_tombstones.clone()
    }

    /// Age (at `now`) of the oldest live point tombstone, if any — the
    /// quantity FADE bounds by `D_th`.
    pub fn oldest_live_tombstone_age(&self) -> Option<Tick> {
        let st = self.inner.state.read();
        let now = self.inner.opts.clock.now();
        let file_oldest = st
            .version
            .all_files()
            .filter_map(|f| f.stats.oldest_tombstone_tick)
            .min();
        let mem_oldest = st.mem.stats().oldest_tombstone_tick;
        file_oldest
            .into_iter()
            .chain(mem_oldest)
            .min()
            .map(|t| now.saturating_sub(t))
    }

    /// Check structural invariants of the current tree (I1/I6): level
    /// ordering, per-file metadata consistency with actual contents.
    pub fn verify_integrity(&self) -> Result<()> {
        let st = self.inner.state.read();
        st.version.check_invariants()?;
        for f in st.version.all_files() {
            let mut it = f.table.iter(vec![]);
            it.seek_to_first()?;
            let mut entries = 0u64;
            let mut tombstones = 0u64;
            let mut last: Option<Vec<u8>> = None;
            while acheron_sstable::TableIterator::valid(&it) {
                if let Some(prev) = &last {
                    if acheron_types::key::compare_internal(prev, it.key())
                        != std::cmp::Ordering::Less
                    {
                        return Err(Error::Internal(format!(
                            "file {}: entries out of order",
                            f.id
                        )));
                    }
                }
                last = Some(it.key().to_vec());
                let e = it.entry()?;
                entries += 1;
                if e.is_tombstone() {
                    tombstones += 1;
                }
                acheron_sstable::TableIterator::next(&mut it)?;
            }
            if entries != f.stats.entry_count || tombstones != f.stats.tombstone_count {
                return Err(Error::Internal(format!(
                    "file {}: stats mismatch (entries {entries} vs {}, tombstones {tombstones} vs {})",
                    f.id, f.stats.entry_count, f.stats.tombstone_count
                )));
            }
        }
        Ok(())
    }
}

impl DbOptions {
    fn clock_advance(&self, n: u64) {
        if let Some(lc) = self.logical_clock() {
            lc.advance(n);
        }
    }

    fn clock_advance_to(&self, t: Tick) {
        if let Some(lc) = self.logical_clock() {
            lc.advance_to(t);
        }
    }

    /// Downcast the clock to a logical clock, if that is what it is.
    fn logical_clock(&self) -> Option<&acheron_types::LogicalClock> {
        // Clock is object-safe without Any; use the concrete default.
        // DbOptions users driving a custom clock advance it themselves.
        let clock: &dyn Clock = self.clock.as_ref();
        // SAFETY-free downcast via trait object comparison is not
        // possible without `Any`; instead LogicalClock is detected by a
        // vtable-free helper on the trait.
        clock.as_logical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompactionLayout;
    use acheron_vfs::MemFs;

    fn open_mem(opts: DbOptions) -> (Arc<MemFs>, Db) {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", opts).unwrap();
        (fs, db)
    }

    fn small() -> DbOptions {
        DbOptions::small()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let (_fs, db) = open_mem(small());
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
        db.put(b"a", b"1bis").unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1bis");
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn reads_span_memtable_and_levels() {
        let (_fs, db) = open_mem(small());
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64]).unwrap();
        }
        // The tree must have flushed at least once by now.
        assert!(db.stats().flushes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        for i in (0..2000u32).step_by(97) {
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
            assert!(got.is_some(), "key{i:05} lost");
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn overwrites_survive_compaction() {
        let (_fs, db) = open_mem(small());
        for round in 0..5u32 {
            for i in 0..500u32 {
                db.put(
                    format!("key{i:04}").as_bytes(),
                    format!("r{round}-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        db.compact_all().unwrap();
        for i in (0..500u32).step_by(13) {
            let got = db.get(format!("key{i:04}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_ref(), format!("r4-{i}").as_bytes());
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn deletes_survive_flush_and_compaction() {
        let (_fs, db) = open_mem(small());
        for i in 0..1000u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'x'; 32]).unwrap();
        }
        db.compact_all().unwrap();
        for i in 0..1000u32 {
            if i % 3 == 0 {
                db.delete(format!("key{i:04}").as_bytes()).unwrap();
            }
        }
        db.compact_all().unwrap();
        for i in 0..1000u32 {
            let got = db.get(format!("key{i:04}").as_bytes()).unwrap();
            assert_eq!(got.is_none(), i % 3 == 0, "key{i:04}");
        }
    }

    #[test]
    fn scan_merges_all_sources() {
        let (_fs, db) = open_mem(small());
        for i in 0..300u32 {
            db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        // Updates and deletes land in the memtable.
        db.put(b"key0010", b"updated").unwrap();
        db.delete(b"key0011").unwrap();
        let got = db.scan(b"key0009", b"key0013").unwrap();
        let rendered: Vec<(String, String)> = got
            .iter()
            .map(|(k, v)| {
                (
                    String::from_utf8_lossy(k).into_owned(),
                    String::from_utf8_lossy(v).into_owned(),
                )
            })
            .collect();
        assert_eq!(
            rendered,
            vec![
                ("key0009".into(), "v9".into()),
                ("key0010".into(), "updated".into()),
                ("key0012".into(), "v12".into()),
                ("key0013".into(), "v13".into()),
            ]
        );
    }

    #[test]
    fn scan_bounds_are_inclusive() {
        let (_fs, db) = open_mem(small());
        for k in ["a", "b", "c", "d"] {
            db.put(k.as_bytes(), b"v").unwrap();
        }
        let got = db.scan(b"b", b"c").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.as_ref(), b"b");
        assert_eq!(got[1].0.as_ref(), b"c");
        assert!(db.scan(b"x", b"z").unwrap().is_empty());
    }

    #[test]
    fn snapshot_isolation_for_gets() {
        let (_fs, db) = open_mem(small());
        db.put(b"k", b"old").unwrap();
        let snap = db.snapshot();
        db.put(b"k", b"new").unwrap();
        db.delete(b"j").unwrap();
        assert_eq!(db.get_at(&snap, b"k").unwrap().unwrap().as_ref(), b"old");
        assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"new");
        drop(snap);
    }

    #[test]
    fn snapshot_survives_compaction() {
        let (_fs, db) = open_mem(small());
        db.put(b"pinned", b"v1").unwrap();
        let snap = db.snapshot();
        for i in 0..3000u32 {
            db.put(format!("fill{i:05}").as_bytes(), &[b'f'; 64]).unwrap();
        }
        db.put(b"pinned", b"v2").unwrap();
        db.compact_all().unwrap();
        assert_eq!(db.get_at(&snap, b"pinned").unwrap().unwrap().as_ref(), b"v1");
        assert_eq!(db.get(b"pinned").unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn range_delete_secondary_erases_by_dkey() {
        let (_fs, db) = open_mem(small());
        for i in 0..100u32 {
            db.put_with_dkey(format!("key{i:03}").as_bytes(), b"v", u64::from(i)).unwrap();
        }
        db.range_delete_secondary(10, 19).unwrap();
        for i in 0..100u32 {
            let got = db.get(format!("key{i:03}").as_bytes()).unwrap();
            assert_eq!(got.is_none(), (10..20).contains(&i), "key{i:03}");
        }
        // Scans agree.
        let got = db.scan(b"key000", b"key099").unwrap();
        assert_eq!(got.len(), 90);
        // And the erasure persists through compaction.
        db.compact_all().unwrap();
        for i in 0..100u32 {
            let got = db.get(format!("key{i:03}").as_bytes()).unwrap();
            assert_eq!(got.is_none(), (10..20).contains(&i), "key{i:03} after compact");
        }
    }

    #[test]
    fn range_delete_on_newest_version_hides_the_key() {
        // Newest-version-decides semantics: erasing the newest version
        // deletes the key; older versions do not resurface, no matter
        // when compaction physically reclaims the bytes.
        let (_fs, db) = open_mem(small());
        db.put_with_dkey(b"k", b"v-old", 5).unwrap();
        db.put_with_dkey(b"k", b"v-new", 50).unwrap();
        db.range_delete_secondary(40, 60).unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.compact_all().unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        // An older version *is* still readable through a range that does
        // not cover the newest one.
        db.put_with_dkey(b"j", b"j-old", 5).unwrap();
        db.put_with_dkey(b"j", b"j-new", 100).unwrap();
        db.range_delete_secondary(0, 10).unwrap();
        assert_eq!(db.get(b"j").unwrap().unwrap().as_ref(), b"j-new");
    }

    #[test]
    fn range_delete_rejects_inverted_range() {
        let (_fs, db) = open_mem(small());
        assert!(db.range_delete_secondary(10, 5).is_err());
    }

    #[test]
    fn range_tombstones_retire_once_applied() {
        let (_fs, db) = open_mem(small());
        for i in 0..500u32 {
            db.put_with_dkey(format!("key{i:04}").as_bytes(), &[b'v'; 32], u64::from(i))
                .unwrap();
        }
        db.range_delete_secondary(0, 100).unwrap();
        assert_eq!(db.live_range_tombstones().len(), 1);
        db.compact_all().unwrap();
        assert!(
            db.live_range_tombstones().is_empty(),
            "fully applied range tombstone must retire"
        );
        db.verify_integrity().unwrap();
    }

    #[test]
    fn fade_bounds_tombstone_age() {
        let d_th = 2_000u64;
        let (_fs, db) = open_mem(small().with_fade(d_th));
        for i in 0..800u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32]).unwrap();
        }
        for i in 0..400u32 {
            db.delete(format!("key{i:04}").as_bytes()).unwrap();
        }
        // Drive the clock well past the threshold with unrelated writes.
        for i in 0..6000u32 {
            db.put(format!("other{i:05}").as_bytes(), &[b'w'; 32]).unwrap();
        }
        db.maintain().unwrap();
        let age = db.oldest_live_tombstone_age();
        assert!(
            age.is_none_or(|a| a <= d_th),
            "oldest tombstone age {age:?} exceeds D_th {d_th}"
        );
        assert_eq!(
            db.stats().persistence_violations.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "FADE must never violate the threshold"
        );
        assert!(
            db.stats().ttl_compactions.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "TTL trigger should have fired"
        );
    }

    #[test]
    fn baseline_accumulates_tombstones_fade_purges_them() {
        // The scenario the paper motivates: a cold key range is deleted
        // and then the workload goes quiet. The baseline has no trigger
        // left, so its tombstones linger forever; FADE's TTL trigger
        // purges them as the clock advances.
        let d_th = 3_000u64;
        let run = |fade: bool| -> u64 {
            let opts = if fade { small().with_fade(d_th) } else { small() };
            let (_fs, db) = open_mem(opts);
            for i in 0..1000u32 {
                db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32]).unwrap();
            }
            for i in 0..1000u32 {
                db.delete(format!("key{i:04}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
            // Quiet period: time passes, no writes.
            db.advance_clock(10 * d_th);
            db.maintain().unwrap();
            db.live_tombstones()
        };
        let baseline = run(false);
        let fade = run(true);
        assert_eq!(fade, 0, "FADE must purge every expired tombstone");
        assert!(
            baseline > 0,
            "delete-blind baseline has no reason to purge: {baseline}"
        );
    }

    #[test]
    fn crash_recovery_restores_acknowledged_writes() {
        let fs = Arc::new(MemFs::new());
        {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            for i in 0..1500u32 {
                db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            db.delete(b"key00007").unwrap();
            db.range_delete_secondary(1, 2).unwrap();
            // No clean shutdown: just drop the handle.
        }
        let db = Db::open(fs as Arc<dyn Vfs>, "db", small()).unwrap();
        assert_eq!(db.get(b"key00007").unwrap(), None);
        for i in (0..1500u32).step_by(119) {
            if i == 7 {
                continue;
            }
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
            assert_eq!(got.unwrap().as_ref(), format!("v{i}").as_bytes(), "key{i:05}");
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn recovery_is_idempotent_across_restarts() {
        let fs = Arc::new(MemFs::new());
        for restart in 0..3 {
            let db = Db::open(fs.clone() as Arc<dyn Vfs>, "db", small()).unwrap();
            db.put(format!("round{restart}").as_bytes(), b"done").unwrap();
            for r in 0..=restart {
                assert_eq!(
                    db.get(format!("round{r}").as_bytes()).unwrap().unwrap().as_ref(),
                    b"done",
                    "restart {restart}, round {r}"
                );
            }
        }
    }

    #[test]
    fn tiering_layout_works_end_to_end() {
        let opts = DbOptions { layout: CompactionLayout::Tiering, ..small() };
        let (_fs, db) = open_mem(opts);
        for i in 0..4000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48]).unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..4000u32).step_by(211) {
            assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn lazy_leveling_layout_works_end_to_end() {
        let opts = DbOptions { layout: CompactionLayout::LazyLeveling, ..small() };
        let (_fs, db) = open_mem(opts);
        for i in 0..4000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48]).unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..4000u32).step_by(211) {
            assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
        }
        db.verify_integrity().unwrap();
    }

    #[test]
    fn kiwi_tiles_preserve_correctness() {
        let opts = small().with_tile(8);
        let (_fs, db) = open_mem(opts);
        for i in 0..3000u32 {
            db.put_with_dkey(
                format!("key{i:05}").as_bytes(),
                format!("v{i}").as_bytes(),
                u64::from(i % 256),
            )
            .unwrap();
        }
        db.compact_all().unwrap();
        for i in (0..3000u32).step_by(173) {
            let got = db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_ref(), format!("v{i}").as_bytes());
        }
        let scanned = db.scan(b"key00100", b"key00200").unwrap();
        assert_eq!(scanned.len(), 101);
    }

    #[test]
    fn stats_track_operations() {
        let (_fs, db) = open_mem(small());
        db.put(b"a", b"1").unwrap();
        db.delete(b"a").unwrap();
        db.get(b"a").unwrap();
        db.scan(b"a", b"z").unwrap();
        db.range_delete_secondary(0, 1).unwrap();
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(db.stats().puts.load(Relaxed), 1);
        assert_eq!(db.stats().deletes.load(Relaxed), 1);
        assert_eq!(db.stats().gets.load(Relaxed), 1);
        assert_eq!(db.stats().scans.load(Relaxed), 1);
        assert_eq!(db.stats().range_deletes.load(Relaxed), 1);
    }

    #[test]
    fn level_summary_shape() {
        let (_fs, db) = open_mem(small());
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64]).unwrap();
        }
        db.compact_all().unwrap();
        let summary = db.level_summary();
        assert_eq!(summary.len(), db.options().max_levels);
        let total: u64 = summary.iter().map(|l| l.entries).sum();
        assert!(total > 0);
        assert!(summary.iter().any(|l| l.level > 0 && l.files > 0), "data should reach L1+");
    }

    #[test]
    fn write_batch_is_atomic_and_visible_together() {
        let (_fs, db) = open_mem(small());
        db.put(b"victim", b"old").unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put_with_dkey(b"b", b"2", 77);
        batch.delete(b"victim");
        assert_eq!(batch.len(), 3);
        db.write_batch(batch).unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(db.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(db.get(b"victim").unwrap(), None);
        // Empty batches are a no-op.
        db.write_batch(WriteBatch::new()).unwrap();
        // dkey-tagged member is range-deletable.
        db.range_delete_secondary(77, 77).unwrap();
        assert_eq!(db.get(b"b").unwrap(), None);
        assert_eq!(db.get(b"a").unwrap().unwrap().as_ref(), b"1");
    }

    #[test]
    fn batched_delete_age_starts_at_commit() {
        let (_fs, db) = open_mem(small().with_fade(5_000));
        db.put(b"k", b"v").unwrap();
        let mut batch = WriteBatch::new();
        batch.delete(b"k");
        db.write_batch(batch).unwrap();
        // The tombstone's tick must be a real clock value (not the
        // u64::MAX placeholder), or FADE aging breaks.
        let age = db.oldest_live_tombstone_age().expect("tombstone live");
        assert!(age < 1_000, "tombstone age {age} implies a bad commit tick");
    }

    #[test]
    fn block_cache_serves_repeated_reads() {
        let mut opts = small();
        opts.block_cache_bytes = 4 << 20;
        let (_fs, db) = open_mem(opts);
        for i in 0..3000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 64]).unwrap();
        }
        db.compact_all().unwrap();
        let (h0, m0) = db.cache_stats().expect("cache configured");
        for _round in 0..3 {
            for i in (0..3000u32).step_by(17) {
                assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
            }
        }
        let (h1, m1) = db.cache_stats().expect("cache configured");
        let (hits, misses) = (h1 - h0, m1 - m0);
        assert!(
            hits > misses,
            "repeated reads should hit the cache: {hits} hits / {misses} misses"
        );
        // Without a cache the stats accessor reports None.
        let (_fs2, db2) = open_mem(small());
        assert!(db2.cache_stats().is_none());
    }

    #[test]
    fn results_identical_with_and_without_cache() {
        let run = |cache: usize| -> Vec<(Vec<u8>, Vec<u8>)> {
            let mut opts = small();
            opts.block_cache_bytes = cache;
            let (_fs, db) = open_mem(opts);
            for i in 0..2000u32 {
                db.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
                if i % 3 == 0 {
                    db.delete(format!("key{:05}", i / 2).as_bytes()).unwrap();
                }
            }
            db.compact_all().unwrap();
            db.scan(b"key00000", b"key99999")
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect()
        };
        assert_eq!(run(0), run(1 << 20));
        // A pathologically tiny cache must also be correct.
        assert_eq!(run(0), run(64));
    }

    #[test]
    fn range_iter_streams_and_stops_early() {
        let (_fs, db) = open_mem(small());
        for i in 0..1000u32 {
            db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        db.delete(b"key0003").unwrap();
        db.flush().unwrap();
        // Stream only the first five live rows of a huge range.
        let mut it = db.range_iter(b"key0000", b"key9999").unwrap();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(it.next_entry().unwrap().expect("more rows"));
        }
        let keys: Vec<String> = got
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
            .collect();
        assert_eq!(keys, vec!["key0000", "key0001", "key0002", "key0004", "key0005"]);
        drop(it);
        // The streaming result equals the materialized scan.
        let mut it = db.range_iter(b"key0100", b"key0110").unwrap();
        let mut streamed = Vec::new();
        while let Some(kv) = it.next_entry().unwrap() {
            streamed.push(kv);
        }
        assert_eq!(streamed, db.scan(b"key0100", b"key0110").unwrap());
        // End-of-range is stable.
        assert!(it.next_entry().unwrap().is_none());
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn range_iter_survives_concurrent_compaction() {
        let (_fs, db) = open_mem(small());
        for i in 0..500u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 32]).unwrap();
        }
        db.flush().unwrap();
        let mut it = db.range_iter(b"key0000", b"key9999").unwrap();
        // Pull a few rows, then compact everything underneath it.
        for _ in 0..10 {
            it.next_entry().unwrap().unwrap();
        }
        db.compact_all().unwrap();
        for i in 0..200u32 {
            db.put(format!("new{i:04}").as_bytes(), &[b'w'; 32]).unwrap();
        }
        // The iterator keeps serving its frozen view.
        let mut remaining = 10;
        while let Some((k, _)) = it.next_entry().unwrap() {
            assert!(k.starts_with(b"key"), "iterator view must not see new writes");
            remaining += 1;
        }
        assert_eq!(remaining, 500);
    }

    #[test]
    fn empty_db_operations() {
        let (_fs, db) = open_mem(small());
        assert_eq!(db.get(b"nothing").unwrap(), None);
        assert!(db.scan(b"a", b"z").unwrap().is_empty());
        db.flush().unwrap();
        db.compact_all().unwrap();
        db.verify_integrity().unwrap();
        assert_eq!(db.live_tombstones(), 0);
    }
}
