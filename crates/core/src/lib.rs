//! # Acheron: a delete-aware LSM storage engine
//!
//! Acheron reproduces the system demonstrated in *"Acheron: Persisting
//! Tombstones in LSM Engines"* (SIGMOD 2023): an LSM key-value engine in
//! which deletes are first-class —
//!
//! * **FADE** bounds *delete persistence latency*: every point tombstone
//!   is guaranteed to be physically purged within a user-chosen
//!   threshold `D_th` of its insertion, enforced by per-level tombstone
//!   TTLs that trigger compactions ([`options::FadeOptions`]).
//! * **KiWi** (key-weaving delete tiles) makes *secondary range deletes*
//!   cheap: SSTables interleave sort-key and delete-key order so a
//!   "delete everything with timestamp in `[a, b]`" drops whole pages
//!   without reading them ([`options::DbOptions::pages_per_tile`]).
//! * The compaction framework is factored along the four design
//!   primitives of the LSM compaction design space — trigger, layout,
//!   granularity, data movement — so the delete-blind baselines
//!   (leveling / tiering / lazy-leveling with min-overlap picks) and the
//!   delete-aware policies are points in one space ([`picker`]).
//!
//! ## Quick start
//!
//! ```
//! use acheron::{Db, DbOptions};
//! use acheron_vfs::MemFs;
//! use std::sync::Arc;
//!
//! let fs = Arc::new(MemFs::new());
//! let db = Db::open(fs, "demo-db", DbOptions::small().with_fade(10_000)).unwrap();
//! db.put(b"user:7", b"alice").unwrap();
//! assert_eq!(db.get(b"user:7").unwrap().unwrap().as_ref(), b"alice");
//! db.delete(b"user:7").unwrap();
//! assert_eq!(db.get(b"user:7").unwrap(), None);
//! ```
//!
//! ## Concurrency
//!
//! With the default options, flushes and compactions run on background
//! worker threads and writes are throttled when the engine falls behind
//! ([`options::DbOptions::background_threads`]); with
//! `background_threads = 0` (the [`options::DbOptions::small`] preset)
//! all maintenance runs synchronously inside the write path, which makes
//! runs deterministic. See `ARCHITECTURE.md` for the full model.

#![warn(missing_docs)]

pub mod compaction;
pub mod db;
pub mod doctor;
pub mod fade;
pub mod filenames;
pub mod manifest;
pub mod memory;
pub mod merge;
pub mod obs;
pub mod options;
pub mod picker;
pub mod sharded;
pub mod stats;
pub mod testutil;
pub mod version;

pub use db::{Db, LevelInfo, MaintenancePause, RangeIter, Snapshot, WriteBatch, WritePressure};
pub use doctor::{check_db, check_db_with_threshold, DoctorReport, LevelTombstoneSummary};
pub use memory::{MemoryBudget, TunerSample};
pub use obs::trace::{
    render_traces, CohortRecord, CohortStage, DeleteAudit, DeleteLedger, OpTrace, TraceOp,
    TraceStage,
};
pub use obs::{
    AgeHistogram, Event, EventLog, EventSnapshot, GcKind, LevelGauge, RecoveryStepKind,
    StampedEvent, TombstoneGauges,
};
pub use options::{CompactionLayout, DbOptions, FadeOptions, FilePickPolicy, TtlAllocation};
pub use picker::CompactionReason;
pub use sharded::{check_sharded_db, read_shard_map, shard_of, ShardedDb, ShardedSnapshot};
pub use stats::{DbStats, HistogramSummary, LatencyHistogram, StatsSnapshot};

// Re-export the commonly needed foundation types so downstream users
// depend on one crate.
pub use acheron_types::{Clock, DeleteKeyRange, LogicalClock, RangeTombstone, SystemClock};
