//! Compaction execution: merge inputs, apply the delete semantics
//! (version dedup, range-tombstone purge with KiWi page drops, bottom-
//! level tombstone drop), and write the output files.

use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

use acheron_sstable::{BlockCache, Table, TableBuilder, TableOptions};
use acheron_types::{Entry, KeyRangeTombstone, RangeTombstone, Result, SeqNo, Tick};
use acheron_vfs::Vfs;

use crate::filenames::sst_path;
use crate::merge::{CompactionStream, KvSource, MergeIterator};
use crate::options::DbOptions;
use crate::picker::CompactionTask;
use crate::version::{FileMeta, Version};

/// Everything a compaction changed, to be applied to the version and
/// recorded in the manifest by the caller.
#[derive(Debug)]
pub struct CompactionOutcome {
    /// New files (already open).
    pub added: Vec<Arc<FileMeta>>,
    /// Input file ids to remove from the version.
    pub deleted_ids: Vec<u64>,
    /// Whether this was a metadata-only trivial move.
    pub trivial_move: bool,
    /// Entries dropped because a newer version shadowed them.
    pub shadowed: u64,
    /// Entries purged by secondary range tombstones.
    pub range_purged: u64,
    /// Entries purged by sort-key range tombstones.
    pub key_range_purged: u64,
    /// `(delete tick, seqno)` of each point tombstone physically purged.
    pub tombstones_dropped: Vec<(Tick, SeqNo)>,
    /// `(delete tick, seqno)` of each sort-key range tombstone purged
    /// (resolved at the last level, exactly like point tombstones).
    pub key_range_tombstones_dropped: Vec<(Tick, SeqNo)>,
    /// Seqnos of tombstones that exited the tree without a bottommost
    /// purge: shadowed by a newer same-key version, swallowed by a
    /// secondary range tombstone, or dropped under a sort-key range
    /// tombstone. The delete ledger counts these as resolved so every
    /// tombstone has exactly one exit from the cohort accounting.
    pub tombstones_superseded: Vec<SeqNo>,
    /// KiWi pages dropped without being read.
    pub pages_dropped: u64,
    /// Bytes read from input tables.
    pub bytes_in: u64,
    /// Bytes written to output tables.
    pub bytes_out: u64,
    /// `(segment, bytes, stamp tick)` per value-log extent whose last
    /// tree reference this compaction dropped — the caller folds these
    /// into the vlog's dead-byte accounting. Entries that vanish via
    /// whole-page drops are not itemized here (the page is never read);
    /// their bytes surface when GC rewrites the segment.
    pub vlog_dead: Vec<(u64, u64, Tick)>,
}

impl CompactionOutcome {
    /// Total entries the merge removed from the tree: shadowed
    /// versions, range-deleted entries, and purged point tombstones
    /// (the flight recorder's `CompactionEnd` payload).
    pub fn entries_dropped(&self) -> u64 {
        self.shadowed
            + self.range_purged
            + self.key_range_purged
            + self.tombstones_dropped.len() as u64
    }
}

/// Execute `task` against `version`, writing outputs through `fs`.
///
/// `snapshots` are the live reader snapshots that pin old versions;
/// `next_file_id` supplies fresh file numbers.
#[allow(clippy::too_many_arguments)] // explicit context beats an opaque struct here
pub fn run_compaction(
    fs: &Arc<dyn Vfs>,
    dir: &str,
    opts: &DbOptions,
    cache: Option<&Arc<BlockCache>>,
    version: &Version,
    task: &CompactionTask,
    snapshots: &[SeqNo],
    now: Tick,
    mut next_file_id: impl FnMut() -> u64,
) -> Result<CompactionOutcome> {
    let deleted_ids: Vec<u64> = task.all_inputs().map(|f| f.id).collect();
    let bytes_in = task.input_bytes();

    // Bottommost iff no version of any input key can live outside this
    // compaction at or below the output level: nothing *below* the
    // output level overlaps, and every overlapping file *at* the output
    // level is an input (tiering stacks runs, so the output level may
    // hold older runs that are not part of the merge — dropping
    // tombstones then would resurrect the versions those runs hold).
    let bottommost = match task.key_range() {
        Some((lo, hi)) => {
            !version.overlaps_below(task.output_level, &lo, &hi)
                && version
                    .overlapping_files(task.output_level, &lo, &hi)
                    .iter()
                    .all(|f| deleted_ids.contains(&f.id))
        }
        None => true,
    };

    // Trivial move: a single file with nothing to merge and no purge
    // opportunity moves by metadata only. Purges only happen at the
    // bottommost level (newest-version-decides semantics), so above it a
    // move is always safe; into the bottom it must not skip a tombstone
    // drop or range purge. (L0 is excluded: its files must be merged to
    // re-establish disjointness.)
    let purge_opportunity = bottommost
        && !task.inputs.is_empty()
        && (task.inputs[0].stats.tombstone_count > 0
            || !task.inputs[0].stats.range_tombstones.is_empty()
            || version.range_tombstones.iter().any(|rt| {
                task.inputs[0].stats.min_seqno < rt.seqno
                    && rt
                        .range
                        .overlaps(task.inputs[0].stats.min_dkey, task.inputs[0].stats.max_dkey)
            }));
    if task.level != 0
        && task.inputs.len() == 1
        && task.next_level_inputs.is_empty()
        && task.level != task.output_level
        && !purge_opportunity
    {
        let src = &task.inputs[0];
        let moved = Arc::new(FileMeta {
            id: src.id,
            level: task.output_level,
            run: task.output_run,
            size_bytes: src.size_bytes,
            stats: src.stats.clone(),
            created_tick: src.created_tick,
            table: Arc::clone(&src.table),
        });
        return Ok(CompactionOutcome {
            added: vec![moved],
            deleted_ids: vec![src.id],
            trivial_move: true,
            shadowed: 0,
            range_purged: 0,
            key_range_purged: 0,
            tombstones_dropped: Vec::new(),
            key_range_tombstones_dropped: Vec::new(),
            tombstones_superseded: Vec::new(),
            pages_dropped: 0,
            bytes_in: 0,
            bytes_out: 0,
            vlog_dead: Vec::new(),
        });
    }

    // Sort-key range tombstones carried by the inputs. One is purged
    // here iff the merge is bottommost, no snapshot can still read an
    // entry it shadows, and no live file *outside* the compaction holds
    // an entry old enough to be shadowed (dropping it then would let
    // that older version resurface once the shadow is gone). Survivors
    // ride along into the first output's stats block.
    let mut surviving_krts: Vec<KeyRangeTombstone> = Vec::new();
    let mut key_range_tombstones_dropped: Vec<(Tick, SeqNo)> = Vec::new();
    for k in task
        .all_inputs()
        .flat_map(|f| f.stats.range_tombstones.iter())
    {
        let purgeable = bottommost
            && snapshots.is_empty()
            && !version.all_files().any(|f| {
                !deleted_ids.contains(&f.id)
                    && f.stats.min_seqno < k.seqno
                    && f.overlaps_keys(&k.start, &k.end)
            });
        if purgeable {
            key_range_tombstones_dropped.push((k.dkey, k.seqno));
        } else {
            surviving_krts.push(k.clone());
        }
    }

    // Entries shadowed by any live sort-key range tombstone (the
    // version-wide fragment index, so tombstones held by non-input
    // files erase here too) are dropped under the same conditions that
    // allow point-tombstone drops: bottommost, no snapshots.
    let krt_drop_index =
        (bottommost && snapshots.is_empty() && !version.key_range_tombstones.is_empty())
            .then(|| version.key_range_tombstones.as_ref());
    let mut key_range_purged: u64 = 0;

    // Page drops are only safe (a) at the bottommost level — higher up,
    // dropping a covered chain head would let an older, deeper version
    // resurface under newest-version-decides semantics — and (b) with no
    // live snapshots (a snapshot might still read a covered page).
    let page_drop_rts: Vec<RangeTombstone> = if bottommost && snapshots.is_empty() {
        version.range_tombstones.clone()
    } else {
        Vec::new()
    };

    // Tile drops are further restricted to input files whose keys can
    // have no older versions anywhere else: the file must sit at the
    // *deepest* input level (older versions only live deeper), and no
    // sibling input at that same level may overlap its key range (L0
    // files — and tiered runs — overlap in key space while holding
    // different strata of the same keys, so dropping a page from one
    // could hide a chain head whose older version survives in another).
    let deepest_input_level = task.all_inputs().map(|f| f.level).max().unwrap_or(0);
    let deepest_inputs: Vec<&Arc<FileMeta>> = task
        .all_inputs()
        .filter(|f| f.level == deepest_input_level)
        .collect();
    let drop_eligible = |f: &FileMeta| -> bool {
        f.level == deepest_input_level
            && f.stats.entry_count > 0
            && !deepest_inputs.iter().any(|g| {
                g.id != f.id && g.stats.entry_count > 0 && g.overlaps_keys(f.min_key(), f.max_key())
            })
    };
    let mut dropped_before: u64 = 0;
    let mut sources: Vec<Box<dyn KvSource>> = Vec::with_capacity(deleted_ids.len());
    for f in task.all_inputs() {
        dropped_before += f.table.counters.pages_dropped.load(AtomicOrdering::Relaxed);
        let rts_for_file = if drop_eligible(f) {
            page_drop_rts.clone()
        } else {
            Vec::new()
        };
        // Compaction inputs are read once and rewritten: bypass the
        // block cache so the merge neither evicts the read path's
        // working set nor inflates the memory arbiter's fill signal.
        let mut it = f.table.iter_nofill(rts_for_file);
        it.seek_to_first()?;
        sources.push(Box::new(it));
    }

    let merge = MergeIterator::new(sources);
    let mut stream =
        CompactionStream::new(merge, &version.range_tombstones, snapshots, bottommost, now);

    let table_opts = TableOptions {
        page_size: opts.page_size,
        pages_per_tile: opts.pages_per_tile,
        bloom_bits_per_key: opts.bloom_bits_per_key,
        ..TableOptions::default()
    };

    let mut added: Vec<Arc<FileMeta>> = Vec::new();
    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut last_user_key: Vec<u8> = Vec::new();
    let mut bytes_out = 0u64;

    let finish_builder = |builder: &mut Option<(u64, TableBuilder)>,
                          added: &mut Vec<Arc<FileMeta>>,
                          bytes_out: &mut u64|
     -> Result<()> {
        if let Some((id, b)) = builder.take() {
            let stats = b.finish()?;
            let path = sst_path(dir, id);
            if stats.entry_count == 0 && stats.range_tombstones.is_empty() {
                fs.delete(&path)?;
                return Ok(());
            }
            let size = fs.file_size(&path)?;
            *bytes_out += size;
            let table = Table::open_with_cache(fs.open(&path)?, cache.cloned())?;
            added.push(Arc::new(FileMeta {
                id,
                level: task.output_level,
                run: task.output_run,
                size_bytes: size,
                stats,
                created_tick: now,
                table,
            }));
        }
        Ok(())
    };

    let mut pending_krts = (!surviving_krts.is_empty()).then_some(surviving_krts);
    let mut krt_vlog_dead: Vec<(u64, u64, Tick)> = Vec::new();
    let mut krt_superseded: Vec<SeqNo> = Vec::new();
    while let Some(entry) = stream.next_surviving()? {
        if let Some(idx) = krt_drop_index {
            if idx
                .max_seqno_covering(&entry.key, u64::MAX)
                .is_some_and(|cover| entry.seqno < cover)
            {
                key_range_purged += 1;
                if entry.is_tombstone() {
                    krt_superseded.push(entry.seqno);
                }
                if entry.kind == acheron_types::ValueKind::ValuePointer {
                    if let Some(ptr) = acheron_types::ValuePointer::decode(&entry.value) {
                        krt_vlog_dead.push((ptr.segment, u64::from(ptr.len), now));
                    }
                }
                continue;
            }
        }
        let split = match &builder {
            Some((_, b)) => b.file_bytes() >= opts.target_file_bytes && entry.key != last_user_key,
            None => false,
        };
        if split {
            finish_builder(&mut builder, &mut added, &mut bytes_out)?;
        }
        if builder.is_none() {
            let id = next_file_id();
            let file = fs.create(&sst_path(dir, id))?;
            let mut b = TableBuilder::new(file, table_opts.clone())?;
            if let Some(krts) = pending_krts.take() {
                b.set_range_tombstones(krts);
            }
            builder = Some((id, b));
        }
        let (_, b) = builder.as_mut().expect("builder just ensured");
        b.add(&entry)?;
        last_user_key.clear();
        last_user_key.extend_from_slice(&entry.key);
    }
    if let Some(krts) = pending_krts.take() {
        // No surviving entries to attach the tombstones to: write a
        // carrier table whose stats block alone keeps them durable.
        let id = next_file_id();
        let file = fs.create(&sst_path(dir, id))?;
        let mut b = TableBuilder::new(file, table_opts.clone())?;
        b.set_range_tombstones(krts);
        builder = Some((id, b));
    }
    finish_builder(&mut builder, &mut added, &mut bytes_out)?;

    let mut pages_dropped: u64 = 0;
    for f in task.all_inputs() {
        pages_dropped += f.table.counters.pages_dropped.load(AtomicOrdering::Relaxed);
    }
    pages_dropped = pages_dropped.saturating_sub(dropped_before);

    let mut vlog_dead = stream.vlog_dead;
    vlog_dead.extend(krt_vlog_dead);
    let mut tombstones_superseded = stream.tombstones_superseded;
    tombstones_superseded.extend(krt_superseded);

    Ok(CompactionOutcome {
        added,
        deleted_ids,
        trivial_move: false,
        shadowed: stream.shadowed,
        range_purged: stream.range_purged,
        key_range_purged,
        tombstones_dropped: stream.tombstones_dropped,
        key_range_tombstones_dropped,
        tombstones_superseded,
        pages_dropped,
        bytes_in,
        bytes_out,
        vlog_dead,
    })
}

/// Flush a memtable's entries into a fresh L0 table file.
///
/// Returns the new file's metadata. `entries` must be in internal-key
/// order (the memtable guarantees this). `key_range_tombstones` are the
/// buffer's sort-key range tombstones, carried into the table's stats
/// block; a table holding only those (no entries) is still written — a
/// *carrier* file whose sole job is to keep the tombstones durable
/// until a bottommost compaction purges them.
#[allow(clippy::too_many_arguments)]
pub fn write_l0_table<'a>(
    fs: &Arc<dyn Vfs>,
    dir: &str,
    opts: &DbOptions,
    cache: Option<&Arc<BlockCache>>,
    entries: impl Iterator<Item = &'a Entry>,
    key_range_tombstones: Vec<KeyRangeTombstone>,
    id: u64,
    run: u64,
    now: Tick,
) -> Result<Option<Arc<FileMeta>>> {
    let table_opts = TableOptions {
        page_size: opts.page_size,
        pages_per_tile: opts.pages_per_tile,
        bloom_bits_per_key: opts.bloom_bits_per_key,
        ..TableOptions::default()
    };
    let path = sst_path(dir, id);
    let file = fs.create(&path)?;
    let mut b = TableBuilder::new(file, table_opts)?;
    let mut any = false;
    for e in entries {
        b.add(e)?;
        any = true;
    }
    let carries_krts = !key_range_tombstones.is_empty();
    if carries_krts {
        b.set_range_tombstones(key_range_tombstones);
    }
    let stats = b.finish()?;
    if !any && !carries_krts {
        fs.delete(&path)?;
        return Ok(None);
    }
    let size = fs.file_size(&path)?;
    let table = Table::open_with_cache(fs.open(&path)?, cache.cloned())?;
    Ok(Some(Arc::new(FileMeta {
        id,
        level: 0,
        run,
        size_bytes: size,
        stats,
        created_tick: now,
        table,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picker::{CompactionReason, CompactionTask};
    use crate::testutil::{make_file, make_file_with};
    use acheron_types::DeleteKeyRange;
    use acheron_vfs::MemFs;

    fn opts() -> DbOptions {
        DbOptions {
            max_levels: 4,
            target_file_bytes: 4 << 10,
            page_size: 512,
            ..DbOptions::default()
        }
    }

    fn task(
        level: usize,
        inputs: Vec<Arc<FileMeta>>,
        next: Vec<Arc<FileMeta>>,
        output_level: usize,
    ) -> CompactionTask {
        CompactionTask {
            level,
            inputs,
            next_level_inputs: next,
            output_level,
            output_run: 0,
            reason: CompactionReason::Manual,
        }
    }

    fn run(
        fs: &Arc<MemFs>,
        version: &Version,
        t: &CompactionTask,
        snapshots: &[SeqNo],
    ) -> CompactionOutcome {
        let mut next_id = 100u64;
        run_compaction(
            &(Arc::clone(fs) as Arc<dyn Vfs>),
            "",
            &opts(),
            None,
            version,
            t,
            snapshots,
            1_000,
            || {
                let id = next_id;
                next_id += 1;
                id
            },
        )
        .unwrap()
    }

    #[test]
    fn trivial_move_keeps_bytes_untouched() {
        let fs = Arc::new(MemFs::new());
        let f = make_file(&fs, 1, 1, 0..100, 100);
        let v = Version::empty(4).apply(vec![Arc::clone(&f)], &[], &[], &[]);
        let t = task(1, vec![f], vec![], 2);
        let out = run(&fs, &v, &t, &[]);
        assert!(out.trivial_move);
        assert_eq!(out.bytes_in, 0);
        assert_eq!(out.bytes_out, 0);
        assert_eq!(out.added.len(), 1);
        assert_eq!(out.added[0].level, 2);
        assert_eq!(out.added[0].id, 1, "same physical file");
    }

    #[test]
    fn no_trivial_move_into_bottom_with_tombstones() {
        let fs = Arc::new(MemFs::new());
        let f = make_file_with(&fs, 1, 2, 0, 0..100, 100, 4, 5);
        let v = Version::empty(4).apply(vec![Arc::clone(&f)], &[], &[], &[]);
        let t = task(2, vec![f], vec![], 3);
        let out = run(&fs, &v, &t, &[]);
        assert!(
            !out.trivial_move,
            "a purge opportunity must force a rewrite"
        );
        assert_eq!(out.tombstones_dropped.len(), 25);
        // Output contains only the 75 puts.
        let total: u64 = out.added.iter().map(|a| a.stats.entry_count).sum();
        assert_eq!(total, 75);
    }

    #[test]
    fn merge_dedups_and_counts_shadowed() {
        let fs = Arc::new(MemFs::new());
        // Same key range, newer seqnos on top.
        let newer = make_file(&fs, 1, 1, 0..50, 1000);
        let older = make_file(&fs, 2, 2, 0..50, 100);
        let v =
            Version::empty(4).apply(vec![Arc::clone(&newer), Arc::clone(&older)], &[], &[], &[]);
        let t = task(1, vec![newer], vec![older], 2);
        let out = run(&fs, &v, &t, &[]);
        assert_eq!(out.shadowed, 50);
        let total: u64 = out.added.iter().map(|a| a.stats.entry_count).sum();
        assert_eq!(total, 50, "one version per key survives");
        assert!(out.bytes_in > 0 && out.bytes_out > 0);
    }

    #[test]
    fn snapshot_blocks_dedup() {
        let fs = Arc::new(MemFs::new());
        let newer = make_file(&fs, 1, 1, 0..50, 1000);
        let older = make_file(&fs, 2, 2, 0..50, 100);
        let v =
            Version::empty(4).apply(vec![Arc::clone(&newer), Arc::clone(&older)], &[], &[], &[]);
        let t = task(1, vec![newer], vec![older], 2);
        // Snapshot at seqno 500 sees the older versions.
        let out = run(&fs, &v, &t, &[500]);
        assert_eq!(out.shadowed, 0);
        let total: u64 = out.added.iter().map(|a| a.stats.entry_count).sum();
        assert_eq!(total, 100, "both strata survive");
    }

    #[test]
    fn bottommost_requires_all_output_level_overlaps_as_inputs() {
        let fs = Arc::new(MemFs::new());
        // A tombstone-bearing L2 file merges into L3, but another L3 run
        // (not an input) overlaps: tombstones must survive.
        let dirty = make_file_with(&fs, 1, 2, 0, 0..50, 1000, 4, 5);
        let stranger = make_file_with(&fs, 2, 3, 1, 0..50, 100, 0, 0);
        let v = Version::empty(4).apply(
            vec![Arc::clone(&dirty), Arc::clone(&stranger)],
            &[],
            &[],
            &[],
        );
        let t = task(2, vec![dirty], vec![], 3);
        let out = run(&fs, &v, &t, &[]);
        assert!(
            out.tombstones_dropped.is_empty(),
            "not bottommost: keep tombstones"
        );
        let tombstones: u64 = out.added.iter().map(|a| a.stats.tombstone_count).sum();
        assert_eq!(tombstones, 13);
    }

    #[test]
    fn output_splits_at_target_file_size() {
        let fs = Arc::new(MemFs::new());
        // ~30 KiB of payload vs a 4 KiB target: several outputs.
        let big = make_file(&fs, 1, 1, 0..1500, 1000);
        let v = Version::empty(4).apply(vec![Arc::clone(&big)], &[], &[], &[]);
        // Force a rewrite by giving it an overlapping (empty-ish) partner.
        let partner = make_file(&fs, 2, 2, 0..1, 1);
        let v = v.apply(vec![Arc::clone(&partner)], &[], &[], &[]);
        let t = task(1, vec![big], vec![partner], 2);
        let out = run(&fs, &v, &t, &[]);
        assert!(
            out.added.len() >= 3,
            "expected multiple outputs, got {}",
            out.added.len()
        );
        // Outputs are disjoint and ordered.
        for pair in out.added.windows(2) {
            assert!(pair[0].max_key() < pair[1].min_key());
        }
    }

    #[test]
    fn range_tombstone_purges_and_drops_pages_at_bottom() {
        let fs = Arc::new(MemFs::new());
        let f = make_file(&fs, 1, 2, 0..400, 1000); // dkey = key id
        let rt = RangeTombstone {
            seqno: 5_000,
            range: DeleteKeyRange::new(0, 199),
        };
        let v = Version::empty(4).apply(vec![Arc::clone(&f)], &[], &[rt], &[]);
        let t = task(2, vec![f], vec![], 3);
        let out = run(&fs, &v, &t, &[]);
        assert_eq!(out.range_purged + dropped_entries(&out, &v), 200);
        let total: u64 = out.added.iter().map(|a| a.stats.entry_count).sum();
        assert_eq!(total, 200, "uncovered half survives");
        assert!(
            out.pages_dropped > 0,
            "h=1 single-version pages are droppable"
        );
    }

    /// Entries that vanished via page drops (not individually counted).
    fn dropped_entries(out: &CompactionOutcome, v: &Version) -> u64 {
        let before: u64 = v.all_files().map(|f| f.stats.entry_count).sum();
        let after: u64 = out.added.iter().map(|a| a.stats.entry_count).sum();
        before - after - out.shadowed - out.range_purged
    }

    #[test]
    fn empty_inputs_produce_no_outputs() {
        let fs = Arc::new(MemFs::new());
        let v = Version::empty(4);
        let t = task(1, vec![], vec![], 2);
        let out = run(&fs, &v, &t, &[]);
        assert!(out.added.is_empty());
        assert!(!out.trivial_move);
    }
}
