//! Offline integrity checking: verify a database directory **without
//! opening (and thereby mutating) it** — recovery rewrites the manifest,
//! a doctor must not.
//!
//! Checks performed:
//!
//! * `CURRENT` resolves to a readable, decodable manifest;
//! * every live table file exists, its blocks pass their checksums, its
//!   entries are strictly ordered, and its stats block matches the
//!   actual contents (invariant I6);
//! * KiWi tile invariants: pages within a tile are dkey-disjoint bands,
//!   the `multi_version` flag is truthful, and tile fences bracket their
//!   contents (invariant I1);
//! * leveled runs have disjoint key ranges (the offline equivalent of
//!   `Version::check_invariants` on the recovered layout);
//! * WAL segments newer than the manifest's log number replay to a
//!   clean EOF or a torn tail (never mid-file corruption followed by
//!   more records).

use std::collections::BTreeMap;

use acheron_sstable::Table;
use acheron_types::key::compare_internal;
use acheron_types::{Error, Result, Tick};
use acheron_vfs::Vfs;
use acheron_wal::{LogReader, ReadOutcome, WalBatch};

use crate::filenames::{parse_file_name, sst_path, wal_path, FileKind};
use crate::manifest::{read_current, read_manifest, VersionEdit};

/// Per-level live-tombstone summary from an offline check. Ages are
/// measured against the newest file `created_tick` in the manifest — a
/// conservative proxy for "now", since the doctor cannot consult the
/// engine's clock without opening (and mutating) the database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelTombstoneSummary {
    /// LSM level.
    pub level: u64,
    /// Live tables at the level that hold point tombstones.
    pub files_with_tombstones: usize,
    /// Live point tombstones at the level.
    pub tombstones: u64,
    /// Birth tick of the oldest live tombstone at the level.
    pub oldest_tombstone_tick: Option<Tick>,
    /// Age of that tombstone at the newest-created-tick proxy.
    pub max_unresolved_age: Option<Tick>,
    /// Live sort-key range tombstones carried by tables at the level.
    pub key_range_tombstones: u64,
    /// Birth tick of the oldest live sort-key range tombstone.
    pub oldest_key_range_tick: Option<Tick>,
    /// Age of that range tombstone at the newest-created-tick proxy.
    pub max_unresolved_key_range_age: Option<Tick>,
}

/// Outcome of an offline check.
#[derive(Debug, Default)]
pub struct DoctorReport {
    /// Live table files verified.
    pub tables_checked: usize,
    /// Total entries across live tables.
    pub entries: u64,
    /// Total point tombstones across live tables.
    pub tombstones: u64,
    /// Total sort-key range tombstones across live tables.
    pub key_range_tombstones: u64,
    /// Live secondary range tombstones.
    pub range_tombstones: usize,
    /// WAL segments replayed.
    pub wals_checked: usize,
    /// WAL records that decoded cleanly.
    pub wal_records: u64,
    /// Per-level live-tombstone populations (levels holding none are
    /// omitted).
    pub level_tombstones: Vec<LevelTombstoneSummary>,
    /// The newest file `created_tick` in the manifest — the "now" proxy
    /// unresolved tombstone ages are measured against.
    pub newest_created_tick: Tick,
    /// Non-fatal observations (torn WAL tails, orphan files).
    pub warnings: Vec<String>,
}

/// Check the database under `dir` read-only.
pub fn check_db(fs: &dyn Vfs, dir: &str) -> Result<DoctorReport> {
    check_db_with_threshold(fs, dir, None)
}

/// [`check_db`], additionally warning when the oldest live tombstone's
/// unresolved age exceeds the delete persistence threshold `d_th` —
/// the offline form of the engine's FADE promise.
pub fn check_db_with_threshold(
    fs: &dyn Vfs,
    dir: &str,
    d_th: Option<Tick>,
) -> Result<DoctorReport> {
    let mut report = DoctorReport::default();
    let manifest_name = read_current(fs, dir)?
        .ok_or_else(|| Error::corruption("no CURRENT file: not a database directory"))?;
    let batches = read_manifest(fs, &acheron_vfs::join(dir, &manifest_name))?;

    // Fold the manifest into the live file set.
    let mut files: BTreeMap<u64, u64> = BTreeMap::new(); // id -> level
    let mut log_number = 0u64;
    let mut rt_count = 0usize;
    for batch in &batches {
        for edit in &batch.edits {
            match edit {
                VersionEdit::AddFile {
                    id,
                    level,
                    created_tick,
                    ..
                } => {
                    files.insert(*id, *level);
                    report.newest_created_tick = report.newest_created_tick.max(*created_tick);
                }
                VersionEdit::DeleteFile { id } => {
                    files.remove(id);
                }
                VersionEdit::AddRangeTombstone { .. } => rt_count += 1,
                VersionEdit::DropRangeTombstone { .. } => rt_count = rt_count.saturating_sub(1),
                VersionEdit::LogNumber { number } => log_number = log_number.max(*number),
                _ => {}
            }
        }
    }
    report.range_tombstones = rt_count;

    // Verify every live table. Per level: (min key, max key, file id).
    type KeyRange = (Vec<u8>, Vec<u8>, u64);
    let mut per_level: BTreeMap<u64, Vec<KeyRange>> = BTreeMap::new();
    let mut tomb_levels: BTreeMap<u64, LevelTombstoneSummary> = BTreeMap::new();
    for (&id, &level) in &files {
        let path = sst_path(dir, id);
        if !fs.exists(&path) {
            return Err(Error::corruption(format!(
                "manifest references missing table {path}"
            )));
        }
        let table = Table::open(fs.open(&path)?)?;
        verify_table(&table, id)?;
        let stats = table.stats();
        report.tables_checked += 1;
        report.entries += stats.entry_count;
        report.tombstones += stats.tombstone_count;
        let krts = stats.range_tombstones.len() as u64;
        report.key_range_tombstones += krts;
        if stats.tombstone_count > 0 || krts > 0 {
            let summary = tomb_levels.entry(level).or_insert(LevelTombstoneSummary {
                level,
                ..LevelTombstoneSummary::default()
            });
            if stats.tombstone_count > 0 {
                summary.files_with_tombstones += 1;
                summary.tombstones += stats.tombstone_count;
                if let Some(t0) = stats.oldest_tombstone_tick {
                    summary.oldest_tombstone_tick =
                        Some(summary.oldest_tombstone_tick.map_or(t0, |cur| cur.min(t0)));
                }
            }
            summary.key_range_tombstones += krts;
            if let Some(t0) = stats.oldest_range_tombstone_tick() {
                summary.oldest_key_range_tick =
                    Some(summary.oldest_key_range_tick.map_or(t0, |cur| cur.min(t0)));
            }
        }
        if stats.entry_count > 0 {
            per_level.entry(level).or_default().push((
                stats.min_user_key.to_vec(),
                stats.max_user_key.to_vec(),
                id,
            ));
        }
    }

    // Leveled-run disjointness (levels >= 1; run information is not in
    // the doctor's fold, so only flag overlaps on single-run layouts as
    // warnings rather than errors).
    for (level, ranges) in per_level.iter_mut().filter(|(l, _)| **l >= 1) {
        ranges.sort();
        for pair in ranges.windows(2) {
            if pair[0].1 >= pair[1].0 {
                report.warnings.push(format!(
                    "level {level}: files {} and {} overlap in key range (expected for \
                     tiered layouts, a defect for leveled ones)",
                    pair[0].2, pair[1].2
                ));
            }
        }
    }

    // Tombstone populations: how far each level's oldest live delete
    // has aged, against the manifest's newest created tick. When a
    // threshold is given, an age past it means the engine's FADE
    // promise is (or is about to be) violated for that tombstone.
    for summary in tomb_levels.values_mut() {
        summary.max_unresolved_age = summary
            .oldest_tombstone_tick
            .map(|t0| report.newest_created_tick.saturating_sub(t0));
        if let (Some(d), Some(age)) = (d_th, summary.max_unresolved_age) {
            if age > d {
                report.warnings.push(format!(
                    "level {}: oldest live tombstone is {age} ticks old, past the delete \
                     persistence threshold {d} — deletes at this level are overdue for purge",
                    summary.level
                ));
            }
        }
        summary.max_unresolved_key_range_age = summary
            .oldest_key_range_tick
            .map(|t0| report.newest_created_tick.saturating_sub(t0));
        if let (Some(d), Some(age)) = (d_th, summary.max_unresolved_key_range_age) {
            if age > d {
                report.warnings.push(format!(
                    "level {}: oldest live range tombstone is {age} ticks old, past the \
                     delete persistence threshold {d} — range deletes at this level are \
                     overdue for purge",
                    summary.level
                ));
            }
        }
    }
    report.level_tombstones = tomb_levels.into_values().collect();

    // WAL segments. A tear is only ordinary crash debris in the
    // *final* (highest-numbered) live segment — a crash can tear the
    // tail of the segment being written, but every older segment was
    // finished before the next one started. Corruption mid-history
    // invalidates every later segment and is reported distinctly:
    // recovery with synced-WAL durability refuses such an image.
    let mut live_wals: Vec<(u64, String)> = Vec::new();
    for name in fs.list(dir)? {
        let FileKind::Wal(n) = parse_file_name(&name) else {
            continue;
        };
        if n < log_number {
            report
                .warnings
                .push(format!("obsolete WAL segment {name} not yet collected"));
            continue;
        }
        live_wals.push((n, name));
    }
    live_wals.sort();
    let final_wal = live_wals.last().map(|(n, _)| *n);
    for (n, name) in live_wals {
        let data = fs.read_all(&wal_path(dir, n))?;
        let mut reader = LogReader::new(data);
        report.wals_checked += 1;
        loop {
            match reader.next_record() {
                ReadOutcome::Record(rec) => {
                    WalBatch::decode(&rec)?;
                    report.wal_records += 1;
                }
                ReadOutcome::Eof => break,
                ReadOutcome::Corrupt { offset, reason } => {
                    if Some(n) == final_wal {
                        report.warnings.push(format!(
                            "WAL {name}: torn tail at offset {offset} ({reason}); \
                             acknowledged-but-unsynced writes after it are lost"
                        ));
                    } else {
                        report.warnings.push(format!(
                            "WAL {name}: corrupt mid-history at offset {offset} ({reason}) \
                             with later live segments present; under synced-WAL durability \
                             this is media corruption and recovery will refuse the image"
                        ));
                    }
                    break;
                }
            }
        }
    }

    // Orphan and leftover files.
    for name in fs.list(dir)? {
        match parse_file_name(&name) {
            FileKind::Table(n) if !files.contains_key(&n) => {
                report
                    .warnings
                    .push(format!("orphan table file {name} (not in manifest)"));
            }
            FileKind::Temp => {
                report.warnings.push(format!(
                    "stale temp file {name} (crash debris from an interrupted \
                     CURRENT update or WAL heal) not yet collected"
                ));
            }
            _ => {}
        }
    }

    Ok(report)
}

/// Deep-verify one table: ordering, stats consistency, tile invariants.
fn verify_table(table: &std::sync::Arc<Table>, id: u64) -> Result<()> {
    // Full iteration: checksums verified on every page read; ordering
    // and stats checked as we go.
    let mut it = table.iter(vec![]);
    it.seek_to_first()?;
    let mut entries = 0u64;
    let mut tombstones = 0u64;
    let mut last: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(prev) = &last {
            if compare_internal(prev, it.key()) != std::cmp::Ordering::Less {
                return Err(Error::corruption(format!(
                    "table {id}: entries out of order"
                )));
            }
        }
        last = Some(it.key().to_vec());
        let e = it.entry()?;
        entries += 1;
        if e.is_tombstone() {
            tombstones += 1;
        }
        it.next()?;
    }
    let stats = table.stats();
    if entries != stats.entry_count || tombstones != stats.tombstone_count {
        return Err(Error::corruption(format!(
            "table {id}: stats mismatch (entries {entries} vs {}, tombstones {tombstones} vs {})",
            stats.entry_count, stats.tombstone_count
        )));
    }

    // Range-tombstone sanity: spans must be ordered and their seqnos
    // bracketed by the table's seqno window (the builder folds them in).
    for krt in &stats.range_tombstones {
        if krt.start > krt.end {
            return Err(Error::corruption(format!(
                "table {id}: inverted range tombstone span"
            )));
        }
        if krt.seqno < stats.min_seqno || krt.seqno > stats.max_seqno {
            return Err(Error::corruption(format!(
                "table {id}: range tombstone seqno {} outside stats window [{}, {}]",
                krt.seqno, stats.min_seqno, stats.max_seqno
            )));
        }
    }

    // Tile invariants.
    let mut meta_entries = 0u64;
    for (t, tile) in table.tiles().iter().enumerate() {
        for p in &tile.pages {
            meta_entries += p.entry_count;
            if p.dkey_min > p.dkey_max {
                return Err(Error::corruption(format!(
                    "table {id} tile {t}: inverted page dkey band"
                )));
            }
        }
    }
    if meta_entries != stats.entry_count {
        return Err(Error::corruption(format!(
            "table {id}: tile metadata counts {meta_entries} entries, stats say {}",
            stats.entry_count
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use crate::options::DbOptions;
    use acheron_vfs::MemFs;
    use std::sync::Arc;

    fn populated_fs() -> Arc<MemFs> {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48])
                .unwrap();
            if i % 5 == 0 {
                db.delete(format!("key{:05}", i / 2).as_bytes()).unwrap();
            }
        }
        db.range_delete_secondary(100, 200).unwrap();
        db.range_delete_keys(b"key00300", b"key00400").unwrap();
        db.flush().unwrap();
        fs
    }

    #[test]
    fn healthy_db_passes() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.tables_checked > 0);
        assert!(report.entries > 0);
        assert!(report.tombstones > 0);
        assert_eq!(report.range_tombstones, 1);
        assert_eq!(report.key_range_tombstones, 1);
        assert!(report.wals_checked >= 1);
        // No unexpected warnings on a healthy, freshly flushed database.
        for w in &report.warnings {
            assert!(
                w.contains("obsolete WAL"),
                "unexpected warning on healthy db: {w}"
            );
        }
    }

    #[test]
    fn reports_per_level_tombstone_populations() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            !report.level_tombstones.is_empty(),
            "deletes were flushed, so some level must hold tombstones"
        );
        let total: u64 = report.level_tombstones.iter().map(|l| l.tombstones).sum();
        assert_eq!(total, report.tombstones);
        for l in &report.level_tombstones {
            assert!(l.tombstones > 0);
            assert!(l.files_with_tombstones > 0);
            let t0 = l.oldest_tombstone_tick.expect("oldest tick recorded");
            assert_eq!(
                l.max_unresolved_age,
                Some(report.newest_created_tick.saturating_sub(t0))
            );
        }
    }

    #[test]
    fn reports_unresolved_key_range_tombstone_age() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        let carrier = report
            .level_tombstones
            .iter()
            .find(|l| l.key_range_tombstones > 0)
            .expect("the flushed range delete must surface at some level");
        let t0 = carrier.oldest_key_range_tick.expect("oldest tick recorded");
        assert_eq!(
            carrier.max_unresolved_key_range_age,
            Some(report.newest_created_tick.saturating_sub(t0))
        );
        // Threshold 0: the live range tombstone is overdue and warned on.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(0)).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("oldest live range tombstone")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn threshold_flags_overdue_tombstones() {
        let fs = populated_fs();
        // Threshold 0: any aged live tombstone is overdue.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(0)).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("past the delete persistence threshold")),
            "{:?}",
            report.warnings
        );
        // A huge threshold: nothing is overdue.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(u64::MAX)).unwrap();
        assert!(
            !report
                .warnings
                .iter()
                .any(|w| w.contains("past the delete persistence threshold")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn check_is_read_only() {
        let fs = populated_fs();
        let before: Vec<(String, u64)> = {
            let mut v: Vec<(String, u64)> = fs
                .list("db")
                .unwrap()
                .into_iter()
                .map(|n| {
                    let size = fs.file_size(&acheron_vfs::join("db", &n)).unwrap();
                    (n, size)
                })
                .collect();
            v.sort();
            v
        };
        check_db(fs.as_ref(), "db").unwrap();
        let after: Vec<(String, u64)> = {
            let mut v: Vec<(String, u64)> = fs
                .list("db")
                .unwrap()
                .into_iter()
                .map(|n| {
                    let size = fs.file_size(&acheron_vfs::join("db", &n)).unwrap();
                    (n, size)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(before, after, "doctor must not modify the directory");
    }

    #[test]
    fn detects_table_corruption() {
        let fs = populated_fs();
        // Corrupt a byte inside the first table file.
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.ends_with(".sst"))
            .expect("a table exists");
        let path = acheron_vfs::join("db", &name);
        let mut data = fs.read_all(&path).unwrap().to_vec();
        let mid = data.len() / 3;
        data[mid] ^= 0xff;
        fs.write_all(&path, &data).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("corruption must be detected");
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn detects_missing_table() {
        let fs = populated_fs();
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.ends_with(".sst"))
            .unwrap();
        fs.delete(&acheron_vfs::join("db", &name)).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("missing table must be detected");
        assert!(err.to_string().contains("missing table"), "{err}");
    }

    #[test]
    fn reports_torn_wal_as_warning() {
        let fs = populated_fs();
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        db.put(b"unflushed", b"v").unwrap();
        drop(db);
        // Truncate the newest WAL mid-record.
        let wal = fs
            .list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .max()
            .unwrap();
        let path = acheron_vfs::join("db", &wal);
        let data = fs.read_all(&path).unwrap();
        if data.len() > 3 {
            fs.write_all(&path, &data[..data.len() - 3]).unwrap();
        }
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report.warnings.iter().any(|w| w.contains("torn tail")),
            "torn WAL should warn, not fail: {:?}",
            report.warnings
        );
    }

    #[test]
    fn distinguishes_mid_history_corruption_from_tail_tear() {
        let fs = populated_fs();
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        db.put(b"unflushed", b"v").unwrap();
        drop(db);
        // Tear the newest WAL, then plant a later-numbered segment: the
        // tear is no longer a tail, it is corruption mid-history.
        let wal = fs
            .list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .max()
            .unwrap();
        let path = acheron_vfs::join("db", &wal);
        let data = fs.read_all(&path).unwrap();
        fs.write_all(&path, &data[..data.len() - 3]).unwrap();
        fs.write_all("db/999997.log", b"records written after the corrupt region")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains(&wal) && w.contains("corrupt mid-history")),
            "{:?}",
            report.warnings
        );
        assert!(
            !report
                .warnings
                .iter()
                .any(|w| w.contains(&wal) && w.contains("torn tail")),
            "the same tear must not also read as an ordinary tail: {:?}",
            report.warnings
        );
    }

    #[test]
    fn flags_stale_temp_files() {
        let fs = populated_fs();
        fs.write_all("db/000042.log.tmp", b"interrupted heal")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("stale temp file 000042.log.tmp")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn flags_orphan_tables() {
        let fs = populated_fs();
        fs.write_all("db/999999.sst", b"junk").unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.warnings.iter().any(|w| w.contains("orphan")));
    }

    #[test]
    fn non_database_directory_is_an_error() {
        let fs = MemFs::new();
        fs.mkdir_all("empty").unwrap();
        assert!(check_db(&fs, "empty").is_err());
    }

    #[test]
    fn current_pointing_at_missing_manifest_is_an_error() {
        let fs = populated_fs();
        fs.write_all("db/CURRENT", b"MANIFEST-999999\n").unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("dangling CURRENT must fail");
        assert!(
            err.to_string().contains("MANIFEST-999999"),
            "error should name the missing manifest: {err}"
        );
    }

    #[test]
    fn corrupt_manifest_head_is_an_error() {
        let fs = populated_fs();
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("MANIFEST-"))
            .expect("a manifest exists");
        let path = acheron_vfs::join("db", &name);
        let mut data = fs.read_all(&path).unwrap().to_vec();
        for b in data.iter_mut().take(8) {
            *b ^= 0xff;
        }
        fs.write_all(&path, &data).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("corrupt manifest head must fail");
        assert!(err.is_corruption(), "{err}");
        assert!(
            err.to_string().contains("manifest"),
            "error should blame the manifest, not a table or WAL: {err}"
        );
    }

    #[test]
    fn flags_obsolete_wal_segments() {
        let fs = populated_fs();
        // The flush in populated_fs advanced the manifest's log number
        // past segment 1, so a stale segment must be flagged as
        // obsolete — not replayed, not an error.
        fs.write_all("db/000001.log", b"stale bytes from before the flush")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("obsolete WAL segment 000001.log")),
            "{:?}",
            report.warnings
        );
    }

    /// Every corruption class has a distinct, greppable signature — a
    /// doctor that says only "corrupt" is useless for triage.
    #[test]
    fn corruption_classes_are_reported_distinctly() {
        // (mutation, unique signature) pairs; each run starts from a
        // fresh healthy image so classes cannot mask each other.
        fn table_name(fs: &MemFs) -> String {
            fs.list("db")
                .unwrap()
                .into_iter()
                .find(|n| n.ends_with(".sst"))
                .unwrap()
        }
        type CorruptionClass = (&'static str, Box<dyn Fn(&MemFs)>, &'static str);
        let classes: Vec<CorruptionClass> = vec![
            (
                "missing table",
                Box::new(|fs: &MemFs| {
                    let n = table_name(fs);
                    fs.delete(&acheron_vfs::join("db", &n)).unwrap();
                }),
                "missing table",
            ),
            (
                "orphan table",
                Box::new(|fs: &MemFs| fs.write_all("db/999998.sst", b"junk").unwrap()),
                "orphan table file",
            ),
            (
                "dangling CURRENT",
                Box::new(|fs: &MemFs| fs.write_all("db/CURRENT", b"MANIFEST-424242\n").unwrap()),
                "MANIFEST-424242",
            ),
            (
                "stale temp file",
                Box::new(|fs: &MemFs| fs.write_all("db/CURRENT.tmp", b"MANIFEST-9\n").unwrap()),
                "stale temp file",
            ),
        ];
        for (what, mutate, signature) in classes {
            let fs = populated_fs();
            mutate(fs.as_ref());
            let text = match check_db(fs.as_ref(), "db") {
                Ok(report) => report.warnings.join("\n"),
                Err(e) => e.to_string(),
            };
            assert!(
                text.contains(signature),
                "{what}: expected signature {signature:?} in {text:?}"
            );
        }
    }
}
