//! Offline integrity checking: verify a database directory **without
//! opening (and thereby mutating) it** — recovery rewrites the manifest,
//! a doctor must not.
//!
//! Checks performed:
//!
//! * `CURRENT` resolves to a readable, decodable manifest;
//! * every live table file exists, its blocks pass their checksums, its
//!   entries are strictly ordered, and its stats block matches the
//!   actual contents (invariant I6);
//! * KiWi tile invariants: pages within a tile are dkey-disjoint bands,
//!   the `multi_version` flag is truthful, and tile fences bracket their
//!   contents (invariant I1);
//! * leveled runs have disjoint key ranges (the offline equivalent of
//!   `Version::check_invariants` on the recovered layout);
//! * WAL segments newer than the manifest's log number replay to a
//!   clean EOF or a torn tail (never mid-file corruption followed by
//!   more records);
//! * value-log segments: every segment referenced by a live table
//!   exists and is frame-intact through the highest referenced offset
//!   (the dangling-pointer scan); live/dead byte accounting is
//!   recomputed from the table references so it can be cross-checked
//!   against the engine's gauges; with `--d-th`, dead extents — whose
//!   on-disk age is unknowable offline — are conservatively flagged as
//!   overdue, mirroring how recovery stamps them.

use std::collections::{BTreeMap, BTreeSet};

use acheron_sstable::Table;
use acheron_types::key::compare_internal;
use acheron_types::{Error, Result, Tick};
use acheron_vfs::Vfs;
use acheron_wal::{LogReader, ReadOutcome, WalBatch, WalOp};

use crate::filenames::{parse_file_name, sst_path, wal_path, FileKind};
use crate::manifest::{read_current, read_manifest, VersionEdit};

/// Per-level live-tombstone summary from an offline check. Ages are
/// measured against the newest file `created_tick` in the manifest — a
/// conservative proxy for "now", since the doctor cannot consult the
/// engine's clock without opening (and mutating) the database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelTombstoneSummary {
    /// LSM level.
    pub level: u64,
    /// Live tables at the level that hold point tombstones.
    pub files_with_tombstones: usize,
    /// Live point tombstones at the level.
    pub tombstones: u64,
    /// Birth tick of the oldest live tombstone at the level.
    pub oldest_tombstone_tick: Option<Tick>,
    /// Age of that tombstone at the newest-created-tick proxy.
    pub max_unresolved_age: Option<Tick>,
    /// Live sort-key range tombstones carried by tables at the level.
    pub key_range_tombstones: u64,
    /// Birth tick of the oldest live sort-key range tombstone.
    pub oldest_key_range_tick: Option<Tick>,
    /// Age of that range tombstone at the newest-created-tick proxy.
    pub max_unresolved_key_range_age: Option<Tick>,
}

/// Outcome of an offline check.
#[derive(Debug, Default)]
pub struct DoctorReport {
    /// Live table files verified.
    pub tables_checked: usize,
    /// Total entries across live tables.
    pub entries: u64,
    /// Total point tombstones across live tables.
    pub tombstones: u64,
    /// Total sort-key range tombstones across live tables.
    pub key_range_tombstones: u64,
    /// Live secondary range tombstones.
    pub range_tombstones: usize,
    /// WAL segments replayed.
    pub wals_checked: usize,
    /// WAL records that decoded cleanly.
    pub wal_records: u64,
    /// Value-log segments scanned.
    pub vlog_segments_checked: usize,
    /// Vlog bytes referenced by live tables or replayable WAL records —
    /// computed exactly as recovery rebuilds the engine's accounting,
    /// so it must equal the `db_vlog_live_bytes` gauge.
    pub vlog_live_bytes: u64,
    /// Vlog bytes no live pointer references (segment sizes minus
    /// `vlog_live_bytes`) — the counterpart of `db_vlog_dead_bytes`.
    pub vlog_dead_bytes: u64,
    /// Per-level live-tombstone populations (levels holding none are
    /// omitted).
    pub level_tombstones: Vec<LevelTombstoneSummary>,
    /// The newest file `created_tick` in the manifest — the "now" proxy
    /// unresolved tombstone ages are measured against.
    pub newest_created_tick: Tick,
    /// Non-fatal observations (torn WAL tails, orphan files).
    pub warnings: Vec<String>,
}

impl DoctorReport {
    /// The single number an offline `--d-th` judgment folds down to:
    /// the maximum unresolved delete age across the point and
    /// sort-key-range tombstone families of every level. Dead vlog
    /// extents carry no persistent birth tick, so they cannot extend
    /// this age — `vlog_dead_bytes` reports them separately.
    pub fn worst_unresolved_delete_age(&self) -> Option<Tick> {
        self.level_tombstones
            .iter()
            .flat_map(|l| [l.max_unresolved_age, l.max_unresolved_key_range_age])
            .flatten()
            .max()
    }
}

/// Check the database under `dir` read-only.
pub fn check_db(fs: &dyn Vfs, dir: &str) -> Result<DoctorReport> {
    check_db_with_threshold(fs, dir, None)
}

/// [`check_db`], additionally warning when the oldest live tombstone's
/// unresolved age exceeds the delete persistence threshold `d_th` —
/// the offline form of the engine's FADE promise.
pub fn check_db_with_threshold(
    fs: &dyn Vfs,
    dir: &str,
    d_th: Option<Tick>,
) -> Result<DoctorReport> {
    let mut report = DoctorReport::default();
    let manifest_name = read_current(fs, dir)?
        .ok_or_else(|| Error::corruption("no CURRENT file: not a database directory"))?;
    let batches = read_manifest(fs, &acheron_vfs::join(dir, &manifest_name))?;

    // Fold the manifest into the live file set.
    let mut files: BTreeMap<u64, u64> = BTreeMap::new(); // id -> level
    let mut log_number = 0u64;
    let mut rt_count = 0usize;
    // Vlog segments GC deleted. Live tables may still carry shadowed
    // pointers into them until compaction rewrites the entries; those
    // references are expected-stale, not dangling.
    let mut vlog_dropped: BTreeSet<u64> = BTreeSet::new();
    for batch in &batches {
        for edit in &batch.edits {
            match edit {
                VersionEdit::AddFile {
                    id,
                    level,
                    created_tick,
                    ..
                } => {
                    files.insert(*id, *level);
                    report.newest_created_tick = report.newest_created_tick.max(*created_tick);
                }
                VersionEdit::DeleteFile { id } => {
                    files.remove(id);
                }
                VersionEdit::AddRangeTombstone { .. } => rt_count += 1,
                VersionEdit::DropRangeTombstone { .. } => rt_count = rt_count.saturating_sub(1),
                VersionEdit::LogNumber { number } => log_number = log_number.max(*number),
                VersionEdit::DropVlogSegment { segment } => {
                    vlog_dropped.insert(*segment);
                }
                _ => {}
            }
        }
    }
    report.range_tombstones = rt_count;

    // Verify every live table. Per level: (min key, max key, file id).
    type KeyRange = (Vec<u8>, Vec<u8>, u64);
    let mut per_level: BTreeMap<u64, Vec<KeyRange>> = BTreeMap::new();
    let mut tomb_levels: BTreeMap<u64, LevelTombstoneSummary> = BTreeMap::new();
    // Vlog references folded across the live tables:
    // segment -> (referenced bytes, highest referenced frame end).
    let mut vlog_refs: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for (&id, &level) in &files {
        let path = sst_path(dir, id);
        if !fs.exists(&path) {
            return Err(Error::corruption(format!(
                "manifest references missing table {path}"
            )));
        }
        let table = Table::open(fs.open(&path)?)?;
        verify_table(&table, id)?;
        let stats = table.stats();
        report.tables_checked += 1;
        report.entries += stats.entry_count;
        report.tombstones += stats.tombstone_count;
        let krts = stats.range_tombstones.len() as u64;
        report.key_range_tombstones += krts;
        if stats.tombstone_count > 0 || krts > 0 {
            let summary = tomb_levels.entry(level).or_insert(LevelTombstoneSummary {
                level,
                ..LevelTombstoneSummary::default()
            });
            if stats.tombstone_count > 0 {
                summary.files_with_tombstones += 1;
                summary.tombstones += stats.tombstone_count;
                if let Some(t0) = stats.oldest_tombstone_tick {
                    summary.oldest_tombstone_tick =
                        Some(summary.oldest_tombstone_tick.map_or(t0, |cur| cur.min(t0)));
                }
            }
            summary.key_range_tombstones += krts;
            if let Some(t0) = stats.oldest_range_tombstone_tick() {
                summary.oldest_key_range_tick =
                    Some(summary.oldest_key_range_tick.map_or(t0, |cur| cur.min(t0)));
            }
        }
        for r in &stats.vlog_refs {
            let slot = vlog_refs.entry(r.segment).or_insert((0, 0));
            slot.0 += r.bytes;
            slot.1 = slot.1.max(r.max_end);
        }
        if stats.entry_count > 0 {
            per_level.entry(level).or_default().push((
                stats.min_user_key.to_vec(),
                stats.max_user_key.to_vec(),
                id,
            ));
        }
    }

    // Leveled-run disjointness (levels >= 1; run information is not in
    // the doctor's fold, so only flag overlaps on single-run layouts as
    // warnings rather than errors).
    for (level, ranges) in per_level.iter_mut().filter(|(l, _)| **l >= 1) {
        ranges.sort();
        for pair in ranges.windows(2) {
            if pair[0].1 >= pair[1].0 {
                report.warnings.push(format!(
                    "level {level}: files {} and {} overlap in key range (expected for \
                     tiered layouts, a defect for leveled ones)",
                    pair[0].2, pair[1].2
                ));
            }
        }
    }

    // Tombstone populations: how far each level's oldest live delete
    // has aged, against the manifest's newest created tick. When a
    // threshold is given, an age past it means the engine's FADE
    // promise is (or is about to be) violated for that tombstone.
    for summary in tomb_levels.values_mut() {
        summary.max_unresolved_age = summary
            .oldest_tombstone_tick
            .map(|t0| report.newest_created_tick.saturating_sub(t0));
        if let (Some(d), Some(age)) = (d_th, summary.max_unresolved_age) {
            if age > d {
                report.warnings.push(format!(
                    "level {}: oldest live tombstone is {age} ticks old, past the delete \
                     persistence threshold {d} — deletes at this level are overdue for purge",
                    summary.level
                ));
            }
        }
        summary.max_unresolved_key_range_age = summary
            .oldest_key_range_tick
            .map(|t0| report.newest_created_tick.saturating_sub(t0));
        if let (Some(d), Some(age)) = (d_th, summary.max_unresolved_key_range_age) {
            if age > d {
                report.warnings.push(format!(
                    "level {}: oldest live range tombstone is {age} ticks old, past the \
                     delete persistence threshold {d} — range deletes at this level are \
                     overdue for purge",
                    summary.level
                ));
            }
        }
    }
    report.level_tombstones = tomb_levels.into_values().collect();

    // WAL segments. A tear is only ordinary crash debris in the
    // *final* (highest-numbered) live segment — a crash can tear the
    // tail of the segment being written, but every older segment was
    // finished before the next one started. Corruption mid-history
    // invalidates every later segment and is reported distinctly:
    // recovery with synced-WAL durability refuses such an image.
    let mut live_wals: Vec<(u64, String)> = Vec::new();
    for name in fs.list(dir)? {
        let FileKind::Wal(n) = parse_file_name(&name) else {
            continue;
        };
        if n < log_number {
            report
                .warnings
                .push(format!("obsolete WAL segment {name} not yet collected"));
            continue;
        }
        live_wals.push((n, name));
    }
    live_wals.sort();
    let final_wal = live_wals.last().map(|(n, _)| *n);
    // Pointers carried by replayable WAL records keep their segments
    // live too (recovery re-inserts them), so fold them into the same
    // reference map before judging segments orphaned or dead.
    let mut wal_vlog_refs: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for (n, name) in live_wals {
        let data = fs.read_all(&wal_path(dir, n))?;
        let mut reader = LogReader::new(data);
        report.wals_checked += 1;
        loop {
            match reader.next_record() {
                ReadOutcome::Record(rec) => {
                    let batch = WalBatch::decode(&rec)?;
                    for op in &batch.ops {
                        if let WalOp::PutPtr { ptr, .. } = op {
                            let slot = wal_vlog_refs.entry(ptr.segment).or_insert((0, 0));
                            slot.0 += u64::from(ptr.len);
                            slot.1 = slot.1.max(ptr.end());
                        }
                    }
                    report.wal_records += 1;
                }
                ReadOutcome::Eof => break,
                ReadOutcome::Corrupt { offset, reason } => {
                    if Some(n) == final_wal {
                        report.warnings.push(format!(
                            "WAL {name}: torn tail at offset {offset} ({reason}); \
                             acknowledged-but-unsynced writes after it are lost"
                        ));
                    } else {
                        report.warnings.push(format!(
                            "WAL {name}: corrupt mid-history at offset {offset} ({reason}) \
                             with later live segments present; under synced-WAL durability \
                             this is media corruption and recovery will refuse the image"
                        ));
                    }
                    break;
                }
            }
        }
    }

    // Value-log segments. Table-held pointers into a missing or
    // frame-torn region are hard corruption (reads through them fail);
    // WAL-held pointers into one are crash debris (recovery truncates
    // the WAL at the first such record) and only warn. Dead bytes are
    // whatever no live pointer covers; their birth ticks are not on
    // disk, so with a threshold they are conservatively reported as
    // overdue — exactly how recovery stamps them before the engine's
    // first GC pass drains them.
    let mut vlog_on_disk: BTreeMap<u64, String> = BTreeMap::new();
    for name in fs.list(dir)? {
        if let FileKind::Vlog(seg) = parse_file_name(&name) {
            vlog_on_disk.insert(seg, name);
        }
    }
    // References into GC-dropped segments hold nothing live: the drop
    // record's durability ordering guarantees a newer shadowing version
    // exists, so they are neither dangling (the manifest explains the
    // missing file) nor bytes to keep.
    vlog_refs.retain(|seg, _| !vlog_dropped.contains(seg));
    wal_vlog_refs.retain(|seg, _| !vlog_dropped.contains(seg));
    for (seg, (bytes, max_end)) in &vlog_refs {
        if !vlog_on_disk.contains_key(seg) {
            return Err(Error::corruption(format!(
                "live tables hold pointers into missing vlog segment {seg:06} — \
                 dangling values"
            )));
        }
        report.vlog_live_bytes += bytes;
        let data = fs.read_all(&crate::filenames::vlog_path(dir, *seg))?;
        let scan = acheron_vlog::scan_segment(&data);
        report.vlog_segments_checked += 1;
        if *max_end > scan.valid_len {
            return Err(Error::corruption(format!(
                "vlog segment {seg:06}: live pointers reach offset {max_end} but the \
                 intact frame prefix ends at {} — dangling values",
                scan.valid_len
            )));
        }
        if scan.torn {
            report.warnings.push(format!(
                "vlog segment {seg:06}: torn tail past the last intact frame \
                 (crash debris; reclaimed when the segment is rewritten)"
            ));
        }
    }
    for (seg, (bytes, max_end)) in &wal_vlog_refs {
        let intact = vlog_on_disk.contains_key(seg) && {
            let data = fs.read_all(&crate::filenames::vlog_path(dir, *seg))?;
            *max_end <= acheron_vlog::scan_segment(&data).valid_len
        };
        if intact {
            // Double counting with the table refs is impossible: a
            // seqno lives in the tables or in the WAL, never both.
            report.vlog_live_bytes += bytes;
        } else {
            report.warnings.push(format!(
                "WAL records reference vlog segment {seg:06} beyond its intact \
                 frames (or the segment is missing); recovery will truncate the \
                 WAL at the first such record"
            ));
        }
    }
    for (seg, name) in &vlog_on_disk {
        let size = fs.file_size(&crate::filenames::vlog_path(dir, *seg))?;
        let referenced = vlog_refs.get(seg).map_or(0, |(b, _)| *b)
            + wal_vlog_refs.get(seg).map_or(0, |(b, _)| *b);
        let dead = size.saturating_sub(referenced);
        report.vlog_dead_bytes += dead;
        if referenced == 0 {
            report.warnings.push(format!(
                "orphan vlog segment {name} (no live table or WAL pointer \
                 references it) not yet collected"
            ));
        } else if let (Some(d), true) = (d_th, dead > 0) {
            report.warnings.push(format!(
                "vlog segment {name}: {dead} dead bytes of unknown age — \
                 conservatively overdue under the delete persistence threshold {d}; \
                 the engine's next GC pass must rewrite this segment"
            ));
        }
    }

    // Orphan and leftover files.
    for name in fs.list(dir)? {
        match parse_file_name(&name) {
            FileKind::Table(n) if !files.contains_key(&n) => {
                report
                    .warnings
                    .push(format!("orphan table file {name} (not in manifest)"));
            }
            FileKind::Temp => {
                report.warnings.push(format!(
                    "stale temp file {name} (crash debris from an interrupted \
                     CURRENT update or WAL heal) not yet collected"
                ));
            }
            _ => {}
        }
    }

    Ok(report)
}

/// Deep-verify one table: ordering, stats consistency, tile invariants.
fn verify_table(table: &std::sync::Arc<Table>, id: u64) -> Result<()> {
    // Full iteration: checksums verified on every page read; ordering
    // and stats checked as we go.
    let mut it = table.iter(vec![]);
    it.seek_to_first()?;
    let mut entries = 0u64;
    let mut tombstones = 0u64;
    let mut last: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(prev) = &last {
            if compare_internal(prev, it.key()) != std::cmp::Ordering::Less {
                return Err(Error::corruption(format!(
                    "table {id}: entries out of order"
                )));
            }
        }
        last = Some(it.key().to_vec());
        let e = it.entry()?;
        entries += 1;
        if e.is_tombstone() {
            tombstones += 1;
        }
        it.next()?;
    }
    let stats = table.stats();
    if entries != stats.entry_count || tombstones != stats.tombstone_count {
        return Err(Error::corruption(format!(
            "table {id}: stats mismatch (entries {entries} vs {}, tombstones {tombstones} vs {})",
            stats.entry_count, stats.tombstone_count
        )));
    }

    // Range-tombstone sanity: spans must be ordered and their seqnos
    // bracketed by the table's seqno window (the builder folds them in).
    for krt in &stats.range_tombstones {
        if krt.start > krt.end {
            return Err(Error::corruption(format!(
                "table {id}: inverted range tombstone span"
            )));
        }
        if krt.seqno < stats.min_seqno || krt.seqno > stats.max_seqno {
            return Err(Error::corruption(format!(
                "table {id}: range tombstone seqno {} outside stats window [{}, {}]",
                krt.seqno, stats.min_seqno, stats.max_seqno
            )));
        }
    }

    // Tile invariants.
    let mut meta_entries = 0u64;
    for (t, tile) in table.tiles().iter().enumerate() {
        for p in &tile.pages {
            meta_entries += p.entry_count;
            if p.dkey_min > p.dkey_max {
                return Err(Error::corruption(format!(
                    "table {id} tile {t}: inverted page dkey band"
                )));
            }
        }
    }
    if meta_entries != stats.entry_count {
        return Err(Error::corruption(format!(
            "table {id}: tile metadata counts {meta_entries} entries, stats say {}",
            stats.entry_count
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use crate::options::DbOptions;
    use acheron_vfs::MemFs;
    use std::sync::Arc;

    fn populated_fs() -> Arc<MemFs> {
        let fs = Arc::new(MemFs::new());
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        for i in 0..2000u32 {
            db.put(format!("key{i:05}").as_bytes(), &[b'v'; 48])
                .unwrap();
            if i % 5 == 0 {
                db.delete(format!("key{:05}", i / 2).as_bytes()).unwrap();
            }
        }
        db.range_delete_secondary(100, 200).unwrap();
        db.range_delete_keys(b"key00300", b"key00400").unwrap();
        db.flush().unwrap();
        fs
    }

    #[test]
    fn healthy_db_passes() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.tables_checked > 0);
        assert!(report.entries > 0);
        assert!(report.tombstones > 0);
        assert_eq!(report.range_tombstones, 1);
        assert_eq!(report.key_range_tombstones, 1);
        assert!(report.wals_checked >= 1);
        // No unexpected warnings on a healthy, freshly flushed database.
        for w in &report.warnings {
            assert!(
                w.contains("obsolete WAL"),
                "unexpected warning on healthy db: {w}"
            );
        }
    }

    #[test]
    fn reports_per_level_tombstone_populations() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            !report.level_tombstones.is_empty(),
            "deletes were flushed, so some level must hold tombstones"
        );
        let total: u64 = report.level_tombstones.iter().map(|l| l.tombstones).sum();
        assert_eq!(total, report.tombstones);
        for l in &report.level_tombstones {
            assert!(l.tombstones > 0);
            assert!(l.files_with_tombstones > 0);
            let t0 = l.oldest_tombstone_tick.expect("oldest tick recorded");
            assert_eq!(
                l.max_unresolved_age,
                Some(report.newest_created_tick.saturating_sub(t0))
            );
        }
    }

    #[test]
    fn reports_unresolved_key_range_tombstone_age() {
        let fs = populated_fs();
        let report = check_db(fs.as_ref(), "db").unwrap();
        let carrier = report
            .level_tombstones
            .iter()
            .find(|l| l.key_range_tombstones > 0)
            .expect("the flushed range delete must surface at some level");
        let t0 = carrier.oldest_key_range_tick.expect("oldest tick recorded");
        assert_eq!(
            carrier.max_unresolved_key_range_age,
            Some(report.newest_created_tick.saturating_sub(t0))
        );
        // Threshold 0: the live range tombstone is overdue and warned on.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(0)).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("oldest live range tombstone")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn threshold_flags_overdue_tombstones() {
        let fs = populated_fs();
        // Threshold 0: any aged live tombstone is overdue.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(0)).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("past the delete persistence threshold")),
            "{:?}",
            report.warnings
        );
        // A huge threshold: nothing is overdue.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(u64::MAX)).unwrap();
        assert!(
            !report
                .warnings
                .iter()
                .any(|w| w.contains("past the delete persistence threshold")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn check_is_read_only() {
        let fs = populated_fs();
        let before: Vec<(String, u64)> = {
            let mut v: Vec<(String, u64)> = fs
                .list("db")
                .unwrap()
                .into_iter()
                .map(|n| {
                    let size = fs.file_size(&acheron_vfs::join("db", &n)).unwrap();
                    (n, size)
                })
                .collect();
            v.sort();
            v
        };
        check_db(fs.as_ref(), "db").unwrap();
        let after: Vec<(String, u64)> = {
            let mut v: Vec<(String, u64)> = fs
                .list("db")
                .unwrap()
                .into_iter()
                .map(|n| {
                    let size = fs.file_size(&acheron_vfs::join("db", &n)).unwrap();
                    (n, size)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(before, after, "doctor must not modify the directory");
    }

    #[test]
    fn detects_table_corruption() {
        let fs = populated_fs();
        // Corrupt a byte inside the first table file.
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.ends_with(".sst"))
            .expect("a table exists");
        let path = acheron_vfs::join("db", &name);
        let mut data = fs.read_all(&path).unwrap().to_vec();
        let mid = data.len() / 3;
        data[mid] ^= 0xff;
        fs.write_all(&path, &data).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("corruption must be detected");
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn detects_missing_table() {
        let fs = populated_fs();
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.ends_with(".sst"))
            .unwrap();
        fs.delete(&acheron_vfs::join("db", &name)).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("missing table must be detected");
        assert!(err.to_string().contains("missing table"), "{err}");
    }

    #[test]
    fn reports_torn_wal_as_warning() {
        let fs = populated_fs();
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        db.put(b"unflushed", b"v").unwrap();
        drop(db);
        // Truncate the newest WAL mid-record.
        let wal = fs
            .list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .max()
            .unwrap();
        let path = acheron_vfs::join("db", &wal);
        let data = fs.read_all(&path).unwrap();
        if data.len() > 3 {
            fs.write_all(&path, &data[..data.len() - 3]).unwrap();
        }
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report.warnings.iter().any(|w| w.contains("torn tail")),
            "torn WAL should warn, not fail: {:?}",
            report.warnings
        );
    }

    #[test]
    fn distinguishes_mid_history_corruption_from_tail_tear() {
        let fs = populated_fs();
        let db = Db::open(fs.clone(), "db", DbOptions::small()).unwrap();
        db.put(b"unflushed", b"v").unwrap();
        drop(db);
        // Tear the newest WAL, then plant a later-numbered segment: the
        // tear is no longer a tail, it is corruption mid-history.
        let wal = fs
            .list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".log"))
            .max()
            .unwrap();
        let path = acheron_vfs::join("db", &wal);
        let data = fs.read_all(&path).unwrap();
        fs.write_all(&path, &data[..data.len() - 3]).unwrap();
        fs.write_all("db/999997.log", b"records written after the corrupt region")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains(&wal) && w.contains("corrupt mid-history")),
            "{:?}",
            report.warnings
        );
        assert!(
            !report
                .warnings
                .iter()
                .any(|w| w.contains(&wal) && w.contains("torn tail")),
            "the same tear must not also read as an ordinary tail: {:?}",
            report.warnings
        );
    }

    #[test]
    fn flags_stale_temp_files() {
        let fs = populated_fs();
        fs.write_all("db/000042.log.tmp", b"interrupted heal")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("stale temp file 000042.log.tmp")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn flags_orphan_tables() {
        let fs = populated_fs();
        fs.write_all("db/999999.sst", b"junk").unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.warnings.iter().any(|w| w.contains("orphan")));
    }

    // --------------------------------------------------------------
    // Value-log checks
    // --------------------------------------------------------------

    fn vlog_populated_fs(delete_some: bool) -> Arc<MemFs> {
        let fs = Arc::new(MemFs::new());
        let mut opts = DbOptions::small().with_value_separation(64);
        opts.vlog_segment_bytes = 2048;
        let db = Db::open(fs.clone(), "db", opts).unwrap();
        for i in 0..80u32 {
            db.put(format!("big{i:04}").as_bytes(), &[b'V'; 300])
                .unwrap();
        }
        db.flush().unwrap();
        if delete_some {
            for i in 0..30u32 {
                db.delete(format!("big{i:04}").as_bytes()).unwrap();
            }
            // Drop the pointers but keep GC from rewriting the segments,
            // so the image retains dead bytes for the doctor to find.
            let _pause = db.pause_maintenance();
            db.compact_all().unwrap();
        }
        fs
    }

    fn some_vlog_segment(fs: &MemFs) -> String {
        fs.list("db")
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".vlg"))
            .min()
            .expect("a vlog segment exists")
    }

    #[test]
    fn healthy_vlog_db_is_warning_free() {
        let fs = vlog_populated_fs(false);
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(1)).unwrap();
        assert!(report.vlog_segments_checked > 0);
        assert!(report.vlog_live_bytes > 0);
        assert_eq!(report.vlog_dead_bytes, 0);
        for w in &report.warnings {
            assert!(
                w.contains("obsolete WAL"),
                "unexpected warning on healthy vlog db: {w}"
            );
        }
    }

    #[test]
    fn wal_held_pointers_keep_segments_live() {
        let fs = Arc::new(MemFs::new());
        {
            let mut opts = DbOptions::small().with_value_separation(64);
            opts.vlog_segment_bytes = 2048;
            let db = Db::open(fs.clone(), "db", opts).unwrap();
            // Never flushed: the only references live in the WAL.
            for i in 0..10u32 {
                db.put(format!("big{i:04}").as_bytes(), &[b'V'; 300])
                    .unwrap();
            }
        }
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.vlog_live_bytes > 0);
        assert!(
            !report.warnings.iter().any(|w| w.contains("orphan vlog")),
            "WAL-referenced segments are not orphans: {:?}",
            report.warnings
        );
    }

    #[test]
    fn vlog_accounting_matches_engine_gauges() {
        let fs = Arc::new(MemFs::new());
        let (live, dead) = {
            let mut opts = DbOptions::small().with_value_separation(64);
            opts.vlog_segment_bytes = 2048;
            let db = Db::open(fs.clone(), "db", opts).unwrap();
            for i in 0..80u32 {
                db.put(format!("big{i:04}").as_bytes(), &[b'V'; 300])
                    .unwrap();
            }
            db.flush().unwrap();
            for i in 0..30u32 {
                db.delete(format!("big{i:04}").as_bytes()).unwrap();
            }
            let _pause = db.pause_maintenance();
            db.compact_all().unwrap();
            let g = db.tombstone_gauges();
            (g.vlog_live_bytes, g.vlog_dead_bytes)
        };
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(dead > 0, "the deletes must have produced dead extents");
        assert_eq!(report.vlog_live_bytes, live, "live-byte accounting drifted");
        assert_eq!(report.vlog_dead_bytes, dead, "dead-byte accounting drifted");
    }

    #[test]
    fn detects_dangling_vlog_pointers() {
        let fs = vlog_populated_fs(false);
        let seg = some_vlog_segment(fs.as_ref());
        fs.delete(&acheron_vfs::join("db", &seg)).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("dangling pointers must fail");
        assert!(err.is_corruption(), "{err}");
        assert!(
            err.to_string().contains("missing vlog segment"),
            "error should name the class: {err}"
        );
    }

    #[test]
    fn detects_truncated_vlog_segment() {
        let fs = vlog_populated_fs(false);
        let seg = some_vlog_segment(fs.as_ref());
        let path = acheron_vfs::join("db", &seg);
        let data = fs.read_all(&path).unwrap();
        fs.write_all(&path, &data[..data.len() / 2]).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("pointers past the tear must fail");
        assert!(err.is_corruption(), "{err}");
        assert!(
            err.to_string().contains("intact frame prefix"),
            "error should name the class: {err}"
        );
    }

    #[test]
    fn flags_orphan_vlog_segments() {
        let fs = vlog_populated_fs(false);
        fs.write_all("db/vlog-000077.vlg", b"junk no pointer references")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("orphan vlog segment vlog-000077.vlg")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn threshold_flags_dead_vlog_extents_as_overdue() {
        let fs = vlog_populated_fs(true);
        // Without a threshold: dead bytes reported, no overdue warning.
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(report.vlog_dead_bytes > 0);
        assert!(
            !report.warnings.iter().any(|w| w.contains("dead bytes")),
            "{:?}",
            report.warnings
        );
        // With one: the same extents are conservatively overdue.
        let report = check_db_with_threshold(fs.as_ref(), "db", Some(1_000)).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("dead bytes") && w.contains("overdue")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn non_database_directory_is_an_error() {
        let fs = MemFs::new();
        fs.mkdir_all("empty").unwrap();
        assert!(check_db(&fs, "empty").is_err());
    }

    #[test]
    fn current_pointing_at_missing_manifest_is_an_error() {
        let fs = populated_fs();
        fs.write_all("db/CURRENT", b"MANIFEST-999999\n").unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("dangling CURRENT must fail");
        assert!(
            err.to_string().contains("MANIFEST-999999"),
            "error should name the missing manifest: {err}"
        );
    }

    #[test]
    fn corrupt_manifest_head_is_an_error() {
        let fs = populated_fs();
        let name = fs
            .list("db")
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("MANIFEST-"))
            .expect("a manifest exists");
        let path = acheron_vfs::join("db", &name);
        let mut data = fs.read_all(&path).unwrap().to_vec();
        for b in data.iter_mut().take(8) {
            *b ^= 0xff;
        }
        fs.write_all(&path, &data).unwrap();
        let err = check_db(fs.as_ref(), "db").expect_err("corrupt manifest head must fail");
        assert!(err.is_corruption(), "{err}");
        assert!(
            err.to_string().contains("manifest"),
            "error should blame the manifest, not a table or WAL: {err}"
        );
    }

    #[test]
    fn flags_obsolete_wal_segments() {
        let fs = populated_fs();
        // The flush in populated_fs advanced the manifest's log number
        // past segment 1, so a stale segment must be flagged as
        // obsolete — not replayed, not an error.
        fs.write_all("db/000001.log", b"stale bytes from before the flush")
            .unwrap();
        let report = check_db(fs.as_ref(), "db").unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("obsolete WAL segment 000001.log")),
            "{:?}",
            report.warnings
        );
    }

    /// Every corruption class has a distinct, greppable signature — a
    /// doctor that says only "corrupt" is useless for triage.
    #[test]
    fn corruption_classes_are_reported_distinctly() {
        // (mutation, unique signature) pairs; each run starts from a
        // fresh healthy image so classes cannot mask each other.
        fn table_name(fs: &MemFs) -> String {
            fs.list("db")
                .unwrap()
                .into_iter()
                .find(|n| n.ends_with(".sst"))
                .unwrap()
        }
        type CorruptionClass = (&'static str, Box<dyn Fn(&MemFs)>, &'static str);
        let classes: Vec<CorruptionClass> = vec![
            (
                "missing table",
                Box::new(|fs: &MemFs| {
                    let n = table_name(fs);
                    fs.delete(&acheron_vfs::join("db", &n)).unwrap();
                }),
                "missing table",
            ),
            (
                "orphan table",
                Box::new(|fs: &MemFs| fs.write_all("db/999998.sst", b"junk").unwrap()),
                "orphan table file",
            ),
            (
                "dangling CURRENT",
                Box::new(|fs: &MemFs| fs.write_all("db/CURRENT", b"MANIFEST-424242\n").unwrap()),
                "MANIFEST-424242",
            ),
            (
                "stale temp file",
                Box::new(|fs: &MemFs| fs.write_all("db/CURRENT.tmp", b"MANIFEST-9\n").unwrap()),
                "stale temp file",
            ),
        ];
        for (what, mutate, signature) in classes {
            let fs = populated_fs();
            mutate(fs.as_ref());
            let text = match check_db(fs.as_ref(), "db") {
                Ok(report) => report.warnings.join("\n"),
                Err(e) => e.to_string(),
            };
            assert!(
                text.contains(signature),
                "{what}: expected signature {signature:?} in {text:?}"
            );
        }
    }
}
