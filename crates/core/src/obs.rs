//! Engine flight recorder: structured event tracing and live
//! delete-persistence gauges.
//!
//! The engine's promise — bounded delete persistence — was previously
//! observable only *after the fact*, through the purge histogram in
//! [`crate::stats`]. This module makes the maintenance pipeline
//! visible while it runs:
//!
//! * [`EventLog`] is a lock-free, fixed-capacity ring of typed
//!   [`Event`]s (flushes, compaction picks with their trigger inputs,
//!   stalls, WAL group commits, recovery steps). Emission costs one
//!   atomic seqno allocation plus one slot write — no allocation, no
//!   lock — so the hooks stay on in production builds.
//! * [`TombstoneGauges`] aggregates per-level file/byte/tombstone
//!   counts and the per-file oldest-tombstone ticks from per-sstable
//!   metadata. It is recomputed at version-install time (the only
//!   moment the file set changes), so reading it is free and it can
//!   never drift from the installed tree.
//! * [`render_prometheus`] / [`render_events`] turn counters, gauges,
//!   and the ring into the text forms served by the `metrics` and
//!   `events` wire commands.
//!
//! # Ring-buffer consistency
//!
//! Writers never coordinate: `log` allocates a seqno with one
//! `fetch_add`, then writes the slot `seqno % capacity` under a
//! per-slot seqlock (`begin` stamp, release fence, payload words,
//! `end` stamp). A reader accepts a slot only when `begin == end ==
//! seqno + 1` re-reads consistently around the payload, so a slot
//! being overwritten mid-drain is *skipped* (counted as dropped), and
//! drains never block or delay writers. All payload fields are
//! atomics, so racing accesses are well-defined; the stamps only
//! guard logical consistency.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use acheron_types::Tick;

use crate::picker::CompactionReason;
use crate::version::Version;

pub mod trace;

use trace::{CohortStage, TraceOp, TraceStage};

/// A recovery milestone carried by [`Event::RecoveryStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStepKind {
    /// The manifest chain was folded into a live file set.
    ManifestLoaded,
    /// One WAL segment replayed cleanly (detail = records).
    WalSegmentReplayed,
    /// A torn WAL tail was healed (detail = segment number).
    TornTailHealed,
    /// The compacted snapshot manifest was made durable.
    SnapshotManifestWritten,
    /// Recovery finished (detail = entries recovered into the buffer).
    Finished,
}

impl RecoveryStepKind {
    fn code(self) -> u64 {
        match self {
            RecoveryStepKind::ManifestLoaded => 0,
            RecoveryStepKind::WalSegmentReplayed => 1,
            RecoveryStepKind::TornTailHealed => 2,
            RecoveryStepKind::SnapshotManifestWritten => 3,
            RecoveryStepKind::Finished => 4,
        }
    }

    fn from_code(code: u64) -> Option<RecoveryStepKind> {
        Some(match code {
            0 => RecoveryStepKind::ManifestLoaded,
            1 => RecoveryStepKind::WalSegmentReplayed,
            2 => RecoveryStepKind::TornTailHealed,
            3 => RecoveryStepKind::SnapshotManifestWritten,
            4 => RecoveryStepKind::Finished,
            _ => return None,
        })
    }

    /// Lowercase name for text exposition.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryStepKind::ManifestLoaded => "manifest_loaded",
            RecoveryStepKind::WalSegmentReplayed => "wal_segment_replayed",
            RecoveryStepKind::TornTailHealed => "torn_tail_healed",
            RecoveryStepKind::SnapshotManifestWritten => "snapshot_manifest_written",
            RecoveryStepKind::Finished => "finished",
        }
    }
}

/// What kind of dead file recovery garbage-collected, carried by
/// [`Event::GcDropped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// A table file not referenced by the manifest.
    OrphanTable,
    /// A WAL segment older than the manifest's log number.
    DeadWal,
    /// A manifest superseded by the recovery snapshot.
    StaleManifest,
    /// Crash debris from an interrupted rename.
    TempFile,
    /// A value-log segment no surviving pointer references.
    VlogSegment,
}

impl GcKind {
    fn code(self) -> u64 {
        match self {
            GcKind::OrphanTable => 0,
            GcKind::DeadWal => 1,
            GcKind::StaleManifest => 2,
            GcKind::TempFile => 3,
            GcKind::VlogSegment => 4,
        }
    }

    fn from_code(code: u64) -> Option<GcKind> {
        Some(match code {
            0 => GcKind::OrphanTable,
            1 => GcKind::DeadWal,
            2 => GcKind::StaleManifest,
            3 => GcKind::TempFile,
            4 => GcKind::VlogSegment,
            _ => return None,
        })
    }

    /// Lowercase name for text exposition.
    pub fn name(self) -> &'static str {
        match self {
            GcKind::OrphanTable => "orphan_table",
            GcKind::DeadWal => "dead_wal",
            GcKind::StaleManifest => "stale_manifest",
            GcKind::TempFile => "temp_file",
            GcKind::VlogSegment => "vlog_segment",
        }
    }
}

/// One typed engine event. Every variant is `Copy` and carries only
/// numeric fields, so logging never allocates and a whole event fits
/// in one ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The active memtable was swapped out for flushing.
    MemtableSealed {
        /// Entries in the sealed memtable.
        entries: u64,
        /// Approximate bytes in the sealed memtable.
        bytes: u64,
        /// Sealed memtables now queued behind the flusher.
        sealed_behind: u64,
    },
    /// A sealed memtable starts flushing to an L0 table.
    FlushStart {
        /// Entries about to be written.
        entries: u64,
    },
    /// A flush installed its L0 table.
    FlushEnd {
        /// Id of the new table file.
        file_id: u64,
        /// Size of the new table file.
        bytes: u64,
        /// Entries written.
        entries: u64,
        /// Wall time of build + install.
        micros: u64,
    },
    /// The picker scheduled a compaction. `overdue_by`/`deadline` are
    /// the FADE trigger inputs: how far past its cumulative TTL budget
    /// the driving tombstone is, and what that budget was (both zero
    /// for saturation-triggered picks or when FADE is off).
    CompactionPicked {
        /// Input level.
        level: u64,
        /// Level the merged output lands in.
        output_level: u64,
        /// Number of input files (both levels).
        input_files: u64,
        /// Total input bytes.
        input_bytes: u64,
        /// Trigger that scheduled the task.
        reason: CompactionReason,
        /// Ticks past the TTL deadline (TTL picks only).
        overdue_by: Tick,
        /// The cumulative TTL budget at the input level (TTL picks only).
        deadline: Tick,
    },
    /// A compaction installed its outputs.
    CompactionEnd {
        /// Input level.
        level: u64,
        /// Output level.
        output_level: u64,
        /// Bytes read from input tables.
        bytes_in: u64,
        /// Bytes written to output tables.
        bytes_out: u64,
        /// Entries dropped (shadowed versions + range-deleted entries).
        entries_dropped: u64,
        /// Point tombstones purged (persisted deletes).
        tombstones_purged: u64,
        /// Wall time of merge + install.
        micros: u64,
    },
    /// Writers hit the stall threshold and block.
    StallEnter {
        /// L0 file count at entry.
        l0_files: u64,
        /// Sealed memtables queued at entry.
        sealed_memtables: u64,
    },
    /// The stall condition cleared.
    StallExit {
        /// How long the writer waited.
        waited_micros: u64,
    },
    /// Writers crossed the slowdown threshold and are being paced.
    SlowdownEnter {
        /// L0 file count at entry.
        l0_files: u64,
        /// Sealed memtables queued at entry.
        sealed_memtables: u64,
    },
    /// Write pressure dropped back below the slowdown threshold.
    SlowdownExit,
    /// A recovery milestone (buffered during `Db::open`, visible once
    /// the engine is constructed).
    RecoveryStep {
        /// Which milestone.
        step: RecoveryStepKind,
        /// Step-specific detail (records replayed, segment number, …).
        detail: u64,
    },
    /// Recovery garbage-collected a dead file.
    GcDropped {
        /// What kind of file.
        kind: GcKind,
        /// Its file/segment number (0 when unnumbered, e.g. temp files).
        id: u64,
    },
    /// A WAL commit group was appended (and possibly fsynced).
    WalGroupCommit {
        /// Operations in the group.
        ops: u64,
        /// Commits coalesced into the group.
        commits: u64,
        /// Whether this append fsynced the segment.
        synced: bool,
    },
    /// Value-log GC processed one segment: surviving values were
    /// re-appended to the head and the segment reclaimed (or retired
    /// pending snapshot drain, in which case `reclaimed_bytes` is 0).
    VlogGc {
        /// The segment processed.
        segment: u64,
        /// Live frame bytes re-appended to the log head.
        rewritten_bytes: u64,
        /// Bytes freed by deleting the segment file.
        reclaimed_bytes: u64,
        /// Wall time of the pass.
        micros: u64,
    },
    /// One stage of a sampled per-op trace (see [`trace`]).
    TraceSpan {
        /// Fleet-unique trace id.
        trace_id: u64,
        /// The traced operation.
        op: TraceOp,
        /// Which stage.
        stage: TraceStage,
        /// Stage value: wall micros for `_micros` stages, else a count.
        value: u64,
    },
    /// A tombstone cohort advanced a delete-lifecycle stage (see
    /// [`trace::DeleteLedger`]).
    CohortAdvanced {
        /// The cohort's flush epoch (shard-local).
        epoch: u64,
        /// Which lifecycle stage.
        stage: CohortStage,
        /// Output level for `entered_level` advances, else 0.
        level: u64,
        /// Member deletes in the cohort.
        tombstones: u64,
        /// Clock tick of the advance.
        tick: Tick,
    },
}

/// Ring-slot payload width: one tag word plus up to seven fields.
const WORDS: usize = 8;

impl Event {
    /// Lowercase event-kind name for text exposition.
    pub fn name(&self) -> &'static str {
        match self {
            Event::MemtableSealed { .. } => "memtable_sealed",
            Event::FlushStart { .. } => "flush_start",
            Event::FlushEnd { .. } => "flush_end",
            Event::CompactionPicked { .. } => "compaction_picked",
            Event::CompactionEnd { .. } => "compaction_end",
            Event::StallEnter { .. } => "stall_enter",
            Event::StallExit { .. } => "stall_exit",
            Event::SlowdownEnter { .. } => "slowdown_enter",
            Event::SlowdownExit => "slowdown_exit",
            Event::RecoveryStep { .. } => "recovery_step",
            Event::GcDropped { .. } => "gc_dropped",
            Event::WalGroupCommit { .. } => "wal_group_commit",
            Event::VlogGc { .. } => "vlog_gc",
            Event::TraceSpan { .. } => "trace_span",
            Event::CohortAdvanced { .. } => "cohort_advanced",
        }
    }

    /// The event's fields as `key=value` text (allocates; exposition
    /// path only, never the hot path).
    pub fn describe(&self) -> String {
        match *self {
            Event::MemtableSealed {
                entries,
                bytes,
                sealed_behind,
            } => format!("entries={entries} bytes={bytes} sealed_behind={sealed_behind}"),
            Event::FlushStart { entries } => format!("entries={entries}"),
            Event::FlushEnd {
                file_id,
                bytes,
                entries,
                micros,
            } => format!("file={file_id} bytes={bytes} entries={entries} micros={micros}"),
            Event::CompactionPicked {
                level,
                output_level,
                input_files,
                input_bytes,
                reason,
                overdue_by,
                deadline,
            } => format!(
                "level={level} output_level={output_level} input_files={input_files} \
                 input_bytes={input_bytes} reason={} overdue_by={overdue_by} deadline={deadline}",
                reason.name()
            ),
            Event::CompactionEnd {
                level,
                output_level,
                bytes_in,
                bytes_out,
                entries_dropped,
                tombstones_purged,
                micros,
            } => format!(
                "level={level} output_level={output_level} bytes_in={bytes_in} \
                 bytes_out={bytes_out} entries_dropped={entries_dropped} \
                 tombstones_purged={tombstones_purged} micros={micros}"
            ),
            Event::StallEnter {
                l0_files,
                sealed_memtables,
            } => format!("l0_files={l0_files} sealed_memtables={sealed_memtables}"),
            Event::StallExit { waited_micros } => format!("waited_micros={waited_micros}"),
            Event::SlowdownEnter {
                l0_files,
                sealed_memtables,
            } => format!("l0_files={l0_files} sealed_memtables={sealed_memtables}"),
            Event::SlowdownExit => String::new(),
            Event::RecoveryStep { step, detail } => {
                format!("step={} detail={detail}", step.name())
            }
            Event::GcDropped { kind, id } => format!("kind={} id={id}", kind.name()),
            Event::WalGroupCommit {
                ops,
                commits,
                synced,
            } => format!("ops={ops} commits={commits} synced={}", u64::from(synced)),
            Event::VlogGc {
                segment,
                rewritten_bytes,
                reclaimed_bytes,
                micros,
            } => format!(
                "segment={segment} rewritten_bytes={rewritten_bytes} \
                 reclaimed_bytes={reclaimed_bytes} micros={micros}"
            ),
            Event::TraceSpan {
                trace_id,
                op,
                stage,
                value,
            } => format!(
                "trace={trace_id} op={} stage={} value={value}",
                op.name(),
                stage.name()
            ),
            Event::CohortAdvanced {
                epoch,
                stage,
                level,
                tombstones,
                tick,
            } => format!(
                "epoch={epoch} stage={} level={level} tombstones={tombstones} tick={tick}",
                stage.name()
            ),
        }
    }

    fn encode(&self) -> [u64; WORDS] {
        let mut w = [0u64; WORDS];
        match *self {
            Event::MemtableSealed {
                entries,
                bytes,
                sealed_behind,
            } => {
                w[0] = 0;
                w[1] = entries;
                w[2] = bytes;
                w[3] = sealed_behind;
            }
            Event::FlushStart { entries } => {
                w[0] = 1;
                w[1] = entries;
            }
            Event::FlushEnd {
                file_id,
                bytes,
                entries,
                micros,
            } => {
                w[0] = 2;
                w[1] = file_id;
                w[2] = bytes;
                w[3] = entries;
                w[4] = micros;
            }
            Event::CompactionPicked {
                level,
                output_level,
                input_files,
                input_bytes,
                reason,
                overdue_by,
                deadline,
            } => {
                w[0] = 3;
                w[1] = level;
                w[2] = output_level;
                w[3] = input_files;
                w[4] = input_bytes;
                w[5] = reason.code();
                w[6] = overdue_by;
                w[7] = deadline;
            }
            Event::CompactionEnd {
                level,
                output_level,
                bytes_in,
                bytes_out,
                entries_dropped,
                tombstones_purged,
                micros,
            } => {
                w[0] = 4;
                w[1] = level;
                w[2] = output_level;
                w[3] = bytes_in;
                w[4] = bytes_out;
                w[5] = entries_dropped;
                w[6] = tombstones_purged;
                w[7] = micros;
            }
            Event::StallEnter {
                l0_files,
                sealed_memtables,
            } => {
                w[0] = 5;
                w[1] = l0_files;
                w[2] = sealed_memtables;
            }
            Event::StallExit { waited_micros } => {
                w[0] = 6;
                w[1] = waited_micros;
            }
            Event::SlowdownEnter {
                l0_files,
                sealed_memtables,
            } => {
                w[0] = 7;
                w[1] = l0_files;
                w[2] = sealed_memtables;
            }
            Event::SlowdownExit => w[0] = 8,
            Event::RecoveryStep { step, detail } => {
                w[0] = 9;
                w[1] = step.code();
                w[2] = detail;
            }
            Event::GcDropped { kind, id } => {
                w[0] = 10;
                w[1] = kind.code();
                w[2] = id;
            }
            Event::WalGroupCommit {
                ops,
                commits,
                synced,
            } => {
                w[0] = 11;
                w[1] = ops;
                w[2] = commits;
                w[3] = u64::from(synced);
            }
            Event::VlogGc {
                segment,
                rewritten_bytes,
                reclaimed_bytes,
                micros,
            } => {
                w[0] = 12;
                w[1] = segment;
                w[2] = rewritten_bytes;
                w[3] = reclaimed_bytes;
                w[4] = micros;
            }
            Event::TraceSpan {
                trace_id,
                op,
                stage,
                value,
            } => {
                w[0] = 13;
                w[1] = trace_id;
                w[2] = op.code();
                w[3] = stage.code();
                w[4] = value;
            }
            Event::CohortAdvanced {
                epoch,
                stage,
                level,
                tombstones,
                tick,
            } => {
                w[0] = 14;
                w[1] = epoch;
                w[2] = stage.code();
                w[3] = level;
                w[4] = tombstones;
                w[5] = tick;
            }
        }
        w
    }

    fn decode(w: &[u64; WORDS]) -> Option<Event> {
        Some(match w[0] {
            0 => Event::MemtableSealed {
                entries: w[1],
                bytes: w[2],
                sealed_behind: w[3],
            },
            1 => Event::FlushStart { entries: w[1] },
            2 => Event::FlushEnd {
                file_id: w[1],
                bytes: w[2],
                entries: w[3],
                micros: w[4],
            },
            3 => Event::CompactionPicked {
                level: w[1],
                output_level: w[2],
                input_files: w[3],
                input_bytes: w[4],
                reason: CompactionReason::from_code(w[5])?,
                overdue_by: w[6],
                deadline: w[7],
            },
            4 => Event::CompactionEnd {
                level: w[1],
                output_level: w[2],
                bytes_in: w[3],
                bytes_out: w[4],
                entries_dropped: w[5],
                tombstones_purged: w[6],
                micros: w[7],
            },
            5 => Event::StallEnter {
                l0_files: w[1],
                sealed_memtables: w[2],
            },
            6 => Event::StallExit {
                waited_micros: w[1],
            },
            7 => Event::SlowdownEnter {
                l0_files: w[1],
                sealed_memtables: w[2],
            },
            8 => Event::SlowdownExit,
            9 => Event::RecoveryStep {
                step: RecoveryStepKind::from_code(w[1])?,
                detail: w[2],
            },
            10 => Event::GcDropped {
                kind: GcKind::from_code(w[1])?,
                id: w[2],
            },
            11 => Event::WalGroupCommit {
                ops: w[1],
                commits: w[2],
                synced: w[3] != 0,
            },
            12 => Event::VlogGc {
                segment: w[1],
                rewritten_bytes: w[2],
                reclaimed_bytes: w[3],
                micros: w[4],
            },
            13 => Event::TraceSpan {
                trace_id: w[1],
                op: TraceOp::from_code(w[2])?,
                stage: TraceStage::from_code(w[3])?,
                value: w[4],
            },
            14 => Event::CohortAdvanced {
                epoch: w[1],
                stage: CohortStage::from_code(w[2])?,
                level: w[3],
                tombstones: w[4],
                tick: w[5],
            },
            _ => return None,
        })
    }
}

/// An event plus the ring seqno it was logged under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedEvent {
    /// Position in the global emission order (0-based, dense).
    pub seqno: u64,
    /// The event payload.
    pub event: Event,
}

impl std::fmt::Display for StampedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let args = self.event.describe();
        if args.is_empty() {
            write!(f, "#{:<6} {}", self.seqno, self.event.name())
        } else {
            write!(f, "#{:<6} {:<18} {}", self.seqno, self.event.name(), args)
        }
    }
}

/// A consistent view of the ring at one instant.
#[derive(Debug, Clone, Default)]
pub struct EventSnapshot {
    /// Retained events, ascending by seqno.
    pub events: Vec<StampedEvent>,
    /// Total events ever emitted (equals the next seqno).
    pub emitted: u64,
    /// Events emitted but no longer retrievable: overwritten by newer
    /// events, or mid-overwrite while this snapshot was taken.
    pub dropped: u64,
}

/// One ring slot: a seqlock (`begin`/`end` stamps hold `seqno + 1`)
/// around an atomic word payload.
struct Slot {
    begin: AtomicU64,
    end: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            begin: AtomicU64::new(0),
            end: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// Lock-free fixed-capacity event ring. See the module docs for the
/// consistency argument.
pub struct EventLog {
    slots: Vec<Slot>,
    next: AtomicU64,
}

impl EventLog {
    /// A ring retaining the newest `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventLog {
        let capacity = capacity.max(1);
        EventLog {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted.
    pub fn emitted(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Record one event; returns its seqno. Wait-free except for the
    /// single `fetch_add`: no lock, no allocation, one slot write.
    pub fn log(&self, event: Event) -> u64 {
        let seqno = self.next.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seqno % self.slots.len() as u64) as usize];
        // Seqlock write: stamp `begin` first so a concurrent reader
        // can tell the payload is in flux, then the payload, then
        // `end` (release) to publish.
        slot.begin.store(seqno + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(event.encode()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.end.store(seqno + 1, Ordering::Release);
        seqno
    }

    /// Snapshot the retained window without blocking writers. Slots
    /// being overwritten during the drain are skipped and counted in
    /// [`EventSnapshot::dropped`].
    pub fn snapshot(&self) -> EventSnapshot {
        let head = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - first) as usize);
        for seqno in first..head {
            let slot = &self.slots[(seqno % cap) as usize];
            // Seqlock read: `end` (acquire), payload, fence, `begin`;
            // accept only when both stamps match this seqno.
            let end = slot.end.load(Ordering::Acquire);
            if end != seqno + 1 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.begin.load(Ordering::Relaxed) != seqno + 1 {
                continue;
            }
            if let Some(event) = Event::decode(&words) {
                events.push(StampedEvent { seqno, event });
            }
        }
        let dropped = head - events.len() as u64;
        EventSnapshot {
            events,
            emitted: head,
            dropped,
        }
    }
}

/// Per-level occupancy and tombstone-population gauge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelGauge {
    /// LSM level.
    pub level: usize,
    /// Live files at the level.
    pub files: u64,
    /// Total bytes at the level.
    pub bytes: u64,
    /// Total entries at the level.
    pub entries: u64,
    /// Live point tombstones at the level.
    pub tombstones: u64,
    /// Birth tick of the oldest still-live tombstone at the level.
    pub oldest_tombstone_tick: Option<Tick>,
    /// Live sort-key range tombstones carried by files at the level.
    pub key_range_tombstones: u64,
    /// Birth tick of the oldest still-live sort-key range tombstone.
    pub oldest_key_range_tick: Option<Tick>,
}

/// Live delete-persistence gauges: the paper's headline metric made
/// observable *before* purge. Disk-level state is recomputed from
/// per-sstable metadata whenever a version installs; the write-buffer
/// fields are filled from live memtable stats when the gauge is read
/// (buffer contents change without a version install).
#[derive(Debug, Clone, Default)]
pub struct TombstoneGauges {
    /// One gauge per occupied level (empty levels omitted).
    pub levels: Vec<LevelGauge>,
    /// Live point tombstones in the active + sealed memtables.
    pub buffer_tombstones: u64,
    /// Birth tick of the oldest buffered tombstone.
    pub buffer_oldest_tick: Option<Tick>,
    /// Live sort-key range tombstones in the active + sealed memtables.
    pub buffer_key_range_tombstones: u64,
    /// Birth tick of the oldest buffered sort-key range tombstone.
    pub buffer_oldest_key_range_tick: Option<Tick>,
    /// Live secondary range tombstones.
    pub range_tombstones: u64,
    /// Per-file `(tombstone_count, oldest tick)` pairs feeding the age
    /// histogram — every tombstone in a file is binned at the file's
    /// *oldest* tombstone age (per-sstable metadata has no finer
    /// resolution), a conservative over-estimate of ages.
    pub file_populations: Vec<(u64, Tick)>,
    /// Value-log bytes still referenced by the tree. Filled from the
    /// vlog accounting when the gauge is read (the vlog changes without
    /// a version install).
    pub vlog_live_bytes: u64,
    /// Value-log bytes whose covering put/delete has been purged and
    /// that now await GC.
    pub vlog_dead_bytes: u64,
    /// Stamp tick of the oldest dead value-log extent — the vlog
    /// counterpart of the oldest live tombstone: its age bounds how far
    /// deleted value bytes have outlived their delete.
    pub vlog_oldest_dead_tick: Option<Tick>,
}

impl TombstoneGauges {
    /// Aggregate the disk-level gauges from a version's file metadata.
    /// `O(files)`; called at version-install time.
    pub fn from_version(version: &Version) -> TombstoneGauges {
        let mut levels = Vec::new();
        let mut file_populations = Vec::new();
        for (level, files) in version.levels.iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            let mut g = LevelGauge {
                level,
                ..LevelGauge::default()
            };
            for f in files {
                g.files += 1;
                g.bytes += f.size_bytes;
                g.entries += f.stats.entry_count;
                g.tombstones += f.stats.tombstone_count;
                if let Some(t0) = f.stats.oldest_tombstone_tick {
                    g.oldest_tombstone_tick =
                        Some(g.oldest_tombstone_tick.map_or(t0, |cur| cur.min(t0)));
                    if f.stats.tombstone_count > 0 {
                        file_populations.push((f.stats.tombstone_count, t0));
                    }
                }
                let krts = f.stats.range_tombstones.len() as u64;
                if krts > 0 {
                    g.key_range_tombstones += krts;
                    if let Some(t0) = f.stats.oldest_range_tombstone_tick() {
                        g.oldest_key_range_tick =
                            Some(g.oldest_key_range_tick.map_or(t0, |cur| cur.min(t0)));
                        file_populations.push((krts, t0));
                    }
                }
            }
            levels.push(g);
        }
        TombstoneGauges {
            levels,
            range_tombstones: version.range_tombstones.len() as u64,
            file_populations,
            ..TombstoneGauges::default()
        }
    }

    /// Total live point tombstones (disk + buffer).
    pub fn live_tombstones(&self) -> u64 {
        self.levels.iter().map(|g| g.tombstones).sum::<u64>() + self.buffer_tombstones
    }

    /// Total live sort-key range tombstones (disk + buffer).
    pub fn live_key_range_tombstones(&self) -> u64 {
        self.levels
            .iter()
            .map(|g| g.key_range_tombstones)
            .sum::<u64>()
            + self.buffer_key_range_tombstones
    }

    /// Birth tick of the oldest live tombstone anywhere — point or
    /// sort-key range, disk or buffer. FADE bounds both flavors by the
    /// same `D_th`, so "oldest unresolved delete" folds them together.
    pub fn oldest_live_tick(&self) -> Option<Tick> {
        self.levels
            .iter()
            .flat_map(|g| [g.oldest_tombstone_tick, g.oldest_key_range_tick])
            .flatten()
            .chain(self.buffer_oldest_tick)
            .chain(self.buffer_oldest_key_range_tick)
            .min()
    }

    /// Birth tick of the oldest live sort-key range tombstone anywhere.
    pub fn oldest_live_key_range_tick(&self) -> Option<Tick> {
        self.levels
            .iter()
            .filter_map(|g| g.oldest_key_range_tick)
            .chain(self.buffer_oldest_key_range_tick)
            .min()
    }

    /// Combine the gauges of two engines (shards) into a fleet-wide
    /// view: per-level counts sum, oldest ticks take the minimum (the
    /// fleet's oldest tombstone is the oldest anywhere), and the
    /// per-file populations concatenate so the merged age histogram
    /// covers every shard's files.
    pub fn merge(&self, other: &TombstoneGauges) -> TombstoneGauges {
        let mut by_level: std::collections::BTreeMap<usize, LevelGauge> =
            std::collections::BTreeMap::new();
        for g in self.levels.iter().chain(&other.levels) {
            let m = by_level.entry(g.level).or_insert_with(|| LevelGauge {
                level: g.level,
                ..LevelGauge::default()
            });
            m.files += g.files;
            m.bytes += g.bytes;
            m.entries += g.entries;
            m.tombstones += g.tombstones;
            m.oldest_tombstone_tick = match (m.oldest_tombstone_tick, g.oldest_tombstone_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            m.key_range_tombstones += g.key_range_tombstones;
            m.oldest_key_range_tick = match (m.oldest_key_range_tick, g.oldest_key_range_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let mut file_populations = self.file_populations.clone();
        file_populations.extend_from_slice(&other.file_populations);
        TombstoneGauges {
            levels: by_level.into_values().collect(),
            buffer_tombstones: self.buffer_tombstones + other.buffer_tombstones,
            buffer_oldest_tick: match (self.buffer_oldest_tick, other.buffer_oldest_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            buffer_key_range_tombstones: self.buffer_key_range_tombstones
                + other.buffer_key_range_tombstones,
            buffer_oldest_key_range_tick: match (
                self.buffer_oldest_key_range_tick,
                other.buffer_oldest_key_range_tick,
            ) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            range_tombstones: self.range_tombstones + other.range_tombstones,
            file_populations,
            vlog_live_bytes: self.vlog_live_bytes + other.vlog_live_bytes,
            vlog_dead_bytes: self.vlog_dead_bytes + other.vlog_dead_bytes,
            vlog_oldest_dead_tick: match (self.vlog_oldest_dead_tick, other.vlog_oldest_dead_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Histogram of still-live tombstone ages at `now`. With a FADE
    /// threshold the bucket bounds are fractions of `d_th` (so the
    /// overflow bucket *is* the threshold-violation population);
    /// without one they are powers of two.
    pub fn age_histogram(&self, now: Tick, d_th: Option<Tick>) -> AgeHistogram {
        let populations = self
            .file_populations
            .iter()
            .copied()
            .chain(
                self.buffer_oldest_tick
                    .map(|t0| (self.buffer_tombstones, t0)),
            )
            .chain(
                self.buffer_oldest_key_range_tick
                    .map(|t0| (self.buffer_key_range_tombstones, t0)),
            )
            .filter(|(count, _)| *count > 0);
        let mut ages: Vec<(u64, Tick)> = populations
            .map(|(count, t0)| (count, now.saturating_sub(t0)))
            .collect();
        ages.sort_by_key(|&(_, age)| age);
        let oldest_age = ages.last().map(|&(_, age)| age);
        let bounds: Vec<Tick> = match d_th {
            Some(d) if d > 0 => vec![d / 8, d / 4, d / 2, d * 3 / 4, d],
            _ => {
                let max_age = oldest_age.unwrap_or(0);
                let mut b = Vec::new();
                let mut bound: Tick = 1;
                while bound < max_age && b.len() < 16 {
                    b.push(bound);
                    bound = bound.saturating_mul(4);
                }
                b.push(bound.max(max_age));
                b
            }
        };
        // Cumulative (Prometheus `le`) counts.
        let total: u64 = ages.iter().map(|&(c, _)| c).sum();
        let counts: Vec<u64> = bounds
            .iter()
            .map(|&le| {
                ages.iter()
                    .filter(|&&(_, age)| age <= le)
                    .map(|&(c, _)| c)
                    .sum()
            })
            .collect();
        AgeHistogram {
            bounds,
            counts,
            total,
            oldest_age,
            d_th,
        }
    }
}

/// Cumulative histogram of live tombstone ages (Prometheus bucket
/// semantics: `counts[i]` = tombstones with age `<= bounds[i]`; the
/// implicit `+Inf` bucket is `total`).
#[derive(Debug, Clone, Default)]
pub struct AgeHistogram {
    /// Upper bucket bounds, ascending, in ticks.
    pub bounds: Vec<Tick>,
    /// Cumulative count at each bound.
    pub counts: Vec<u64>,
    /// Total live tombstones observed.
    pub total: u64,
    /// Age of the oldest live tombstone, if any.
    pub oldest_age: Option<Tick>,
    /// The FADE threshold the bounds were derived from, if any.
    pub d_th: Option<Tick>,
}

/// Render counters plus the delete-persistence gauges as Prometheus
/// text exposition (`name{label} value` lines). `pairs` is any flat
/// counter list (`StatsSnapshot::to_pairs`, server metrics, pressure
/// gauges); the tombstone gauges and age histogram are rendered with
/// per-level / per-bucket labels. Every metric family gets a `# TYPE`
/// line before its first sample; flat counters are exposed as gauges
/// because a scrape reports their point-in-time value.
pub fn render_prometheus(
    pairs: &[(String, u64)],
    gauges: &TombstoneGauges,
    now: Tick,
    d_th: Option<Tick>,
) -> String {
    let mut out = String::new();
    let mut typed = std::collections::BTreeSet::new();
    // Stamp the family's `# TYPE` line before its first sample.
    fn emit(
        out: &mut String,
        typed: &mut std::collections::BTreeSet<String>,
        family: &str,
        kind: &str,
        line: String,
    ) {
        if typed.insert(family.to_string()) {
            out.push_str(&format!("# TYPE {family} {kind}\n"));
        }
        out.push_str(&line);
    }
    for (name, value) in pairs {
        emit(
            &mut out,
            &mut typed,
            name,
            "gauge",
            format!("{name} {value}\n"),
        );
    }
    emit(
        &mut out,
        &mut typed,
        "db_clock_tick",
        "gauge",
        format!("db_clock_tick {now}\n"),
    );
    if let Some(d) = d_th {
        emit(
            &mut out,
            &mut typed,
            "db_delete_persistence_threshold_ticks",
            "gauge",
            format!("db_delete_persistence_threshold_ticks {d}\n"),
        );
    }
    for g in &gauges.levels {
        let l = g.level;
        emit(
            &mut out,
            &mut typed,
            "db_level_files",
            "gauge",
            format!("db_level_files{{level=\"{l}\"}} {}\n", g.files),
        );
        emit(
            &mut out,
            &mut typed,
            "db_level_bytes",
            "gauge",
            format!("db_level_bytes{{level=\"{l}\"}} {}\n", g.bytes),
        );
        emit(
            &mut out,
            &mut typed,
            "db_level_entries",
            "gauge",
            format!("db_level_entries{{level=\"{l}\"}} {}\n", g.entries),
        );
        emit(
            &mut out,
            &mut typed,
            "db_level_tombstones",
            "gauge",
            format!("db_level_tombstones{{level=\"{l}\"}} {}\n", g.tombstones),
        );
        if let Some(t0) = g.oldest_tombstone_tick {
            emit(
                &mut out,
                &mut typed,
                "db_level_oldest_tombstone_age_ticks",
                "gauge",
                format!(
                    "db_level_oldest_tombstone_age_ticks{{level=\"{l}\"}} {}\n",
                    now.saturating_sub(t0)
                ),
            );
        }
        if g.key_range_tombstones > 0 {
            emit(
                &mut out,
                &mut typed,
                "db_level_key_range_tombstones",
                "gauge",
                format!(
                    "db_level_key_range_tombstones{{level=\"{l}\"}} {}\n",
                    g.key_range_tombstones
                ),
            );
        }
        if let Some(t0) = g.oldest_key_range_tick {
            emit(
                &mut out,
                &mut typed,
                "db_level_oldest_key_range_tombstone_age_ticks",
                "gauge",
                format!(
                    "db_level_oldest_key_range_tombstone_age_ticks{{level=\"{l}\"}} {}\n",
                    now.saturating_sub(t0)
                ),
            );
        }
    }
    emit(
        &mut out,
        &mut typed,
        "db_buffer_tombstones",
        "gauge",
        format!("db_buffer_tombstones {}\n", gauges.buffer_tombstones),
    );
    emit(
        &mut out,
        &mut typed,
        "db_live_range_tombstones",
        "gauge",
        format!("db_live_range_tombstones {}\n", gauges.range_tombstones),
    );
    emit(
        &mut out,
        &mut typed,
        "db_buffer_key_range_tombstones",
        "gauge",
        format!(
            "db_buffer_key_range_tombstones {}\n",
            gauges.buffer_key_range_tombstones
        ),
    );
    emit(
        &mut out,
        &mut typed,
        "db_live_key_range_tombstones",
        "gauge",
        format!(
            "db_live_key_range_tombstones {}\n",
            gauges.live_key_range_tombstones()
        ),
    );
    if let Some(t0) = gauges.oldest_live_key_range_tick() {
        emit(
            &mut out,
            &mut typed,
            "db_key_range_tombstone_oldest_age_ticks",
            "gauge",
            format!(
                "db_key_range_tombstone_oldest_age_ticks {}\n",
                now.saturating_sub(t0)
            ),
        );
    }
    emit(
        &mut out,
        &mut typed,
        "db_live_tombstones",
        "gauge",
        format!("db_live_tombstones {}\n", gauges.live_tombstones()),
    );
    emit(
        &mut out,
        &mut typed,
        "db_vlog_live_bytes",
        "gauge",
        format!("db_vlog_live_bytes {}\n", gauges.vlog_live_bytes),
    );
    emit(
        &mut out,
        &mut typed,
        "db_vlog_dead_bytes",
        "gauge",
        format!("db_vlog_dead_bytes {}\n", gauges.vlog_dead_bytes),
    );
    if let Some(t0) = gauges.vlog_oldest_dead_tick {
        emit(
            &mut out,
            &mut typed,
            "db_vlog_oldest_dead_extent_age_ticks",
            "gauge",
            format!(
                "db_vlog_oldest_dead_extent_age_ticks {}\n",
                now.saturating_sub(t0)
            ),
        );
    }
    let hist = gauges.age_histogram(now, d_th);
    for (le, count) in hist.bounds.iter().zip(&hist.counts) {
        emit(
            &mut out,
            &mut typed,
            "db_tombstone_age_ticks",
            "histogram",
            format!("db_tombstone_age_ticks_bucket{{le=\"{le}\"}} {count}\n"),
        );
    }
    emit(
        &mut out,
        &mut typed,
        "db_tombstone_age_ticks",
        "histogram",
        format!(
            "db_tombstone_age_ticks_bucket{{le=\"+Inf\"}} {}\n",
            hist.total
        ),
    );
    out.push_str(&format!("db_tombstone_age_ticks_count {}\n", hist.total));
    if let Some(age) = hist.oldest_age {
        emit(
            &mut out,
            &mut typed,
            "db_tombstone_age_ticks_max",
            "gauge",
            format!("db_tombstone_age_ticks_max {age}\n"),
        );
    }
    out
}

/// Render an event snapshot as one line per event, oldest first, with
/// a drop summary header.
pub fn render_events(snap: &EventSnapshot) -> String {
    let mut out = format!(
        "# {} events emitted, {} retained, {} dropped (ring overwrote oldest)\n",
        snap.emitted,
        snap.events.len(),
        snap.dropped
    );
    for ev in &snap.events {
        out.push_str(&format!("{ev}\n"));
    }
    out
}

/// Render per-shard event snapshots side by side (each shard's ring is
/// independent — seqnos are shard-local, so the shards are sectioned,
/// not interleaved).
pub fn render_sharded_events(shards: &[EventSnapshot]) -> String {
    let mut out = String::new();
    for (i, snap) in shards.iter().enumerate() {
        out.push_str(&format!("== shard {i} ==\n"));
        out.push_str(&render_events(snap));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::MemtableSealed {
                entries: 1,
                bytes: 2,
                sealed_behind: 3,
            },
            Event::FlushStart { entries: 9 },
            Event::FlushEnd {
                file_id: 7,
                bytes: 4096,
                entries: 10,
                micros: 55,
            },
            Event::CompactionPicked {
                level: 1,
                output_level: 2,
                input_files: 3,
                input_bytes: 999,
                reason: CompactionReason::TtlExpired,
                overdue_by: 17,
                deadline: 1200,
            },
            Event::CompactionEnd {
                level: 1,
                output_level: 2,
                bytes_in: 100,
                bytes_out: 80,
                entries_dropped: 5,
                tombstones_purged: 2,
                micros: 77,
            },
            Event::StallEnter {
                l0_files: 9,
                sealed_memtables: 2,
            },
            Event::StallExit { waited_micros: 300 },
            Event::SlowdownEnter {
                l0_files: 7,
                sealed_memtables: 1,
            },
            Event::SlowdownExit,
            Event::RecoveryStep {
                step: RecoveryStepKind::WalSegmentReplayed,
                detail: 42,
            },
            Event::GcDropped {
                kind: GcKind::OrphanTable,
                id: 13,
            },
            Event::WalGroupCommit {
                ops: 8,
                commits: 3,
                synced: true,
            },
            Event::VlogGc {
                segment: 6,
                rewritten_bytes: 2048,
                reclaimed_bytes: 8192,
                micros: 91,
            },
            Event::TraceSpan {
                trace_id: 17,
                op: TraceOp::Get,
                stage: TraceStage::BloomPrescreenSkips,
                value: 3,
            },
            Event::CohortAdvanced {
                epoch: 5,
                stage: CohortStage::EnteredLevel,
                level: 2,
                tombstones: 40,
                tick: 1234,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_variant() {
        for ev in all_events() {
            assert_eq!(Event::decode(&ev.encode()), Some(ev), "{}", ev.name());
        }
    }

    #[test]
    fn log_and_snapshot_preserve_order_and_payload() {
        let log = EventLog::new(64);
        for ev in all_events() {
            log.log(ev);
        }
        let snap = log.snapshot();
        assert_eq!(snap.emitted, all_events().len() as u64);
        assert_eq!(snap.dropped, 0);
        let got: Vec<Event> = snap.events.iter().map(|s| s.event).collect();
        assert_eq!(got, all_events());
        for (i, s) in snap.events.iter().enumerate() {
            assert_eq!(s.seqno, i as u64);
        }
    }

    #[test]
    fn overwrite_keeps_newest_and_counts_dropped() {
        let log = EventLog::new(4);
        for i in 0..10u64 {
            log.log(Event::FlushStart { entries: i });
        }
        let snap = log.snapshot();
        assert_eq!(snap.emitted, 10);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        let entries: Vec<u64> = snap
            .events
            .iter()
            .map(|s| match s.event {
                Event::FlushStart { entries } => entries,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(entries, vec![6, 7, 8, 9], "newest N survive");
    }

    #[test]
    fn one_slot_ring_still_functions() {
        let log = EventLog::new(1);
        for i in 0..5u64 {
            log.log(Event::FlushStart { entries: i });
        }
        let snap = log.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.dropped, 4);
        assert_eq!(snap.events[0].seqno, 4);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        use std::sync::Arc;
        let log = Arc::new(EventLog::new(128));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // Payload fields carry a per-writer signature so a
                    // torn slot (fields from two writers) is detectable.
                    log.log(Event::CompactionEnd {
                        level: t,
                        output_level: t,
                        bytes_in: t * 1_000_000 + i,
                        bytes_out: t * 1_000_000 + i,
                        entries_dropped: t,
                        tombstones_purged: t,
                        micros: i,
                    });
                }
            }));
        }
        for _ in 0..50 {
            for s in log.snapshot().events {
                if let Event::CompactionEnd {
                    level,
                    output_level,
                    bytes_in,
                    bytes_out,
                    entries_dropped,
                    tombstones_purged,
                    micros,
                } = s.event
                {
                    assert_eq!(level, output_level);
                    assert_eq!(level, entries_dropped);
                    assert_eq!(level, tombstones_purged);
                    assert_eq!(bytes_in, bytes_out);
                    assert_eq!(bytes_in, level * 1_000_000 + micros);
                } else {
                    panic!("unexpected event {:?}", s.event);
                }
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = log.snapshot();
        assert_eq!(snap.emitted, 20_000);
        // After quiescence the full window is readable.
        assert_eq!(snap.events.len(), 128);
    }

    #[test]
    fn age_histogram_buckets_against_threshold() {
        let g = TombstoneGauges {
            // (count, birth tick): ages at now=1000 are 900, 400, 100.
            file_populations: vec![(2, 100), (3, 600), (5, 900)],
            ..TombstoneGauges::default()
        };
        let h = g.age_histogram(1_000, Some(800));
        assert_eq!(h.bounds, vec![100, 200, 400, 600, 800]);
        assert_eq!(h.total, 10);
        assert_eq!(h.oldest_age, Some(900));
        // Cumulative: age<=100 → 5; <=400 → 8; <=800 → 8; overflow 2.
        assert_eq!(h.counts, vec![5, 5, 8, 8, 8]);
        assert_eq!(h.total - h.counts[4], 2, "threshold violators overflow");
    }

    #[test]
    fn gauge_merge_sums_counts_and_keeps_oldest_ticks() {
        let a = TombstoneGauges {
            levels: vec![
                LevelGauge {
                    level: 0,
                    files: 1,
                    bytes: 100,
                    entries: 10,
                    tombstones: 2,
                    oldest_tombstone_tick: Some(40),
                    key_range_tombstones: 1,
                    oldest_key_range_tick: Some(30),
                },
                LevelGauge {
                    level: 2,
                    files: 2,
                    bytes: 200,
                    entries: 20,
                    tombstones: 3,
                    oldest_tombstone_tick: None,
                    key_range_tombstones: 0,
                    oldest_key_range_tick: None,
                },
            ],
            buffer_tombstones: 1,
            buffer_oldest_tick: Some(95),
            buffer_key_range_tombstones: 2,
            buffer_oldest_key_range_tick: Some(60),
            range_tombstones: 1,
            file_populations: vec![(2, 40)],
            vlog_live_bytes: 100,
            vlog_dead_bytes: 20,
            vlog_oldest_dead_tick: Some(33),
        };
        let b = TombstoneGauges {
            levels: vec![LevelGauge {
                level: 0,
                files: 1,
                bytes: 50,
                entries: 5,
                tombstones: 4,
                oldest_tombstone_tick: Some(10),
                key_range_tombstones: 3,
                oldest_key_range_tick: Some(5),
            }],
            buffer_tombstones: 2,
            buffer_oldest_tick: None,
            buffer_key_range_tombstones: 0,
            buffer_oldest_key_range_tick: None,
            range_tombstones: 3,
            file_populations: vec![(4, 10)],
            vlog_live_bytes: 50,
            vlog_dead_bytes: 5,
            vlog_oldest_dead_tick: Some(12),
        };
        let m = a.merge(&b);
        assert_eq!(m.levels.len(), 2);
        let l0 = &m.levels[0];
        assert_eq!(
            (l0.level, l0.files, l0.bytes, l0.tombstones),
            (0, 2, 150, 6)
        );
        assert_eq!(l0.oldest_tombstone_tick, Some(10), "min of the shards");
        assert_eq!(l0.key_range_tombstones, 4);
        assert_eq!(l0.oldest_key_range_tick, Some(5));
        assert_eq!(m.levels[1].level, 2);
        assert_eq!(m.buffer_tombstones, 3);
        assert_eq!(m.buffer_oldest_tick, Some(95));
        assert_eq!(m.buffer_key_range_tombstones, 2);
        assert_eq!(m.buffer_oldest_key_range_tick, Some(60));
        assert_eq!(m.range_tombstones, 4);
        assert_eq!(
            m.live_key_range_tombstones(),
            a.live_key_range_tombstones() + b.live_key_range_tombstones()
        );
        assert_eq!(m.oldest_live_key_range_tick(), Some(5));
        assert_eq!(
            m.live_tombstones(),
            a.live_tombstones() + b.live_tombstones()
        );
        assert_eq!(m.oldest_live_tick(), Some(5), "range tick is oldest");
        assert_eq!(m.vlog_live_bytes, 150);
        assert_eq!(m.vlog_dead_bytes, 25);
        assert_eq!(m.vlog_oldest_dead_tick, Some(12), "min of the shards");
        // The merged age histogram sees every shard's files plus both
        // buffered populations (point and sort-key range).
        assert_eq!(m.age_histogram(100, None).total, 11);
    }

    #[test]
    fn sharded_event_rendering_sections_per_shard() {
        let log = EventLog::new(8);
        log.log(Event::FlushStart { entries: 3 });
        let text = render_sharded_events(&[log.snapshot(), EventSnapshot::default()]);
        assert!(text.contains("== shard 0 =="), "{text}");
        assert!(text.contains("== shard 1 =="), "{text}");
        assert!(text.contains("flush_start"), "{text}");
    }

    #[test]
    fn prometheus_rendering_includes_gauges_and_histogram() {
        let g = TombstoneGauges {
            levels: vec![LevelGauge {
                level: 2,
                files: 3,
                bytes: 4096,
                entries: 100,
                tombstones: 7,
                oldest_tombstone_tick: Some(50),
                key_range_tombstones: 2,
                oldest_key_range_tick: Some(40),
            }],
            buffer_tombstones: 1,
            buffer_oldest_tick: Some(90),
            buffer_key_range_tombstones: 1,
            buffer_oldest_key_range_tick: Some(70),
            range_tombstones: 2,
            file_populations: vec![(7, 50)],
            vlog_live_bytes: 1234,
            vlog_dead_bytes: 56,
            vlog_oldest_dead_tick: Some(80),
        };
        let text = render_prometheus(&[("puts".into(), 42)], &g, 100, Some(1_000));
        assert!(text.contains("puts 42\n"), "{text}");
        assert!(
            text.contains("db_level_tombstones{level=\"2\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("db_level_oldest_tombstone_age_ticks{level=\"2\"} 50"),
            "{text}"
        );
        assert!(text.contains("db_live_tombstones 8"), "{text}");
        assert!(
            text.contains("db_level_key_range_tombstones{level=\"2\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("db_level_oldest_key_range_tombstone_age_ticks{level=\"2\"} 60"),
            "{text}"
        );
        assert!(text.contains("db_buffer_key_range_tombstones 1"), "{text}");
        assert!(text.contains("db_live_key_range_tombstones 3"), "{text}");
        assert!(
            text.contains("db_key_range_tombstone_oldest_age_ticks 60"),
            "{text}"
        );
        assert!(
            text.contains("db_tombstone_age_ticks_bucket{le=\"+Inf\"} 9"),
            "{text}"
        );
        assert!(text.contains("db_vlog_live_bytes 1234"), "{text}");
        assert!(text.contains("db_vlog_dead_bytes 56"), "{text}");
        assert!(
            text.contains("db_vlog_oldest_dead_extent_age_ticks 20"),
            "{text}"
        );
        assert!(text.contains("db_delete_persistence_threshold_ticks 1000"));
    }
}
