//! K-way merging of heterogeneous entry sources in internal-key order.
//!
//! Sources implement [`KvSource`]; the engine merges table iterators and
//! materialized memtable ranges. The merge picks the minimum by linear
//! scan — source counts are tens at most, and keys are compared without
//! copying, which beats a heap that would have to own key copies.

use acheron_sstable::TableIterator;
use acheron_types::key::compare_internal;
use acheron_types::{Entry, RangeTombstone, Result, SeqNo, Tick, ValueKind, ValuePointer};
use bytes::Bytes;

/// A positioned stream of entries in internal-key order.
pub trait KvSource {
    /// True if positioned at an entry.
    fn valid(&self) -> bool;
    /// The current encoded internal key.
    fn key(&self) -> &[u8];
    /// The current secondary delete key.
    fn dkey(&self) -> u64;
    /// The current value.
    fn value(&self) -> &Bytes;
    /// Advance past the current entry.
    fn next(&mut self) -> Result<()>;
}

impl KvSource for TableIterator {
    fn valid(&self) -> bool {
        TableIterator::valid(self)
    }
    fn key(&self) -> &[u8] {
        TableIterator::key(self)
    }
    fn dkey(&self) -> u64 {
        TableIterator::dkey(self)
    }
    fn value(&self) -> &Bytes {
        TableIterator::value(self)
    }
    fn next(&mut self) -> Result<()> {
        TableIterator::next(self)
    }
}

/// A source over owned, already-sorted entries (materialized memtable
/// ranges, test fixtures).
pub struct VecSource {
    entries: Vec<Entry>,
    /// Cached encodings, parallel to `entries`.
    keys: Vec<Vec<u8>>,
    pos: usize,
}

impl VecSource {
    /// Wrap entries that are already in internal-key order.
    pub fn new(entries: Vec<Entry>) -> VecSource {
        debug_assert!(entries
            .windows(2)
            .all(|w| w[0].internal_key() < w[1].internal_key()));
        let keys = entries
            .iter()
            .map(|e| e.internal_key().encoded().to_vec())
            .collect();
        VecSource {
            entries,
            keys,
            pos: 0,
        }
    }
}

impl KvSource for VecSource {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }
    fn key(&self) -> &[u8] {
        &self.keys[self.pos]
    }
    fn dkey(&self) -> u64 {
        self.entries[self.pos].dkey
    }
    fn value(&self) -> &Bytes {
        &self.entries[self.pos].value
    }
    fn next(&mut self) -> Result<()> {
        self.pos += 1;
        Ok(())
    }
}

/// Merges multiple sources into one internal-key-ordered stream.
///
/// Ties cannot occur between *distinct* mutations (sequence numbers are
/// unique); if two sources present the identical internal key (e.g. an
/// entry visible both in an immutable memtable and an L0 file during a
/// race-free handoff, which the engine never produces), the
/// lower-indexed source wins and the other copy is skipped.
pub struct MergeIterator {
    sources: Vec<Box<dyn KvSource>>,
    current: Option<usize>,
}

impl MergeIterator {
    /// Merge the given sources (each already positioned at its start).
    pub fn new(sources: Vec<Box<dyn KvSource>>) -> MergeIterator {
        let mut m = MergeIterator {
            sources,
            current: None,
        };
        m.pick();
        m
    }

    fn pick(&mut self) {
        self.current = self
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid())
            .min_by(|(_, a), (_, b)| compare_internal(a.key(), b.key()))
            .map(|(i, _)| i);
    }

    /// True if positioned at an entry.
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Current encoded internal key.
    pub fn key(&self) -> &[u8] {
        self.sources[self.current.expect("key() on exhausted merge")].key()
    }

    /// Current delete key.
    pub fn dkey(&self) -> u64 {
        self.sources[self.current.expect("dkey() on exhausted merge")].dkey()
    }

    /// Current value.
    pub fn value(&self) -> &Bytes {
        self.sources[self.current.expect("value() on exhausted merge")].value()
    }

    /// Materialize the current entry.
    pub fn entry(&self) -> Result<Entry> {
        let key = acheron_types::key::InternalKeyRef::decode(self.key())
            .ok_or_else(|| acheron_types::Error::corruption("short key in merge"))?;
        let kind = ValueKind::from_u8(key.kind_byte()).ok_or_else(|| {
            acheron_types::Error::corruption(format!("bad kind byte {:#x}", key.kind_byte()))
        })?;
        Ok(Entry {
            key: Bytes::copy_from_slice(key.user_key()),
            seqno: key.seqno(),
            kind,
            dkey: self.dkey(),
            value: self.value().clone(),
        })
    }

    /// Advance past the current entry (and past any identical duplicate
    /// keys in other sources).
    pub fn advance(&mut self) -> Result<()> {
        let cur = self.current.expect("advance() on exhausted merge");
        let key = self.sources[cur].key().to_vec();
        for (i, s) in self.sources.iter_mut().enumerate() {
            if i != cur && s.valid() && s.key() == key.as_slice() {
                s.next()?;
            }
        }
        self.sources[cur].next()?;
        self.pick();
        Ok(())
    }
}

/// A deduplicated, garbage-collecting view over a [`MergeIterator`]:
/// yields the surviving entries of a compaction, applying
///
/// * **version dedup** — for each user key, keep the newest version plus
///   any versions still visible to a live snapshot,
/// * **range-tombstone purge** — drop entries shadowed by a live
///   secondary range tombstone (unless a snapshot still needs them),
/// * **tombstone drop** — at the bottommost level, point tombstones that
///   no snapshot needs are dropped and reported through `on_purge`.
pub struct CompactionStream<'a> {
    merge: MergeIterator,
    rts: &'a [RangeTombstone],
    snapshots: &'a [SeqNo],
    bottommost: bool,
    /// The compaction's clock reading, stamped onto dead vlog extents
    /// whose covering mutation carries no delete tick of its own.
    now: Tick,
    /// Survivors of the current user key's chain not yet handed out
    /// (non-empty only while snapshots force multiple versions).
    pending: std::collections::VecDeque<Entry>,
    /// Entries dropped because a newer kept version shadowed them.
    pub shadowed: u64,
    /// Entries purged by a secondary range tombstone.
    pub range_purged: u64,
    /// `(delete tick, seqno)` of each point tombstone physically dropped.
    pub tombstones_dropped: Vec<(u64, SeqNo)>,
    /// Seqnos of tombstones that exited the tree *without* reaching a
    /// bottommost purge: shadowed by a newer version of the same key or
    /// swallowed by a secondary range tombstone. The delete-lifecycle
    /// ledger treats these as resolved too — the obligation passed to
    /// the newer mutation — so every tombstone has exactly one exit.
    pub tombstones_superseded: Vec<SeqNo>,
    /// `(segment, bytes, stamp tick)` of each value-log extent whose
    /// last tree reference this compaction dropped. When the covering
    /// head is a tombstone the stamp is the tombstone's delete tick —
    /// the FADE-correct age seed — otherwise the compaction's `now`.
    pub vlog_dead: Vec<(u64, u64, Tick)>,
}

impl<'a> CompactionStream<'a> {
    /// Wrap a merge with compaction semantics.
    pub fn new(
        merge: MergeIterator,
        rts: &'a [RangeTombstone],
        snapshots: &'a [SeqNo],
        bottommost: bool,
        now: Tick,
    ) -> CompactionStream<'a> {
        CompactionStream {
            merge,
            rts,
            snapshots,
            bottommost,
            now,
            pending: std::collections::VecDeque::new(),
            shadowed: 0,
            range_purged: 0,
            tombstones_dropped: Vec::new(),
            tombstones_superseded: Vec::new(),
            vlog_dead: Vec::new(),
        }
    }

    /// Record the vlog extent behind a dropped value-pointer entry.
    fn note_dead_pointer(&mut self, dropped: &Entry, stamp: Tick) {
        if dropped.kind != ValueKind::ValuePointer {
            return;
        }
        if let Some(ptr) = ValuePointer::decode(&dropped.value) {
            self.vlog_dead
                .push((ptr.segment, u64::from(ptr.len), stamp));
        }
    }

    /// True if `newer` and `older` fall in the same snapshot stratum (no
    /// snapshot separates them), meaning the older version is invisible
    /// to every reader once the newer exists.
    fn same_stratum(&self, newer: SeqNo, older: SeqNo) -> bool {
        !self.snapshots.iter().any(|&s| older <= s && s < newer)
    }

    /// True if some snapshot can still observe an entry with `seqno`.
    fn visible_to_snapshot(&self, seqno: SeqNo) -> bool {
        self.snapshots.iter().any(|&s| seqno <= s)
    }

    /// Produce the next surviving entry, or `None` at end of input.
    ///
    /// Per user key, candidates are processed newest → oldest under the
    /// engine's *newest-version-decides* semantics:
    ///
    /// 1. an entry in the same snapshot stratum as the last surviving
    ///    chain head is dropped as shadowed (no reader can see it);
    /// 2. a chain head shadowed by a live range tombstone is **purged
    ///    only at the bottommost level** (purging higher up would let an
    ///    older, deeper version resurface) — it still ends its stratum;
    /// 3. a point tombstone at the bottommost level with no snapshot
    ///    pinning it is dropped — the delete is now persisted; it too
    ///    still ends its stratum.
    ///
    /// Rules 2 and 3 additionally require that no snapshot pins an
    /// *older* version of the same key: a pinned older version survives
    /// the stratum dedup, and physically dropping the newer head would
    /// promote it to chain head — resurrecting it for live readers.
    pub fn next_surviving(&mut self) -> Result<Option<Entry>> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Ok(Some(e));
            }
            if !self.merge.valid() {
                return Ok(None);
            }
            // Collect the whole version chain for the next user key.
            let first = self.merge.entry()?;
            self.merge.advance()?;
            let mut chain = vec![first];
            while self.merge.valid() {
                let nk = acheron_types::key::InternalKeyRef::decode(self.merge.key())
                    .ok_or_else(|| acheron_types::Error::corruption("short key in merge"))?;
                if nk.user_key() != &chain[0].key[..] {
                    break;
                }
                chain.push(self.merge.entry()?);
                self.merge.advance()?;
            }

            // Per candidate: does some snapshot pin an *older* version
            // of this key? Such a version survives dedup, so the
            // candidate must stay to keep shadowing it (chain is
            // newest → oldest).
            let older_pinned: Vec<bool> = (0..chain.len())
                .map(|i| {
                    chain[i + 1..].iter().any(|older| {
                        self.snapshots
                            .iter()
                            .any(|&s| older.seqno <= s && s < chain[i].seqno)
                    })
                })
                .collect();

            // `last_head` = the newest candidate that survived stratum
            // dedup (whether emitted, purged, or dropped): the version
            // that *decides* reads in its stratum. `(seqno, is_tombstone,
            // dkey)` — the extra fields stamp dead vlog extents.
            let mut last_head: Option<(SeqNo, bool, u64)> = None;
            for (i, candidate) in chain.into_iter().enumerate() {
                if let Some((head_seqno, head_is_del, head_dkey)) = last_head {
                    if self.same_stratum(head_seqno, candidate.seqno) {
                        self.shadowed += 1;
                        if candidate.is_tombstone() {
                            self.tombstones_superseded.push(candidate.seqno);
                        }
                        // A separated value shadowed by a tombstone dies
                        // *because of that delete*: seed its dead-extent
                        // age from the delete's own tick so the vlog GC
                        // deadline measures delete-to-reclaim end to end.
                        let stamp = if head_is_del { head_dkey } else { self.now };
                        self.note_dead_pointer(&candidate, stamp);
                        continue;
                    }
                }
                last_head = Some((candidate.seqno, candidate.is_tombstone(), candidate.dkey));
                let droppable = self.bottommost
                    && !self.visible_to_snapshot(candidate.seqno)
                    && !older_pinned[i];
                let rt_shadow = self
                    .rts
                    .iter()
                    .any(|rt| rt.shadows(candidate.seqno, candidate.dkey));
                if rt_shadow && droppable {
                    self.range_purged += 1;
                    if candidate.is_tombstone() {
                        self.tombstones_superseded.push(candidate.seqno);
                    }
                    let stamp = self.now;
                    self.note_dead_pointer(&candidate, stamp);
                    continue;
                }
                if candidate.is_tombstone() && droppable {
                    self.tombstones_dropped
                        .push((candidate.dkey, candidate.seqno));
                    continue;
                }
                self.pending.push_back(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_types::DeleteKeyRange;

    fn put(k: &str, seq: SeqNo, dkey: u64) -> Entry {
        Entry::put(
            k.as_bytes().to_vec(),
            format!("v{seq}").into_bytes(),
            seq,
            dkey,
        )
    }

    fn del(k: &str, seq: SeqNo, tick: u64) -> Entry {
        Entry::tombstone(k.as_bytes().to_vec(), seq, tick)
    }

    fn sorted(mut v: Vec<Entry>) -> Vec<Entry> {
        v.sort_by_key(|a| a.internal_key());
        v
    }

    fn merge_of(sources: Vec<Vec<Entry>>) -> MergeIterator {
        MergeIterator::new(
            sources
                .into_iter()
                .map(|v| Box::new(VecSource::new(sorted(v))) as Box<dyn KvSource>)
                .collect(),
        )
    }

    fn drain_merge(mut m: MergeIterator) -> Vec<Entry> {
        let mut out = Vec::new();
        while m.valid() {
            out.push(m.entry().unwrap());
            m.advance().unwrap();
        }
        out
    }

    #[test]
    fn merge_interleaves_in_order() {
        let m = merge_of(vec![
            vec![put("a", 1, 0), put("c", 3, 0)],
            vec![put("b", 2, 0), put("d", 4, 0)],
        ]);
        let keys: Vec<Vec<u8>> = drain_merge(m).into_iter().map(|e| e.key.to_vec()).collect();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn merge_orders_same_key_newest_first() {
        let m = merge_of(vec![
            vec![put("k", 5, 0)],
            vec![put("k", 9, 0)],
            vec![del("k", 7, 0)],
        ]);
        let seqs: Vec<SeqNo> = drain_merge(m).into_iter().map(|e| e.seqno).collect();
        assert_eq!(seqs, vec![9, 7, 5]);
    }

    #[test]
    fn merge_empty_sources() {
        let m = merge_of(vec![vec![], vec![], vec![]]);
        assert!(!m.valid());
        let m = merge_of(vec![]);
        assert!(!m.valid());
    }

    fn drain_stream(mut s: CompactionStream<'_>) -> (Vec<Entry>, u64, u64, usize) {
        let mut out = Vec::new();
        while let Some(e) = s.next_surviving().unwrap() {
            out.push(e);
        }
        (out, s.shadowed, s.range_purged, s.tombstones_dropped.len())
    }

    #[test]
    fn dedup_keeps_only_newest_without_snapshots() {
        let m = merge_of(vec![
            vec![put("k", 1, 0), put("k", 5, 0)],
            vec![put("k", 3, 0), put("other", 2, 0)],
        ]);
        let s = CompactionStream::new(m, &[], &[], false, 0);
        let (out, shadowed, _, _) = drain_stream(s);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seqno, 5);
        assert_eq!(&out[1].key[..], b"other");
        assert_eq!(shadowed, 2);
    }

    #[test]
    fn tombstone_kept_above_bottom_dropped_at_bottom() {
        let make = || merge_of(vec![vec![del("k", 9, 42), put("k", 3, 0)]]);
        // Above the bottom the tombstone must survive (something below
        // may still hold an older version).
        let s = CompactionStream::new(make(), &[], &[], false, 0);
        let (out, ..) = drain_stream(s);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_tombstone());
        // At the bottom it is dropped and reported.
        let s = CompactionStream::new(make(), &[], &[], true, 0);
        let (out, _, _, dropped) = drain_stream(s);
        assert!(out.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn snapshot_preserves_older_version() {
        let m = merge_of(vec![vec![put("k", 2, 0), put("k", 8, 0)]]);
        let snaps = [5u64];
        let s = CompactionStream::new(m, &[], &snaps, false, 0);
        let (out, ..) = drain_stream(s);
        // Both versions survive: seqno 8 is newest, seqno 2 is what
        // snapshot 5 sees.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seqno, 8);
        assert_eq!(out[1].seqno, 2);
    }

    #[test]
    fn snapshot_protects_tombstone_at_bottom() {
        let m = merge_of(vec![vec![del("k", 9, 0)]]);
        let snaps = [10u64];
        let s = CompactionStream::new(m, &[], &snaps, true, 0);
        let (out, _, _, dropped) = drain_stream(s);
        assert_eq!(out.len(), 1, "tombstone visible to snapshot must survive");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn tombstone_survives_bottom_when_snapshot_pins_older_version() {
        // Snapshot 5 pins put(seqno 3); the tombstone (seqno 9) is not
        // itself visible to any snapshot, but dropping it would promote
        // the pinned put to chain head and resurrect it for live
        // readers. Both must survive.
        let m = merge_of(vec![vec![del("k", 9, 42), put("k", 3, 0)]]);
        let snaps = [5u64];
        let s = CompactionStream::new(m, &[], &snaps, true, 0);
        let (out, _, _, dropped) = drain_stream(s);
        assert_eq!(dropped, 0);
        assert_eq!(out.len(), 2);
        assert!(out[0].is_tombstone());
        assert_eq!(out[1].seqno, 3);
    }

    #[test]
    fn range_purge_blocked_when_snapshot_pins_older_version() {
        // The rt (seqno 100) covers the newer put's dkey but not the
        // older one's; snapshot 5 pins the older put. Purging the
        // covered head would expose the pinned older version to live
        // readers, so it must stay.
        let rts = [RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::new(10, 20),
        }];
        let m = merge_of(vec![vec![put("k", 9, 15), put("k", 3, 30)]]);
        let snaps = [5u64];
        let s = CompactionStream::new(m, &rts, &snaps, true, 0);
        let (out, _, range_purged, _) = drain_stream(s);
        assert_eq!(range_purged, 0);
        assert_eq!(out.len(), 2, "covered head and pinned older put survive");
    }

    #[test]
    fn range_tombstone_purges_covered_entries_at_bottom_only() {
        let rts = [RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::new(10, 20),
        }];
        let make = || {
            merge_of(vec![vec![
                put("a", 1, 15),   // covered
                put("b", 2, 25),   // outside range: kept
                put("c", 150, 15), // newer than rt: kept
            ]])
        };
        // At the bottom, the covered entry is purged.
        let s = CompactionStream::new(make(), &rts, &[], true, 0);
        let (out, _, purged, _) = drain_stream(s);
        let keys: Vec<Vec<u8>> = out.iter().map(|e| e.key.to_vec()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(purged, 1);
        // Above the bottom it must survive (an older version of "a" may
        // exist deeper, and the covered head decides reads).
        let s = CompactionStream::new(make(), &rts, &[], false, 0);
        let (out, _, purged, _) = drain_stream(s);
        assert_eq!(out.len(), 3);
        assert_eq!(purged, 0);
    }

    #[test]
    fn covered_chain_head_still_shadows_older_strata() {
        // Even when the head is purged at the bottom, an older version in
        // the same stratum must not be emitted (it never decided reads).
        let rts = [RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::new(10, 20),
        }];
        let m = merge_of(vec![vec![put("k", 9, 15), put("k", 3, 99)]]);
        let s = CompactionStream::new(m, &rts, &[], true, 0);
        let (out, shadowed, purged, _) = drain_stream(s);
        assert!(
            out.is_empty(),
            "older uncovered version must not resurface: {out:?}"
        );
        assert_eq!(purged, 1);
        assert_eq!(shadowed, 1);
    }

    #[test]
    fn range_purge_resurfaces_nothing_when_chain_fully_covered() {
        let rts = [RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::all(),
        }];
        let m = merge_of(vec![vec![put("k", 5, 1), put("k", 7, 2)]]);
        let s = CompactionStream::new(m, &rts, &[], true, 0);
        let (out, ..) = drain_stream(s);
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_identical_keys_across_sources_yield_once() {
        let e = put("k", 5, 0);
        let m = merge_of(vec![vec![e.clone()], vec![e.clone()]]);
        let out = drain_merge(m);
        assert_eq!(out.len(), 1);
    }
}
