//! Unified adaptive memory arbiter: one byte budget across memtables,
//! the block cache, and pinned table metadata.
//!
//! Without a budget, the engine's three memory consumers grow
//! independently: the write buffer is sized by
//! `DbOptions::write_buffer_bytes`, the page cache by
//! `DbOptions::block_cache_bytes`, and every open table pins its filter
//! and tile metadata unaccounted. A [`MemoryBudget`] replaces those
//! independent knobs with a single pool
//! (`DbOptions::memory_budget_bytes`):
//!
//! ```text
//! total = pinned (filters + tile meta, tracked, not arbitrated)
//!       + memtable share (active + immutable write buffers)
//!       + cache share    (the BlockCache's resize target)
//! ```
//!
//! Pinned bytes are a *tax*: they exist as long as tables are open, so
//! the arbiter subtracts them off the top and splits only the remainder
//! between the write buffer and the cache.
//!
//! # The adaptive split
//!
//! The split starts 50/50 and moves under a tuner ([`MemoryBudget::tick`])
//! that compares the two consumers' byte *demand* over the last sample
//! window: cache fill traffic (bytes inserted on miss — what a bigger
//! cache would have absorbed) versus write ingest (user bytes entering
//! the memtable — what a bigger buffer would batch into fewer, larger
//! flushes). Both signals are smooth functions of the op stream; flush
//! events themselves are deliberately not used, because they are bursty
//! (zero for a whole fill cycle, then one spike) and would whipsaw the
//! split during cold start before the first flush ever happens.
//! When one demand dominates the other past its deadband
//! ([`LEAN_TO_MEMTABLE`] / [`LEAN_TO_CACHE`] — deliberately asymmetric)
//! on two consecutive samples, the split shifts one bounded
//! [`STEP_PERMILLE`] step that way; write stalls short-circuit the
//! comparison toward the write buffer (a stall is the engine already
//! failing, not a trend to be smoothed). Both shares keep a
//! [`MIN_SHARE_PERMILLE`] floor so neither consumer can be starved into
//! pathology.
//!
//! Hysteresis comes from three mechanisms, each individually cheap:
//! the wide demand deadband (near-balanced demand never moves), the
//! two-consecutive-samples rule (a single anomalous window never
//! moves), and the bounded step (a wrong move costs at most 1/16 of
//! the pool until the next sample corrects it). The demand signals are
//! self-damping — growing the cache reduces miss fill, growing the
//! buffer reduces seal frequency — so the loop converges instead of
//! hunting.
//!
//! # Fleet sharing
//!
//! A sharded database registers every shard as a *writer* on one shared
//! budget: the memtable share divides evenly across writers (each
//! shard's seal threshold is `memtable share / writers`), while the
//! cache share applies to the single fleet-wide [`BlockCache`]. Pinned
//! bytes aggregate by delta: each engine reports only the change in its
//! own table set.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use acheron_sstable::BlockCache;
use parking_lot::Mutex;

/// Tuner step size, in permille of the arbitrated pool (1/16).
pub const STEP_PERMILLE: usize = 64;

/// Floor of either share, in permille of the arbitrated pool (1/4).
/// Wide on purpose: E21's memory-pressure sweep shows both extreme
/// static splits losing badly on the workloads they are not tuned for,
/// while quarter-pool shares stay near the optimum — the tuner's job is
/// to lean, not to starve one consumer outright.
pub const MIN_SHARE_PERMILLE: usize = 256;

/// Write demand must exceed `LEAN_TO_MEMTABLE × fill` before the tuner
/// grows the write buffer. The two signals are byte counts at
/// different granularities — cache fill is page-granular (a one-entry
/// miss refills a whole page) while ingest is entry-granular — so
/// near-balanced workloads show a structural factor-of-several skew
/// toward fill; the deadband absorbs it.
pub const LEAN_TO_MEMTABLE: u64 = 8;

/// Fill demand must exceed `LEAN_TO_CACHE × writes` before the tuner
/// grows the cache. Much wider than [`LEAN_TO_MEMTABLE`] because the
/// two mistakes are not symmetric in an LSM: taking bytes from the
/// cache costs at most one extra page read per evicted page (bounded,
/// linear), while taking bytes from the write buffer multiplies seal
/// frequency and the compaction debt behind it (superlinear — E21
/// measures the cache-starved static split ~1.4× off best and the
/// buffer-starved one ~3–4× off on mixed traffic). Growing the cache
/// therefore requires an almost write-free window, not merely a
/// read-leaning one.
pub const LEAN_TO_CACHE: u64 = 64;

/// Per-sample demand floor, as a divisor of the total budget: windows
/// where both demands moved less than `total / MIN_SIGNAL_DIV` bytes
/// are noise and never move the split.
pub const MIN_SIGNAL_DIV: usize = 128;

/// Which way the tuner wants to move the split after one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lean {
    /// Grow the cache share at the write buffer's expense.
    ToCache,
    /// Grow the write-buffer share at the cache's expense.
    ToMemtable,
    /// Inside the deadband: leave the split alone.
    Hold,
}

/// Cumulative counters sampled by [`MemoryBudget::tick`]. All values
/// are monotone totals (the tuner differences them internally), so the
/// caller never has to track windows itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct TunerSample {
    /// Total bytes inserted into the block cache (miss fill traffic).
    pub cache_fill_bytes: u64,
    /// Total user payload bytes written into the memtable.
    pub write_bytes: u64,
    /// Total write-stall episodes.
    pub write_stalls: u64,
}

/// Tuner state: the previous sample (for differencing) and the pending
/// lean awaiting confirmation.
#[derive(Debug, Default)]
struct Tuner {
    last: TunerSample,
    pending: Option<Lean>,
}

/// One byte budget arbitrated across write buffers, the block cache,
/// and pinned table metadata. See the module docs for the split model;
/// see [`crate::options::DbOptions::memory_budget_bytes`] for how a
/// database opts in.
#[derive(Debug)]
pub struct MemoryBudget {
    /// The configured total, fixed for the budget's lifetime.
    total: usize,
    /// Write-buffer share of the arbitrated pool, in permille.
    memtable_permille: AtomicUsize,
    /// Pinned filter/tile-metadata bytes across all registered engines.
    pinned: AtomicUsize,
    /// Engines drawing write-buffer allowances from this budget.
    writers: AtomicUsize,
    /// Times the tuner moved the split (observability).
    adjustments: AtomicU64,
    tuner: Mutex<Tuner>,
}

impl MemoryBudget {
    /// A budget of `total_bytes`, split 50/50 until the tuner learns
    /// otherwise.
    pub fn new(total_bytes: usize) -> MemoryBudget {
        MemoryBudget {
            total: total_bytes,
            memtable_permille: AtomicUsize::new(512),
            pinned: AtomicUsize::new(0),
            writers: AtomicUsize::new(0),
            adjustments: AtomicU64::new(0),
            tuner: Mutex::new(Tuner::default()),
        }
    }

    /// The configured total budget.
    pub fn total_bytes(&self) -> usize {
        self.total
    }

    /// Register one engine as a consumer of the write-buffer share.
    /// Each registered writer receives `memtable share / writers`.
    pub fn register_writer(&self) {
        self.writers.fetch_add(1, Ordering::Relaxed);
    }

    /// Report a change in an engine's pinned bytes (filters + tile
    /// metadata of its open tables). Engines report deltas so a shared
    /// budget aggregates across shards without a coordinator.
    pub fn adjust_pinned(&self, old: usize, new: usize) {
        if new >= old {
            self.pinned.fetch_add(new - old, Ordering::Relaxed);
        } else {
            self.pinned.fetch_sub(old - new, Ordering::Relaxed);
        }
    }

    /// Currently pinned bytes across all registered engines.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned.load(Ordering::Relaxed)
    }

    /// The pool left to arbitrate once pinned bytes are taxed off the
    /// top. Pinned growth squeezes both shares proportionally; a
    /// pathological table set that pins the whole budget degrades to a
    /// small fixed floor rather than zero.
    fn arbitrated(&self) -> usize {
        self.total.saturating_sub(self.pinned_bytes()).max(1 << 16)
    }

    /// Total write-buffer share (all writers combined).
    pub fn memtable_share_bytes(&self) -> usize {
        self.arbitrated() / 1024 * self.memtable_permille.load(Ordering::Relaxed)
    }

    /// This engine's write-buffer allowance: the memtable share divided
    /// across registered writers. The active memtable seals when it
    /// reaches this threshold.
    pub fn memtable_bytes_per_writer(&self) -> usize {
        let writers = self.writers.load(Ordering::Relaxed).max(1);
        (self.memtable_share_bytes() / writers).max(1 << 12)
    }

    /// The block cache's byte target: what is left of the arbitrated
    /// pool after the write-buffer share.
    pub fn cache_share_bytes(&self) -> usize {
        self.arbitrated()
            .saturating_sub(self.memtable_share_bytes())
    }

    /// Times the tuner has moved the split.
    pub fn adjustments(&self) -> u64 {
        self.adjustments.load(Ordering::Relaxed)
    }

    /// Classify one differenced window into a lean.
    fn classify(&self, fill: u64, writes: u64, stalls: u64) -> Lean {
        if stalls > 0 {
            // A stall is the write path already blocked: grant the
            // buffer without waiting out the deadband.
            return Lean::ToMemtable;
        }
        let floor = (self.total / MIN_SIGNAL_DIV) as u64;
        if fill < floor && writes < floor {
            return Lean::Hold;
        }
        if fill > LEAN_TO_CACHE * writes {
            Lean::ToCache
        } else if writes > LEAN_TO_MEMTABLE * fill {
            Lean::ToMemtable
        } else {
            Lean::Hold
        }
    }

    /// Feed one cumulative sample to the tuner. Returns `true` when the
    /// split moved, in which case the caller must re-apply the cache
    /// share via [`MemoryBudget::apply_cache_share`] (and new seal
    /// decisions will see the new memtable allowance automatically).
    pub fn tick(&self, sample: TunerSample) -> bool {
        let mut t = self.tuner.lock();
        let fill = sample
            .cache_fill_bytes
            .saturating_sub(t.last.cache_fill_bytes);
        let writes = sample.write_bytes.saturating_sub(t.last.write_bytes);
        let stalls = sample.write_stalls.saturating_sub(t.last.write_stalls);
        t.last = sample;
        let lean = self.classify(fill, writes, stalls);
        match lean {
            Lean::Hold => {
                t.pending = None;
                false
            }
            dir if t.pending == Some(dir) => {
                // Second consecutive window agreeing: move one step.
                t.pending = None;
                let cur = self.memtable_permille.load(Ordering::Relaxed);
                let next = match dir {
                    Lean::ToMemtable => (cur + STEP_PERMILLE).min(1024 - MIN_SHARE_PERMILLE),
                    Lean::ToCache => cur.saturating_sub(STEP_PERMILLE).max(MIN_SHARE_PERMILLE),
                    Lean::Hold => unreachable!(),
                };
                if next == cur {
                    return false;
                }
                self.memtable_permille.store(next, Ordering::Relaxed);
                self.adjustments.fetch_add(1, Ordering::Relaxed);
                true
            }
            dir => {
                t.pending = Some(dir);
                false
            }
        }
    }

    /// Push the current cache share into `cache` (evicting to fit if it
    /// shrank). Idempotent; callers invoke it after [`MemoryBudget::tick`]
    /// returns `true` or after pinned bytes changed materially.
    pub fn apply_cache_share(&self, cache: &BlockCache) {
        let target = self.cache_share_bytes();
        if cache.capacity_bytes() != target {
            cache.resize(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    fn sample(fill: u64, writes: u64, stalls: u64) -> TunerSample {
        TunerSample {
            cache_fill_bytes: fill,
            write_bytes: writes,
            write_stalls: stalls,
        }
    }

    #[test]
    fn split_starts_even_and_respects_pinned_tax() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        assert_eq!(b.total_bytes(), 64 * MB);
        let m0 = b.memtable_share_bytes();
        let c0 = b.cache_share_bytes();
        assert!(
            m0.abs_diff(c0) < MB / 16,
            "initial split is even: {m0} vs {c0}"
        );
        b.adjust_pinned(0, 8 * MB);
        assert_eq!(b.pinned_bytes(), 8 * MB);
        assert!(b.memtable_share_bytes() < m0, "pinned bytes tax the pool");
        assert!(b.cache_share_bytes() < c0);
        b.adjust_pinned(8 * MB, 2 * MB);
        assert_eq!(b.pinned_bytes(), 2 * MB);
    }

    #[test]
    fn memtable_share_divides_across_writers() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let alone = b.memtable_bytes_per_writer();
        for _ in 0..3 {
            b.register_writer();
        }
        assert_eq!(b.memtable_bytes_per_writer(), alone / 4);
    }

    #[test]
    fn steady_workload_never_oscillates() {
        // Balanced demand inside the deadband: many windows, zero moves.
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let before = b.memtable_share_bytes();
        let mut fill = 0u64;
        let mut flush = 0u64;
        for _ in 0..100 {
            fill += 4 * MB as u64;
            flush += 3 * MB as u64; // near-balanced: deadband holds
            assert!(!b.tick(sample(fill, flush, 0)));
        }
        assert_eq!(b.adjustments(), 0);
        assert_eq!(b.memtable_share_bytes(), before);
    }

    #[test]
    fn quiet_windows_never_move_the_split() {
        // Demand below the signal floor is noise, even when lopsided.
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let mut fill = 0u64;
        for _ in 0..50 {
            fill += 1024; // 1 KiB of fill vs 0 flush: lopsided but tiny
            assert!(!b.tick(sample(fill, 0, 0)));
        }
        assert_eq!(b.adjustments(), 0);
    }

    #[test]
    fn single_spike_is_ignored_two_windows_move() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let before = b.memtable_share_bytes();
        // One read-heavy window between balanced ones: no move.
        assert!(!b.tick(sample(32 * MB as u64, 0, 0)));
        assert!(!b.tick(sample(33 * MB as u64, MB as u64, 0)));
        assert_eq!(b.memtable_share_bytes(), before);
        // Two consecutive read-heavy windows: one bounded step to cache.
        assert!(!b.tick(sample(65 * MB as u64, MB as u64, 0)));
        assert!(b.tick(sample(97 * MB as u64, MB as u64, 0)));
        let after = b.memtable_share_bytes();
        assert!(after < before, "cache grew: {after} vs {before}");
        let step = before - after;
        let arbitrated = b.total_bytes();
        assert!(
            step <= arbitrated / 1024 * STEP_PERMILLE + 1,
            "step is bounded: moved {step}"
        );
    }

    #[test]
    fn persistent_pressure_converges_to_floor_and_stops() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let mut fill = 0u64;
        let mut last = b.memtable_share_bytes();
        let mut moves = 0;
        for _ in 0..100 {
            fill += 32 * MB as u64;
            if b.tick(sample(fill, 0, 0)) {
                moves += 1;
                let now = b.memtable_share_bytes();
                assert!(now < last, "moves are monotone under one-sided pressure");
                last = now;
            }
        }
        // Clamped at the floor: exactly (512-256)/64 = 4 moves, then flat.
        assert_eq!(moves, (512 - MIN_SHARE_PERMILLE) / STEP_PERMILLE);
        assert_eq!(
            b.memtable_share_bytes(),
            b.total_bytes() / 1024 * MIN_SHARE_PERMILLE,
            "memtable share rests at its floor"
        );
        assert!(b.cache_share_bytes() > b.memtable_share_bytes());
    }

    #[test]
    fn stalls_shortcut_toward_the_write_buffer() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        let before = b.memtable_share_bytes();
        // Stalls lean immediately, but still need two agreeing windows.
        assert!(!b.tick(sample(0, 0, 1)));
        assert!(b.tick(sample(0, 0, 2)));
        assert!(b.memtable_share_bytes() > before);
    }

    #[test]
    fn shares_always_cover_the_arbitrated_pool() {
        let b = MemoryBudget::new(64 * MB);
        b.register_writer();
        b.adjust_pinned(0, 3 * MB);
        let mut flush = 0u64;
        for _ in 0..20 {
            flush += 32 * MB as u64;
            b.tick(sample(0, flush, 0));
            let m = b.memtable_share_bytes();
            let c = b.cache_share_bytes();
            let pool = b.total_bytes() - b.pinned_bytes();
            assert!(m + c <= pool, "{m} + {c} exceeds pool {pool}");
            assert!(m + c >= pool - 1024, "shares must not leak budget");
        }
    }
}
