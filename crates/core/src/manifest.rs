//! The manifest: a durable log of version edits.
//!
//! Reuses the WAL's block framing (checksummed, torn-write tolerant).
//! Each record is one [`EditBatch`] — the atomic unit of metadata
//! change (e.g. "delete these 3 inputs, add these 2 outputs"). The
//! `CURRENT` file names the live manifest.

use acheron_types::codec::{
    put_length_prefixed, put_varint64, require_length_prefixed, require_varint64,
};
use acheron_types::{DeleteKeyRange, Error, Result, SeqNo};
use acheron_vfs::Vfs;
use acheron_wal::{LogReader, LogWriter, ReadOutcome};
use bytes::Bytes;

/// One metadata mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionEdit {
    /// A new table file exists at (level, run).
    AddFile {
        /// LSM level the file joins.
        level: u64,
        /// Run within the level.
        run: u64,
        /// File id (names the `.sst` file).
        id: u64,
        /// File size in bytes.
        size: u64,
        /// Tick the file was created at (seeds FADE aging on recovery).
        created_tick: u64,
    },
    /// A table file is obsolete.
    DeleteFile {
        /// Id of the obsolete file.
        id: u64,
    },
    /// A secondary range delete was committed.
    AddRangeTombstone {
        /// Commit sequence number of the range delete.
        seqno: SeqNo,
        /// Covered delete-key range.
        range: DeleteKeyRange,
    },
    /// A range tombstone is fully applied and retired.
    DropRangeTombstone {
        /// Sequence number of the retired tombstone.
        seqno: SeqNo,
    },
    /// All operations with seqno <= this are durable in table files.
    PersistedSeqno {
        /// The persisted sequence number.
        seqno: SeqNo,
    },
    /// WAL files numbered below this are obsolete.
    LogNumber {
        /// Oldest WAL segment that must still replay.
        number: u64,
    },
    /// Lower bound for new file numbers.
    NextFileId {
        /// Next free file id.
        id: u64,
    },
    /// A value-log segment was garbage-collected and its file deleted.
    ///
    /// Live tables may still carry (shadowed) pointers into the segment
    /// until compaction rewrites them; this record is how recovery and
    /// `doctor` distinguish those expected-stale references from a
    /// genuinely missing segment.
    DropVlogSegment {
        /// Id of the collected vlog segment.
        segment: u64,
    },
}

const TAG_ADD_FILE: u8 = 1;
const TAG_DELETE_FILE: u8 = 2;
const TAG_ADD_RT: u8 = 3;
const TAG_DROP_RT: u8 = 4;
const TAG_PERSISTED_SEQNO: u8 = 5;
const TAG_LOG_NUMBER: u8 = 6;
const TAG_NEXT_FILE_ID: u8 = 7;
const TAG_DROP_VLOG: u8 = 8;

/// An atomic group of edits (one manifest record).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditBatch {
    /// The edits, applied in order.
    pub edits: Vec<VersionEdit>,
}

impl EditBatch {
    /// Serialize to a manifest record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * self.edits.len() + 4);
        put_varint64(&mut out, self.edits.len() as u64);
        for e in &self.edits {
            match e {
                VersionEdit::AddFile {
                    level,
                    run,
                    id,
                    size,
                    created_tick,
                } => {
                    out.push(TAG_ADD_FILE);
                    for v in [*level, *run, *id, *size, *created_tick] {
                        put_varint64(&mut out, v);
                    }
                }
                VersionEdit::DeleteFile { id } => {
                    out.push(TAG_DELETE_FILE);
                    put_varint64(&mut out, *id);
                }
                VersionEdit::AddRangeTombstone { seqno, range } => {
                    out.push(TAG_ADD_RT);
                    put_varint64(&mut out, *seqno);
                    put_length_prefixed(&mut out, &range.encode());
                }
                VersionEdit::DropRangeTombstone { seqno } => {
                    out.push(TAG_DROP_RT);
                    put_varint64(&mut out, *seqno);
                }
                VersionEdit::PersistedSeqno { seqno } => {
                    out.push(TAG_PERSISTED_SEQNO);
                    put_varint64(&mut out, *seqno);
                }
                VersionEdit::LogNumber { number } => {
                    out.push(TAG_LOG_NUMBER);
                    put_varint64(&mut out, *number);
                }
                VersionEdit::NextFileId { id } => {
                    out.push(TAG_NEXT_FILE_ID);
                    put_varint64(&mut out, *id);
                }
                VersionEdit::DropVlogSegment { segment } => {
                    out.push(TAG_DROP_VLOG);
                    put_varint64(&mut out, *segment);
                }
            }
        }
        out
    }

    /// Deserialize a manifest record.
    pub fn decode(data: &[u8]) -> Result<EditBatch> {
        let (count, mut src) = require_varint64(data, "edit batch count")?;
        let mut edits = Vec::with_capacity(count.min(4096) as usize);
        for i in 0..count {
            let (&tag, rest) = src
                .split_first()
                .ok_or_else(|| Error::corruption(format!("edit batch: truncated edit {i}")))?;
            src = rest;
            let mut next = |what: &str| -> Result<u64> {
                let (v, rest) = require_varint64(src, what)?;
                src = rest;
                Ok(v)
            };
            let edit = match tag {
                TAG_ADD_FILE => {
                    let level = next("add-file level")?;
                    let run = next("add-file run")?;
                    let id = next("add-file id")?;
                    let size = next("add-file size")?;
                    let created_tick = next("add-file tick")?;
                    VersionEdit::AddFile {
                        level,
                        run,
                        id,
                        size,
                        created_tick,
                    }
                }
                TAG_DELETE_FILE => VersionEdit::DeleteFile {
                    id: next("delete-file id")?,
                },
                TAG_ADD_RT => {
                    let seqno = next("add-rt seqno")?;
                    // Release the closure's borrow of `src` before using
                    // it directly.
                    #[allow(clippy::drop_non_drop)]
                    drop(next);
                    let (raw, rest) = require_length_prefixed(src, "add-rt range")?;
                    src = rest;
                    let range = DeleteKeyRange::decode(raw)
                        .ok_or_else(|| Error::corruption("add-rt: bad range encoding"))?;
                    VersionEdit::AddRangeTombstone { seqno, range }
                }
                TAG_DROP_RT => VersionEdit::DropRangeTombstone {
                    seqno: next("drop-rt seqno")?,
                },
                TAG_PERSISTED_SEQNO => VersionEdit::PersistedSeqno {
                    seqno: next("persisted seqno")?,
                },
                TAG_LOG_NUMBER => VersionEdit::LogNumber {
                    number: next("log number")?,
                },
                TAG_NEXT_FILE_ID => VersionEdit::NextFileId {
                    id: next("next file id")?,
                },
                TAG_DROP_VLOG => VersionEdit::DropVlogSegment {
                    segment: next("drop-vlog segment")?,
                },
                other => {
                    return Err(Error::corruption(format!(
                        "edit batch: unknown tag {other}"
                    )));
                }
            };
            edits.push(edit);
        }
        if !src.is_empty() {
            return Err(Error::corruption("edit batch: trailing bytes"));
        }
        Ok(EditBatch { edits })
    }
}

/// Append-only manifest writer.
pub struct ManifestWriter {
    log: LogWriter,
}

impl ManifestWriter {
    /// Create a fresh manifest file at `path`.
    pub fn create(fs: &dyn Vfs, path: &str) -> Result<ManifestWriter> {
        Ok(ManifestWriter {
            log: LogWriter::new(fs.create(path)?),
        })
    }

    /// Append and sync one edit batch.
    pub fn append(&mut self, batch: &EditBatch) -> Result<()> {
        self.log.add_record(&batch.encode())?;
        self.log.sync()
    }

    /// Bytes written so far (used to decide when to compact the manifest).
    pub fn len(&self) -> u64 {
        self.log.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

/// Replay a manifest file into its edit batches.
///
/// A corrupt tail after at least one valid record is tolerated (crash
/// during append); corruption at the head is an error.
pub fn read_manifest(fs: &dyn Vfs, path: &str) -> Result<Vec<EditBatch>> {
    let data = fs.read_all(path)?;
    let mut reader = LogReader::new(data);
    let mut batches = Vec::new();
    loop {
        match reader.next_record() {
            ReadOutcome::Record(rec) => batches.push(EditBatch::decode(&rec)?),
            ReadOutcome::Eof => return Ok(batches),
            ReadOutcome::Corrupt { offset, reason } => {
                if batches.is_empty() {
                    return Err(Error::corruption(format!(
                        "manifest {path} corrupt at offset {offset}: {reason}"
                    )));
                }
                // Torn tail: accept the valid prefix.
                return Ok(batches);
            }
        }
    }
}

/// Read the `CURRENT` pointer: the name of the live manifest.
pub fn read_current(fs: &dyn Vfs, dir: &str) -> Result<Option<String>> {
    let path = acheron_vfs::join(dir, "CURRENT");
    if !fs.exists(&path) {
        return Ok(None);
    }
    let data = fs.read_all(&path)?;
    let name = std::str::from_utf8(&data)
        .map_err(|_| Error::corruption("CURRENT is not UTF-8"))?
        .trim()
        .to_string();
    if name.is_empty() {
        return Err(Error::corruption("CURRENT is empty"));
    }
    Ok(Some(name))
}

/// Atomically update the `CURRENT` pointer (write temp + rename).
pub fn write_current(fs: &dyn Vfs, dir: &str, manifest_name: &str) -> Result<()> {
    let tmp = acheron_vfs::join(dir, "CURRENT.tmp");
    let dst = acheron_vfs::join(dir, "CURRENT");
    fs.write_all(&tmp, format!("{manifest_name}\n").as_bytes())?;
    fs.rename(&tmp, &dst)
}

/// Bytes wrapper used in tests to simulate partially written manifests.
pub fn decode_all(data: Bytes) -> Result<Vec<EditBatch>> {
    let mut reader = LogReader::new(data);
    let mut batches = Vec::new();
    while let ReadOutcome::Record(rec) = reader.next_record() {
        batches.push(EditBatch::decode(&rec)?);
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_vfs::MemFs;

    fn sample_batch() -> EditBatch {
        EditBatch {
            edits: vec![
                VersionEdit::AddFile {
                    level: 0,
                    run: 3,
                    id: 17,
                    size: 4096,
                    created_tick: 99,
                },
                VersionEdit::DeleteFile { id: 4 },
                VersionEdit::AddRangeTombstone {
                    seqno: 1000,
                    range: DeleteKeyRange::new(5, 500),
                },
                VersionEdit::DropRangeTombstone { seqno: 900 },
                VersionEdit::PersistedSeqno { seqno: 1234 },
                VersionEdit::LogNumber { number: 7 },
                VersionEdit::NextFileId { id: 18 },
                VersionEdit::DropVlogSegment { segment: 2 },
            ],
        }
    }

    #[test]
    fn batch_round_trip() {
        let b = sample_batch();
        assert_eq!(EditBatch::decode(&b.encode()).unwrap(), b);
        let empty = EditBatch::default();
        assert_eq!(EditBatch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn batch_rejects_truncation_and_garbage() {
        let enc = sample_batch().encode();
        for cut in 0..enc.len() {
            assert!(EditBatch::decode(&enc[..cut]).is_err(), "cut={cut}");
        }
        let mut trailing = enc.clone();
        trailing.push(1);
        assert!(EditBatch::decode(&trailing).is_err());
        let mut bad_tag = enc;
        bad_tag[1] = 99;
        assert!(EditBatch::decode(&bad_tag).is_err());
    }

    #[test]
    fn manifest_write_and_replay() {
        let fs = MemFs::new();
        let mut w = ManifestWriter::create(&fs, "MANIFEST-000001").unwrap();
        let b1 = sample_batch();
        let b2 = EditBatch {
            edits: vec![VersionEdit::DeleteFile { id: 17 }],
        };
        w.append(&b1).unwrap();
        w.append(&b2).unwrap();
        let replayed = read_manifest(&fs, "MANIFEST-000001").unwrap();
        assert_eq!(replayed, vec![b1, b2]);
    }

    #[test]
    fn manifest_tolerates_torn_tail() {
        let fs = MemFs::new();
        let mut w = ManifestWriter::create(&fs, "M").unwrap();
        w.append(&sample_batch()).unwrap();
        w.append(&sample_batch()).unwrap();
        let data = fs.read_all("M").unwrap();
        fs.write_all("M", &data[..data.len() - 3]).unwrap();
        let replayed = read_manifest(&fs, "M").unwrap();
        assert_eq!(replayed.len(), 1, "torn tail drops only the last record");
    }

    #[test]
    fn manifest_rejects_corrupt_head() {
        let fs = MemFs::new();
        fs.write_all("M", &[0xff; 64]).unwrap();
        assert!(read_manifest(&fs, "M").is_err());
    }

    #[test]
    fn current_pointer_round_trip() {
        let fs = MemFs::new();
        fs.mkdir_all("db").unwrap();
        assert_eq!(read_current(&fs, "db").unwrap(), None);
        write_current(&fs, "db", "MANIFEST-000042").unwrap();
        assert_eq!(
            read_current(&fs, "db").unwrap(),
            Some("MANIFEST-000042".to_string())
        );
        // Re-pointing replaces atomically.
        write_current(&fs, "db", "MANIFEST-000043").unwrap();
        assert_eq!(
            read_current(&fs, "db").unwrap(),
            Some("MANIFEST-000043".to_string())
        );
    }

    #[test]
    fn current_rejects_empty() {
        let fs = MemFs::new();
        fs.write_all("db/CURRENT", b"  \n").unwrap();
        assert!(read_current(&fs, "db").is_err());
    }
}
