//! Horizontal keyspace sharding: N independent engines behind one
//! router, sharing one clock and one FADE contract.
//!
//! A [`ShardedDb`] partitions the primary-key space across `N`
//! fully independent [`Db`] instances — each shard owns its own WAL,
//! memtable, flush queue, and compaction pipeline, so write throughput
//! (and therefore tombstone-persistence headroom) scales with shards
//! instead of capping out at one commit queue. The paper's single-node
//! `D_th` bound becomes a *per-shard* invariant; the aggregation
//! methods here ([`ShardedDb::tombstone_gauges`],
//! [`ShardedDb::fleet_max_tombstone_age`]) exist so observability can
//! prove it holds everywhere at once.
//!
//! # Partitioning
//!
//! Keys route by stable hash: `shard_of(key) = fnv1a64(key) % N`
//! ([`shard_of`]). FNV-1a is deterministic across processes and
//! platforms (no seed, no pointer salt), which the on-disk layout
//! requires: reopening the fleet must route every key to the shard
//! that already holds it.
//!
//! # Directory layout and the shard map
//!
//! A sharded root holds one subdirectory per shard plus a manifest:
//!
//! ```text
//! root/
//!   SHARDMAP            magic, shard count, hash id, CRC32C
//!   shard-000/          a complete single-engine database
//!   shard-001/
//!   ...
//! ```
//!
//! `SHARDMAP` is written (temp + rename + dir sync) only *after* every
//! shard has been created durably, and reopen refuses to proceed if the
//! map names a shard whose directory is missing its `CURRENT` pointer.
//! The ordering makes the failure modes safe: a crash before the map
//! exists re-creates the fleet from scratch (shard recovery folds in
//! whatever partial state survived), while a lost shard *after* the map
//! exists fails loudly instead of silently reopening with a hole in
//! the keyspace.
//!
//! # Clock discipline
//!
//! All shards share one `Arc<dyn Clock>`, but each shard is opened with
//! `auto_advance_clock = false`: the *router* advances the shared
//! logical clock exactly once per logical operation (matching what a
//! single engine would do), so tombstone ages — and therefore FADE's
//! TTL triggers — are identical whether the keyspace is one engine or
//! sixteen. This is also what makes a sharded run *result-identical*
//! to a single-engine run on the same op stream (dkey stamps match).
//!
//! # Cross-shard scans and the read barrier
//!
//! Point ops touch exactly one shard and need no coordination. A scan
//! spans shards, so [`ShardedDb::snapshot`] takes a write lock on the
//! router's admission barrier while capturing one [`Snapshot`] per
//! shard; every write holds the barrier's read lock across its commit.
//! The captured cut therefore contains a *prefix* of the router's
//! admission order — no write can be half-visible across shards — and
//! each per-shard snapshot pins its shard's state exactly as the
//! single-engine snapshot does. Scan results merge trivially: the
//! shards' keyspaces are disjoint, so sorting the concatenated rows by
//! key *is* the merge.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use acheron_types::{checksum, Clock, Error, Result, Tick};
use acheron_vfs::{join, Vfs};
use parking_lot::RwLock;

use crate::db::{Db, Snapshot, WritePressure};
use crate::doctor::{self, DoctorReport};
use crate::memory::MemoryBudget;
use crate::obs::trace::{DeleteAudit, OpTrace};
use crate::obs::{EventSnapshot, TombstoneGauges};
use crate::options::DbOptions;
use crate::stats::StatsSnapshot;

/// File name of the shard-map manifest inside a sharded root.
pub const SHARD_MAP_NAME: &str = "SHARDMAP";

/// Maximum shard count a fleet may be created with.
pub const MAX_SHARDS: usize = 256;

/// Shard-map magic: "ACSHMAP" + format version 1.
const SHARD_MAP_MAGIC: &[u8; 8] = b"ACSHMAP\x01";

/// Partitioning-function id recorded in the shard map. Only FNV-1a-64
/// modulo the shard count exists today; the id makes a future scheme a
/// detectable format change instead of silent misrouting.
const HASH_FNV1A64: u32 = 1;

/// Encoded shard-map length: magic + shard count + hash id + CRC.
const SHARD_MAP_LEN: usize = 20;

/// FNV-1a 64-bit: stable across processes and platforms, which the
/// on-disk routing requires.
fn fnv1a64(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard owning `key` in a fleet of `shards` shards.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fnv1a64(key) % shards as u64) as usize
}

/// Subdirectory of shard `shard` under the sharded root `dir`.
pub fn shard_dir(dir: &str, shard: usize) -> String {
    join(dir, &format!("shard-{shard:03}"))
}

fn encode_shard_map(shards: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(SHARD_MAP_LEN);
    out.extend_from_slice(SHARD_MAP_MAGIC);
    out.extend_from_slice(&shards.to_le_bytes());
    out.extend_from_slice(&HASH_FNV1A64.to_le_bytes());
    let crc = checksum::mask(checksum::crc32c(&out));
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Read the shard map under `dir`, if one exists. `Ok(None)` means the
/// root has never been opened sharded; corruption (bad magic, bad CRC,
/// unknown hash id, absurd count) is an error, never `None` — a
/// damaged map must not be mistaken for a fresh directory.
pub fn read_shard_map(fs: &dyn Vfs, dir: &str) -> Result<Option<u32>> {
    let path = join(dir, SHARD_MAP_NAME);
    if !fs.exists(&path) {
        return Ok(None);
    }
    let data = fs.read_all(&path)?;
    if data.len() != SHARD_MAP_LEN || &data[..8] != SHARD_MAP_MAGIC {
        return Err(Error::corruption("shard map: bad magic or length"));
    }
    let stored = u32::from_le_bytes(data[16..20].try_into().unwrap());
    if checksum::unmask(stored) != checksum::crc32c(&data[..16]) {
        return Err(Error::corruption("shard map: checksum mismatch"));
    }
    let shards = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let hash = u32::from_le_bytes(data[12..16].try_into().unwrap());
    if hash != HASH_FNV1A64 {
        return Err(Error::corruption(format!(
            "shard map: unknown partitioning function id {hash}"
        )));
    }
    if shards == 0 || shards as usize > MAX_SHARDS {
        return Err(Error::corruption(format!(
            "shard map: implausible shard count {shards}"
        )));
    }
    Ok(Some(shards))
}

/// Durably install the shard map: temp, rename, directory sync. Called
/// only after every shard directory is itself durable.
fn write_shard_map(fs: &dyn Vfs, dir: &str, shards: u32) -> Result<()> {
    let tmp = join(dir, "SHARDMAP.tmp");
    fs.write_all(&tmp, &encode_shard_map(shards))?;
    fs.rename(&tmp, &join(dir, SHARD_MAP_NAME))?;
    fs.sync_dir(dir)
}

/// A consistent cut across every shard: one [`Snapshot`] per shard,
/// captured under the router's admission barrier so the cut contains a
/// prefix of the admitted writes. Obtained from [`ShardedDb::snapshot`].
pub struct ShardedSnapshot {
    shards: Vec<Snapshot>,
}

impl ShardedSnapshot {
    /// The per-shard snapshot seqnos (diagnostic; shard order).
    pub fn seqnos(&self) -> Vec<u64> {
        self.shards.iter().map(Snapshot::seqno).collect()
    }
}

/// N independent [`Db`] shards behind a hash router. See the module
/// docs for the partitioning, durability, clock, and consistency
/// arguments.
pub struct ShardedDb {
    shards: Vec<Db>,
    clock: Arc<dyn Clock>,
    /// Whether the router advances the shared logical clock per op
    /// (mirrors what `auto_advance_clock` would do on a single engine).
    auto_advance: bool,
    /// Admission barrier: writes hold `read` across their commit,
    /// [`ShardedDb::snapshot`] holds `write` while capturing the cut.
    barrier: RwLock<()>,
    /// The single fleet-wide block cache every shard shares (present
    /// when caching is enabled at all). One instance, one budget —
    /// never N private copies of `block_cache_bytes` each.
    cache: Option<Arc<acheron_sstable::BlockCache>>,
    /// The fleet-wide memory arbiter, present when
    /// [`DbOptions::memory_budget_bytes`] is non-zero. Every shard is a
    /// registered writer on it.
    memory: Option<Arc<MemoryBudget>>,
    opts: DbOptions,
}

impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedDb {
    /// Open (creating or recovering) a fleet of `shards` shards under
    /// `dir`. On a fresh root the shard directories are created and the
    /// shard map installed; on reopen the map is authoritative — a
    /// mismatched `shards` is rejected (resharding is unsupported) and
    /// a mapped shard with no recoverable state fails the open rather
    /// than silently serving a hole in the keyspace.
    pub fn open(fs: Arc<dyn Vfs>, dir: &str, opts: DbOptions, shards: usize) -> Result<ShardedDb> {
        if shards == 0 {
            return Err(Error::invalid_argument("shard count must be >= 1"));
        }
        if shards > MAX_SHARDS {
            return Err(Error::invalid_argument(format!(
                "shard count must be <= {MAX_SHARDS}"
            )));
        }
        opts.validate()?;
        fs.mkdir_all(dir)?;
        let existing = read_shard_map(fs.as_ref(), dir)?;
        if let Some(n) = existing {
            if n as usize != shards {
                return Err(Error::invalid_argument(format!(
                    "shard map records {n} shards but open requested {shards}; \
                     resharding is not supported"
                )));
            }
            for i in 0..shards {
                let current = join(&shard_dir(dir, i), "CURRENT");
                if !fs.exists(&current) {
                    return Err(Error::corruption(format!(
                        "shard map names {shards} shards but shard {i} has no CURRENT \
                         pointer; refusing to reopen a partial fleet"
                    )));
                }
            }
        }
        let auto_advance = opts.auto_advance_clock;
        let clock = Arc::clone(&opts.clock);
        // One cache and one arbiter for the whole fleet: the configured
        // bytes are a *total*, so N shards must share a single instance
        // rather than each allocating a private copy (which would
        // multiply the footprint by the shard count).
        let memory = (opts.memory_budget_bytes > 0)
            .then(|| Arc::new(MemoryBudget::new(opts.memory_budget_bytes)));
        let cache = match &memory {
            Some(m) => Some(Arc::new(acheron_sstable::BlockCache::new(
                m.cache_share_bytes(),
            ))),
            None => (opts.block_cache_bytes > 0)
                .then(|| Arc::new(acheron_sstable::BlockCache::new(opts.block_cache_bytes))),
        };
        // One trace-id allocator for the fleet: trace ids must stay
        // unique across shards so a wire-propagated id names exactly
        // one operation.
        let trace_ids = Arc::new(AtomicU64::new(1));
        let mut dbs = Vec::with_capacity(shards);
        for i in 0..shards {
            // Shards share the router's clock but never advance it
            // themselves; the router ticks once per logical op so the
            // fleet ages tombstones exactly like a single engine.
            let shard_opts = DbOptions {
                auto_advance_clock: false,
                ..opts.clone()
            };
            dbs.push(Db::open_with_shared(
                Arc::clone(&fs),
                &shard_dir(dir, i),
                shard_opts,
                cache.clone(),
                memory.clone(),
                Some((i, Arc::clone(&trace_ids))),
            )?);
        }
        if existing.is_none() {
            // Every shard's CURRENT is durable; only now may the map
            // exist (its presence asserts all shards are recoverable).
            write_shard_map(fs.as_ref(), dir, shards as u32)?;
        }
        Ok(ShardedDb {
            shards: dbs,
            clock,
            auto_advance,
            barrier: RwLock::new(()),
            cache,
            memory,
            opts,
        })
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct handle to shard `i` (panics when out of range).
    pub fn shard(&self, i: usize) -> &Db {
        &self.shards[i]
    }

    /// The shard owning `key`.
    pub fn shard_for(&self, key: &[u8]) -> &Db {
        &self.shards[shard_of(key, self.shards.len())]
    }

    /// Advance the shared clock for one router-admitted operation.
    fn tick(&self, n: u64) {
        if self.auto_advance {
            if let Some(lc) = self.clock.as_logical() {
                lc.advance(n);
            }
        }
    }

    /// Insert `key = value`, stamping the current tick as its delete
    /// key (exactly what [`Db::put`] does).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_with_dkey(key, value, self.clock.now())
    }

    /// Insert with an explicit delete key.
    pub fn put_with_dkey(&self, key: &[u8], value: &[u8], dkey: u64) -> Result<()> {
        let _admit = self.barrier.read();
        self.shard_for(key).put_with_dkey(key, value, dkey)?;
        self.tick(1);
        Ok(())
    }

    /// Point-delete `key`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let _admit = self.barrier.read();
        self.shard_for(key).delete(key)?;
        self.tick(1);
        Ok(())
    }

    /// Secondary range delete over `[lo, hi]` in the delete-key domain.
    /// Dkeys do not route (they are orthogonal to the primary key), so
    /// the tombstone broadcasts to every shard; the clock still ticks
    /// once, as it would on a single engine.
    pub fn range_delete_secondary(&self, lo: u64, hi: u64) -> Result<()> {
        let _admit = self.barrier.read();
        for db in &self.shards {
            db.range_delete_secondary(lo, hi)?;
        }
        self.tick(1);
        Ok(())
    }

    /// Sort-key range delete, broadcast to every shard: hash
    /// partitioning scatters any sort-key interval across the fleet, so
    /// each shard records the tombstone and drops its own covered keys.
    pub fn range_delete_keys(&self, start: &[u8], end: &[u8]) -> Result<()> {
        let _admit = self.barrier.read();
        for db in &self.shards {
            db.range_delete_keys(start, end)?;
        }
        self.tick(1);
        Ok(())
    }

    /// Point lookup: routed to the owning shard, no cross-shard
    /// coordination needed.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.shard_for(key).get(key)?.map(|v| v.to_vec()))
    }

    /// [`ShardedDb::put`] with a forced trace: routed like a normal
    /// put (admission barrier, owning shard, one fleet tick), returning
    /// the owning shard's span breakdown.
    pub fn put_traced(&self, key: &[u8], value: &[u8], trace_id: Option<u64>) -> Result<OpTrace> {
        let _admit = self.barrier.read();
        let trace = self.shard_for(key).put_traced(key, value, trace_id)?;
        self.tick(1);
        Ok(trace)
    }

    /// [`ShardedDb::delete`] with a forced trace.
    pub fn delete_traced(&self, key: &[u8], trace_id: Option<u64>) -> Result<OpTrace> {
        let _admit = self.barrier.read();
        let trace = self.shard_for(key).delete_traced(key, trace_id)?;
        self.tick(1);
        Ok(trace)
    }

    /// [`ShardedDb::get`] with a forced trace: the owning shard's read
    /// path is timed and the span breakdown returned with the value.
    pub fn get_traced(
        &self,
        key: &[u8],
        trace_id: Option<u64>,
    ) -> Result<(Option<Vec<u8>>, OpTrace)> {
        let (value, trace) = self.shard_for(key).get_traced(key, trace_id)?;
        Ok((value.map(|v| v.to_vec()), trace))
    }

    /// Capture a consistent cross-shard cut. Holds the admission
    /// barrier exclusively for the duration of the capture (one
    /// `Db::snapshot` per shard — cheap, no I/O).
    pub fn snapshot(&self) -> ShardedSnapshot {
        let _barrier = self.barrier.write();
        ShardedSnapshot {
            shards: self.shards.iter().map(Db::snapshot).collect(),
        }
    }

    /// Inclusive range scan at a previously captured cut, merged across
    /// shards into key order.
    pub fn scan_at(
        &self,
        snap: &ShardedSnapshot,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if snap.shards.len() != self.shards.len() {
            return Err(Error::invalid_argument(
                "snapshot is from a fleet with a different shard count",
            ));
        }
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (db, s) in self.shards.iter().zip(&snap.shards) {
            rows.extend(
                db.scan_at(s, lo, hi)?
                    .into_iter()
                    .map(|(k, v)| (k.to_vec(), v.to_vec())),
            );
        }
        // Shards partition the keyspace, so per-key uniqueness is
        // guaranteed and a sort by key is the k-way merge.
        rows.sort_unstable();
        Ok(rows)
    }

    /// Inclusive range scan over the whole fleet at a fresh cut.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let snap = self.snapshot();
        self.scan_at(&snap, lo, hi)
    }

    /// Flush every shard's memtable.
    pub fn flush(&self) -> Result<()> {
        for db in &self.shards {
            db.flush()?;
        }
        Ok(())
    }

    /// Run synchronous maintenance to quiescence on every shard
    /// (`background_threads = 0` mode).
    pub fn maintain(&self) -> Result<()> {
        for db in &self.shards {
            db.maintain()?;
        }
        Ok(())
    }

    /// Wait for every shard's background maintenance to go idle.
    pub fn wait_idle(&self) -> Result<()> {
        for db in &self.shards {
            db.wait_idle()?;
        }
        Ok(())
    }

    /// Advance the shared clock by `n` ticks and kick every shard's
    /// maintenance (TTL triggers are clock-driven). The clock is shared,
    /// so only the first shard advances it; the rest advance by zero,
    /// which still wakes their workers.
    pub fn advance_clock(&self, n: u64) {
        let mut n = n;
        for db in &self.shards {
            db.advance_clock(n);
            n = 0;
        }
    }

    /// The shared clock's current tick.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// The options the fleet was opened with (shard copies differ only
    /// in `auto_advance_clock`).
    pub fn options(&self) -> &DbOptions {
        &self.opts
    }

    /// Fleet-wide stats: every shard's [`StatsSnapshot`] merged (sums,
    /// maxima, and conservatively merged histogram summaries), with the
    /// shared cache and memory-budget gauges filled in exactly once —
    /// shard snapshots leave shared-scope fields zero precisely so this
    /// sum cannot count the single shared instance N times.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut s = self
            .shards
            .iter()
            .map(|d| d.stats_snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s));
        if let Some(c) = &self.cache {
            s.cache_hits = c.hits();
            s.cache_misses = c.misses();
            s.cache_evictions = c.evictions();
            s.cache_inserted_bytes = c.inserted_bytes();
            s.cache_used_bytes = c.used_bytes() as u64;
            s.cache_capacity_bytes = c.capacity_bytes() as u64;
        }
        if let Some(m) = &self.memory {
            s.memory_budget_bytes = m.total_bytes() as u64;
            s.memory_adjustments = m.adjustments();
        }
        s
    }

    /// Per-shard stats snapshots, in shard order. Shared-scope cache
    /// and budget fields are zero here (the cache is fleet-wide); see
    /// [`ShardedDb::stats_snapshot`] for the filled fleet view.
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|d| d.stats_snapshot()).collect()
    }

    /// The fleet-wide block cache, when caching is enabled.
    pub fn block_cache(&self) -> Option<Arc<acheron_sstable::BlockCache>> {
        self.cache.clone()
    }

    /// The fleet-wide memory arbiter, when a budget is configured.
    pub fn memory_budget(&self) -> Option<Arc<MemoryBudget>> {
        self.memory.clone()
    }

    /// Fleet-wide tombstone gauges: per-level populations summed across
    /// shards, oldest ticks taken as minima — so the fleet gauge's age
    /// histogram and max age cover every shard's tombstones.
    pub fn tombstone_gauges(&self) -> TombstoneGauges {
        self.shards
            .iter()
            .map(Db::tombstone_gauges)
            .fold(TombstoneGauges::default(), |acc, g| acc.merge(&g))
    }

    /// Per-shard tombstone gauges, in shard order.
    pub fn shard_gauges(&self) -> Vec<TombstoneGauges> {
        self.shards.iter().map(Db::tombstone_gauges).collect()
    }

    /// Per-shard event-ring snapshots, in shard order. Rings are
    /// per-shard (seqnos are shard-local), so they are exposed side by
    /// side rather than merged.
    pub fn shard_events(&self) -> Vec<EventSnapshot> {
        self.shards.iter().map(Db::events).collect()
    }

    /// Per-shard write pressure, in shard order.
    pub fn shard_pressure(&self) -> Vec<WritePressure> {
        self.shards.iter().map(Db::write_pressure).collect()
    }

    /// Fleet-wide write pressure: worst-case composition (max gauges,
    /// OR flags). `stall` means *some* shard is stalled — per-key
    /// admission should consult [`ShardedDb::shard_for`] instead, but
    /// broadcast writes (range deletes) and pacing decisions want the
    /// fleet view.
    pub fn write_pressure(&self) -> WritePressure {
        self.shards.iter().map(Db::write_pressure).fold(
            WritePressure {
                l0_files: 0,
                sealed_memtables: 0,
                slowdown: false,
                stall: false,
            },
            |acc, p| WritePressure {
                l0_files: acc.l0_files.max(p.l0_files),
                sealed_memtables: acc.sealed_memtables.max(p.sealed_memtables),
                slowdown: acc.slowdown || p.slowdown,
                stall: acc.stall || p.stall,
            },
        )
    }

    /// Total live point tombstones across the fleet.
    pub fn live_tombstones(&self) -> u64 {
        self.shards.iter().map(Db::live_tombstones).sum()
    }

    /// Age of the oldest live tombstone anywhere in the fleet — the
    /// number the fleet's FADE promise is judged by: it must stay at or
    /// under `D_th` on *every* shard, so the max is what `metrics` and
    /// the doctor report.
    pub fn fleet_max_tombstone_age(&self) -> Option<Tick> {
        self.shards
            .iter()
            .filter_map(Db::oldest_live_tombstone_age)
            .max()
    }

    /// Fleet-wide delete-lifecycle audit: the union of every shard's
    /// cohort ledger, judged against the fleet clock and the shared
    /// `D_th`. Cohort records carry their shard index, so the union is
    /// a plain concatenation — no cross-shard merging is needed, and a
    /// violation names the exact (shard, epoch) cohort responsible.
    pub fn delete_audit(&self) -> DeleteAudit {
        let audits: Vec<DeleteAudit> = self.shards.iter().map(Db::delete_audit).collect();
        let mut fleet = DeleteAudit {
            now: self.clock.now(),
            d_th: self
                .opts
                .fade
                .as_ref()
                .map(|f| f.delete_persistence_threshold),
            cohorts: Vec::new(),
            oldest_live_tombstone_tick: None,
            oldest_vlog_dead_tick: None,
        };
        for a in audits {
            fleet.cohorts.extend(a.cohorts);
            fleet.oldest_live_tombstone_tick = match (
                fleet.oldest_live_tombstone_tick,
                a.oldest_live_tombstone_tick,
            ) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
            fleet.oldest_vlog_dead_tick =
                match (fleet.oldest_vlog_dead_tick, a.oldest_vlog_dead_tick) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
        }
        fleet.cohorts.sort_by_key(|c| (c.shard, c.epoch));
        fleet
    }

    /// Recently sampled op traces across the fleet, newest last within
    /// each shard. Trace ids are fleet-unique (the shards share one
    /// allocator), so the concatenation is unambiguous.
    pub fn recent_traces(&self) -> Vec<OpTrace> {
        self.shards.iter().flat_map(Db::recent_traces).collect()
    }

    /// Verify every shard's in-memory invariants.
    pub fn verify_integrity(&self) -> Result<()> {
        for db in &self.shards {
            db.verify_integrity()?;
        }
        Ok(())
    }
}

/// Offline integrity check of a sharded root: verify the shard map,
/// then run the single-engine doctor over every shard. Returns one
/// report per shard, in shard order. Like [`doctor::check_db`], this
/// never mutates the directory.
pub fn check_sharded_db(fs: &dyn Vfs, dir: &str, d_th: Option<Tick>) -> Result<Vec<DoctorReport>> {
    let Some(n) = read_shard_map(fs, dir)? else {
        return Err(Error::corruption(
            "no SHARDMAP file: not a sharded database root",
        ));
    };
    (0..n as usize)
        .map(|i| doctor::check_db_with_threshold(fs, &shard_dir(dir, i), d_th))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acheron_vfs::MemFs;

    fn open_mem(shards: usize) -> (Arc<MemFs>, ShardedDb) {
        let fs = Arc::new(MemFs::new());
        let db =
            ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), shards).unwrap();
        (fs, db)
    }

    #[test]
    fn routing_is_stable_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for key in [&b"a"[..], b"user000000000042", b"", b"\xff\xff"] {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "routing must be deterministic");
            }
        }
        // The hash actually spreads: 256 keys over 4 shards never land
        // all on one shard.
        let mut counts = [0usize; 4];
        for i in 0..256u32 {
            counts[shard_of(format!("key{i:06}").as_bytes(), 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn put_get_delete_route_and_round_trip() {
        let (_fs, db) = open_mem(4);
        for i in 0..200u32 {
            db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                format!("v{i}").into_bytes()
            );
        }
        db.delete(b"key000007").unwrap();
        assert_eq!(db.get(b"key000007").unwrap(), None);
        // Every shard received some share of the keys.
        let total: u64 = db.shard_stats().iter().map(|s| s.puts).sum();
        assert_eq!(total, 200);
        assert!(db.shard_stats().iter().all(|s| s.puts > 0));
        db.verify_integrity().unwrap();
    }

    #[test]
    fn router_ticks_once_per_op_like_a_single_engine() {
        let (_fs, db) = open_mem(3);
        assert_eq!(db.now(), 0);
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"a").unwrap();
        db.range_delete_secondary(0, 10).unwrap();
        // 4 logical ops -> 4 ticks, despite the broadcast touching 3
        // shards.
        assert_eq!(db.now(), 4);
        // Reads do not tick.
        db.get(b"b").unwrap();
        db.scan(b"", b"\xff").unwrap();
        assert_eq!(db.now(), 4);
    }

    #[test]
    fn cross_shard_scans_merge_in_key_order() {
        let (_fs, db) = open_mem(4);
        let mut keys: Vec<String> = (0..300u32).map(|i| format!("key{i:06}")).collect();
        for k in &keys {
            db.put(k.as_bytes(), b"v").unwrap();
        }
        keys.sort();
        let rows = db.scan(b"", b"\xff").unwrap();
        let got: Vec<String> = rows
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn snapshot_isolates_from_later_writes() {
        let (_fs, db) = open_mem(2);
        db.put(b"a", b"old").unwrap();
        db.put(b"b", b"old").unwrap();
        let snap = db.snapshot();
        db.put(b"a", b"new").unwrap();
        db.delete(b"b").unwrap();
        db.put(b"c", b"new").unwrap();
        let rows = db.scan_at(&snap, b"", b"\xff").unwrap();
        assert_eq!(
            rows,
            vec![
                (b"a".to_vec(), b"old".to_vec()),
                (b"b".to_vec(), b"old".to_vec())
            ]
        );
    }

    #[test]
    fn range_delete_broadcasts_to_every_shard() {
        let (_fs, db) = open_mem(4);
        for i in 0..100u32 {
            db.put_with_dkey(format!("key{i:06}").as_bytes(), b"v", u64::from(i))
                .unwrap();
        }
        db.range_delete_secondary(20, 59).unwrap();
        let rows = db.scan(b"", b"\xff").unwrap();
        assert_eq!(rows.len(), 60, "40 dkeys erased across all shards");
    }

    #[test]
    fn reopen_recovers_every_shard() {
        let fs = Arc::new(MemFs::new());
        {
            let db =
                ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 4).unwrap();
            for i in 0..500u32 {
                db.put(format!("key{i:06}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let db = ShardedDb::open(fs as Arc<dyn Vfs>, "db", DbOptions::small(), 4).unwrap();
        for i in 0..500u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                format!("v{i}").into_bytes()
            );
        }
    }

    #[test]
    fn resharding_is_rejected() {
        let fs = Arc::new(MemFs::new());
        drop(ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 4).unwrap());
        let err = ShardedDb::open(fs as Arc<dyn Vfs>, "db", DbOptions::small(), 8).unwrap_err();
        assert!(err.to_string().contains("resharding"), "{err}");
    }

    #[test]
    fn missing_shard_fails_loudly_not_silently() {
        let fs = Arc::new(MemFs::new());
        {
            let db =
                ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 3).unwrap();
            for i in 0..50u32 {
                db.put(format!("key{i:06}").as_bytes(), b"v").unwrap();
            }
            db.flush().unwrap();
        }
        // Lose shard 1's CURRENT pointer (a wiped or unmounted shard).
        fs.delete(&join(&shard_dir("db", 1), "CURRENT")).unwrap();
        let err = ShardedDb::open(fs as Arc<dyn Vfs>, "db", DbOptions::small(), 3).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert!(err.to_string().contains("shard 1"), "{err}");
    }

    #[test]
    fn corrupt_shard_map_is_an_error_not_a_fresh_fleet() {
        let fs = Arc::new(MemFs::new());
        drop(ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 2).unwrap());
        let path = join("db", SHARD_MAP_NAME);
        let mut data = fs.read_all(&path).unwrap().to_vec();
        data[9] ^= 0xff;
        fs.write_all(&path, &data).unwrap();
        let err = ShardedDb::open(fs as Arc<dyn Vfs>, "db", DbOptions::small(), 2).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn invalid_shard_counts_rejected() {
        let fs = Arc::new(MemFs::new());
        assert!(ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 0).is_err());
        assert!(
            ShardedDb::open(fs as Arc<dyn Vfs>, "db", DbOptions::small(), MAX_SHARDS + 1).is_err()
        );
    }

    #[test]
    fn single_shard_fleet_matches_single_engine_results() {
        // The degenerate fleet must behave exactly like one engine on
        // the same op stream — same values, same clock.
        let single = Db::open(
            Arc::new(MemFs::new()) as Arc<dyn Vfs>,
            "db",
            DbOptions::small(),
        )
        .unwrap();
        let (_fs, fleet) = open_mem(1);
        for i in 0..300u32 {
            let k = format!("key{i:06}");
            single
                .put(k.as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
            fleet.put(k.as_bytes(), format!("v{i}").as_bytes()).unwrap();
            if i % 5 == 0 {
                single.delete(k.as_bytes()).unwrap();
                fleet.delete(k.as_bytes()).unwrap();
            }
        }
        single.range_delete_secondary(50, 90).unwrap();
        fleet.range_delete_secondary(50, 90).unwrap();
        assert_eq!(single.now(), fleet.now(), "identical tick sequences");
        let srows: Vec<(Vec<u8>, Vec<u8>)> = single
            .scan(b"", b"\xff")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(srows, fleet.scan(b"", b"\xff").unwrap());
    }

    #[test]
    fn fleet_gauges_aggregate_across_shards() {
        let (_fs, db) = open_mem(4);
        for i in 0..400u32 {
            db.put(format!("key{i:06}").as_bytes(), &[b'v'; 32])
                .unwrap();
        }
        for i in 0..100u32 {
            db.delete(format!("key{i:06}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        let gauges = db.tombstone_gauges();
        let per_shard: u64 = db.shard_gauges().iter().map(|g| g.live_tombstones()).sum();
        assert_eq!(gauges.live_tombstones(), per_shard);
        assert!(gauges.live_tombstones() > 0);
        let fleet_age = db.fleet_max_tombstone_age().unwrap();
        let max_shard_age = (0..4)
            .filter_map(|i| db.shard(i).oldest_live_tombstone_age())
            .max()
            .unwrap();
        assert_eq!(fleet_age, max_shard_age);
        let merged = db.stats_snapshot();
        assert_eq!(merged.puts, 400);
        assert_eq!(merged.deletes, 100);
    }

    #[test]
    fn sharded_doctor_checks_every_shard() {
        let fs = Arc::new(MemFs::new());
        {
            let db =
                ShardedDb::open(fs.clone() as Arc<dyn Vfs>, "db", DbOptions::small(), 3).unwrap();
            for i in 0..300u32 {
                db.put(format!("key{i:06}").as_bytes(), &[b'v'; 32])
                    .unwrap();
                if i % 4 == 0 {
                    db.delete(format!("key{:06}", i / 2).as_bytes()).unwrap();
                }
            }
            db.flush().unwrap();
        }
        let reports = check_sharded_db(fs.as_ref(), "db", None).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.tables_checked > 0));
        // A plain directory is not a sharded root.
        let plain = MemFs::new();
        plain.mkdir_all("x").unwrap();
        assert!(check_sharded_db(&plain, "x", None).is_err());
    }
}
