//! FADE: per-level tombstone TTLs derived from the delete persistence
//! threshold `D_th`.
//!
//! A tombstone born at tick `t0` must be purged (reach and leave into
//! the bottom level) by `t0 + D_th`. A tombstone's journey has
//! `max_levels` way-stations: the write buffer, then disk levels
//! `0 … L-2` (arriving at the bottom level *is* persistence — the
//! compaction that moves it there drops it). FADE assigns each station
//! a residency budget `d_0 … d_{L-1}` summing to slightly *less* than
//! `D_th` (a 1/16 margin absorbs trigger-detection latency), and
//! declares a station's occupant **expired** once its age exceeds the
//! cumulative budget through that station — expiry forces a flush (for
//! the buffer) or a compaction into the next level (for disk levels),
//! regardless of saturation.
//!
//! Two allocations are implemented:
//!
//! * **Uniform**: every station gets `D_eff / L`.
//! * **Exponential** (Lethe's choice): `d_i ∝ T^i` — deeper stations
//!   hold exponentially more data, so their (more expensive) expiry
//!   compactions are allowed exponentially more slack.

use acheron_memtable::Memtable;
use acheron_types::Tick;

use crate::options::{DbOptions, TtlAllocation};
use crate::version::FileMeta;

/// The per-station TTL schedule. Station 0 is the write buffer; station
/// `i + 1` is disk level `i`. The bottom disk level has no station —
/// arrival there is persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtlSchedule {
    per_station: Vec<Tick>,
    /// `cumulative[s]` = total age budget through station `s`.
    cumulative: Vec<Tick>,
    d_th: Tick,
}

impl TtlSchedule {
    /// Build a schedule from options. `opts.fade` must be set.
    pub fn new(opts: &DbOptions) -> TtlSchedule {
        let fade = opts
            .fade
            .as_ref()
            .expect("TtlSchedule requires fade options");
        let d_th = fade.delete_persistence_threshold;
        // Reserve a 1/16 margin for trigger-detection latency so the
        // *measured* purge latency stays <= D_th.
        let d_eff = (d_th - d_th / 16).max(1);
        // Stations: buffer + disk levels 0..=max_levels-2.
        let stations = opts.max_levels;
        let per_station: Vec<Tick> = match fade.ttl_allocation {
            TtlAllocation::Uniform => {
                let d = (d_eff / stations as u64).max(1);
                vec![d; stations]
            }
            TtlAllocation::Exponential => {
                let t = opts.size_ratio as u128;
                let denom: u128 = (0..stations).map(|i| t.pow(i as u32)).sum();
                (0..stations)
                    .map(|i| ((d_eff as u128 * t.pow(i as u32) / denom) as u64).max(1))
                    .collect()
            }
        };
        let mut cumulative = Vec::with_capacity(stations);
        let mut acc = 0u64;
        for d in &per_station {
            acc = acc.saturating_add(*d);
            cumulative.push(acc);
        }
        TtlSchedule {
            per_station,
            cumulative,
            d_th,
        }
    }

    /// Residency budget of the write buffer.
    pub fn buffer_ttl(&self) -> Tick {
        self.per_station[0]
    }

    /// Residency budget of disk level `level`.
    pub fn level_ttl(&self, level: usize) -> Tick {
        self.per_station.get(level + 1).copied().unwrap_or(0)
    }

    /// Cumulative age budget through disk level `level`: a tombstone at
    /// `level` older than this is overdue. Saturates at the last station
    /// for the bottom level.
    pub fn deadline(&self, level: usize) -> Tick {
        let idx = (level + 1).min(self.cumulative.len() - 1);
        self.cumulative[idx]
    }

    /// True if the write buffer holds a tombstone past its budget.
    pub fn buffer_expired(&self, mem: &Memtable, now: Tick) -> bool {
        match self.buffer_deadline(mem) {
            Some(deadline) => now > deadline,
            None => false,
        }
    }

    /// Absolute tick by which `mem`'s oldest tombstone — point *or*
    /// sort-key range — must leave the buffer (`None` when it holds
    /// neither). Sealed memtables awaiting flush are still "station 0",
    /// so the background executor applies this to them too when
    /// scheduling its next wake-up.
    pub fn buffer_deadline(&self, mem: &Memtable) -> Option<Tick> {
        let s = mem.stats();
        let oldest = match (s.oldest_tombstone_tick, s.oldest_range_tombstone_tick) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        oldest.map(|t0| t0.saturating_add(self.buffer_ttl()))
    }

    /// True if `file` (at its level) holds an expired tombstone at
    /// `now`. Range tombstones age on the same clock as point ones.
    pub fn file_expired(&self, file: &FileMeta, now: Tick) -> bool {
        match file.stats.oldest_any_tombstone_tick() {
            Some(t0) => now.saturating_sub(t0) > self.deadline(file.level),
            None => false,
        }
    }

    /// How overdue the file's oldest tombstone (either flavor) is
    /// (0 if not expired).
    pub fn overdue_by(&self, file: &FileMeta, now: Tick) -> Tick {
        match file.stats.oldest_any_tombstone_tick() {
            Some(t0) => now
                .saturating_sub(t0)
                .saturating_sub(self.deadline(file.level)),
            None => 0,
        }
    }

    /// The earliest future tick at which something expires, given the
    /// current tree — the write path compares `now` against this instead
    /// of rescanning files on every operation.
    pub fn next_deadline<'a>(
        &self,
        files: impl Iterator<Item = &'a FileMeta>,
        mem: &Memtable,
    ) -> Option<Tick> {
        let file_deadline = files
            .filter_map(|f| {
                f.stats
                    .oldest_any_tombstone_tick()
                    .map(|t0| t0.saturating_add(self.deadline(f.level)))
            })
            .min();
        let mem_deadline = self.buffer_deadline(mem);
        file_deadline.into_iter().chain(mem_deadline).min()
    }

    /// The configured threshold.
    pub fn d_th(&self) -> Tick {
        self.d_th
    }

    /// The FADE trigger inputs recorded on a `CompactionPicked` event:
    /// how far past its cumulative budget the task's most overdue input
    /// tombstone is, and what that budget (`deadline(level)`) was.
    /// `(0, deadline)` for saturation-triggered picks over unexpired
    /// inputs.
    pub fn trigger_inputs<'a>(
        &self,
        inputs: impl Iterator<Item = &'a FileMeta>,
        level: usize,
        now: Tick,
    ) -> (Tick, Tick) {
        let overdue = inputs.map(|f| self.overdue_by(f, now)).max().unwrap_or(0);
        (overdue, self.deadline(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{DbOptions, FadeOptions, FilePickPolicy};

    fn opts(alloc: TtlAllocation, d_th: Tick, levels: usize, ratio: u64) -> DbOptions {
        DbOptions {
            max_levels: levels,
            size_ratio: ratio,
            fade: Some(FadeOptions {
                delete_persistence_threshold: d_th,
                ttl_allocation: alloc,
                saturation_pick: FilePickPolicy::MinOverlap,
            }),
            ..DbOptions::default()
        }
    }

    #[test]
    fn uniform_splits_evenly_with_margin() {
        // D_th = 1600 → margin 100 → D_eff = 1500 over 5 stations.
        let s = TtlSchedule::new(&opts(TtlAllocation::Uniform, 1600, 5, 4));
        assert_eq!(s.buffer_ttl(), 300);
        for level in 0..4 {
            assert_eq!(s.level_ttl(level), 300);
        }
        // Level 0 deadline = buffer + L0 budgets.
        assert_eq!(s.deadline(0), 600);
        assert_eq!(s.deadline(3), 1500);
        // Bottom level saturates at the last station.
        assert_eq!(s.deadline(4), 1500);
        assert!(s.deadline(3) <= s.d_th());
    }

    #[test]
    fn exponential_gives_deeper_stations_more_time() {
        let s = TtlSchedule::new(&opts(TtlAllocation::Exponential, 1600, 4, 4));
        // D_eff = 1500; weights 1,4,16,64 over denom 85.
        assert_eq!(s.buffer_ttl(), 17);
        assert_eq!(s.level_ttl(0), 70);
        assert_eq!(s.level_ttl(1), 282);
        assert_eq!(s.level_ttl(2), 1129);
        assert!(s.deadline(2) <= 1500);
    }

    #[test]
    fn cumulative_budget_never_exceeds_threshold() {
        for d_th in [100u64, 999, 123_456] {
            for levels in [2usize, 3, 7] {
                for ratio in [2u64, 4, 10] {
                    for alloc in [TtlAllocation::Uniform, TtlAllocation::Exponential] {
                        let s = TtlSchedule::new(&opts(alloc, d_th, levels, ratio));
                        // The clamp to >= 1 per station can push truly
                        // tiny budgets over; allow `levels` slack.
                        assert!(
                            s.deadline(levels - 2) <= d_th + levels as u64,
                            "{alloc:?} L={levels} T={ratio} D={d_th}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn buffer_expiry_detection() {
        use acheron_types::Entry;
        let s = TtlSchedule::new(&opts(TtlAllocation::Uniform, 1000, 5, 4));
        let mem = Memtable::new();
        assert!(!s.buffer_expired(&mem, 10_000), "no tombstones, no expiry");
        mem.insert(Entry::tombstone(&b"k"[..], 1, 500));
        assert!(!s.buffer_expired(&mem, 500 + s.buffer_ttl()));
        assert!(s.buffer_expired(&mem, 501 + s.buffer_ttl()));
    }

    #[test]
    fn next_deadline_is_min_over_sources() {
        use acheron_types::Entry;
        let s = TtlSchedule::new(&opts(TtlAllocation::Uniform, 1600, 5, 4));
        let mem = Memtable::new();
        assert_eq!(s.next_deadline(std::iter::empty(), &mem), None);
        mem.insert(Entry::tombstone(&b"k"[..], 1, 1000));
        // Buffer budget 300 → deadline 1300.
        assert_eq!(s.next_deadline(std::iter::empty(), &mem), Some(1300));
    }

    #[test]
    fn buffer_deadline_counts_range_tombstones() {
        use acheron_types::KeyRangeTombstone;
        use bytes::Bytes;
        let s = TtlSchedule::new(&opts(TtlAllocation::Uniform, 1600, 5, 4));
        let mem = Memtable::new();
        mem.add_range_tombstone(KeyRangeTombstone {
            start: Bytes::from_static(b"a"),
            end: Bytes::from_static(b"m"),
            seqno: 1,
            dkey: 1000,
        });
        assert_eq!(s.buffer_deadline(&mem), Some(1300));
        assert!(s.buffer_expired(&mem, 1301));
        // An older point tombstone tightens the deadline further.
        use acheron_types::Entry;
        mem.insert(Entry::tombstone(&b"k"[..], 2, 500));
        assert_eq!(s.buffer_deadline(&mem), Some(800));
    }

    #[test]
    fn tiny_threshold_still_positive() {
        let s = TtlSchedule::new(&opts(TtlAllocation::Exponential, 3, 5, 10));
        assert!(s.buffer_ttl() >= 1);
        for level in 0..4 {
            assert!(s.level_ttl(level) >= 1);
        }
    }
}
