//! Engine configuration.
//!
//! The options mirror the knobs the Acheron demo exposes: the LSM shape
//! (buffer size, size ratio `T`, level count), the compaction strategy
//! (the *data layout* primitive), FADE's delete-persistence threshold
//! `D_th` with its TTL-allocation and file-picking policies, and KiWi's
//! delete-tile granularity `h`.

use std::sync::Arc;

use acheron_types::{Clock, Error, LogicalClock, Result, Tick};

/// Data-layout primitive: how runs are organized per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompactionLayout {
    /// One sorted run per level; saturated levels push one file down
    /// (partial compaction). Read-optimized.
    Leveling,
    /// Up to `T` runs per level; a full level merges into one run of the
    /// next. Write-optimized.
    Tiering,
    /// Tiering on upper levels, leveling on the last level
    /// (Dostoevsky-style hybrid).
    LazyLeveling,
}

/// Data-movement primitive: which file a saturated level compacts first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilePickPolicy {
    /// The file overlapping the fewest bytes in the next level
    /// (write-amplification-optimal; the delete-blind baseline).
    MinOverlap,
    /// The file with the highest point-tombstone density.
    TombstoneDensity,
    /// The file with the oldest tombstone (most urgent for persistence).
    OldestTombstone,
    /// Round-robin over the level's key space.
    RoundRobin,
}

/// How FADE splits the persistence threshold `D_th` into per-level TTLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TtlAllocation {
    /// `d_i = D_th / (L-1)` for every level.
    Uniform,
    /// `d_i ∝ T^i` (levels hold exponentially more data, so tombstones
    /// get exponentially more time in deeper levels); Lethe's choice.
    Exponential,
}

/// FADE configuration: bounded tombstone persistence.
#[derive(Debug, Clone)]
pub struct FadeOptions {
    /// The delete persistence threshold `D_th`, in clock ticks: every
    /// point tombstone must be purged (reach and leave the last level)
    /// within this many ticks of its insertion.
    pub delete_persistence_threshold: Tick,
    /// TTL split across levels.
    pub ttl_allocation: TtlAllocation,
    /// File choice when a level is saturated but nothing has expired.
    pub saturation_pick: FilePickPolicy,
}

impl Default for FadeOptions {
    fn default() -> Self {
        FadeOptions {
            delete_persistence_threshold: 100_000,
            ttl_allocation: TtlAllocation::Exponential,
            // Lethe's default FADE mode keeps the write-optimized
            // min-overlap pick for saturation compactions; the TTL
            // trigger alone provides the persistence bound. Density-
            // driven picking is an ablation variant (see E9).
            saturation_pick: FilePickPolicy::MinOverlap,
        }
    }
}

/// Top-level engine options.
#[derive(Clone)]
pub struct DbOptions {
    /// Memtable flush threshold in bytes.
    pub write_buffer_bytes: usize,
    /// LSM size ratio `T` between adjacent levels.
    pub size_ratio: u64,
    /// Number of L0 files that triggers an L0→L1 compaction.
    pub level0_file_limit: usize,
    /// Maximum number of levels (level `max_levels - 1` is the bottom).
    pub max_levels: usize,
    /// Byte budget of level 1; level `i` targets `base * T^(i-1)`.
    pub level1_target_bytes: u64,
    /// Target size of an individual output file during compaction.
    pub target_file_bytes: u64,
    /// Data layout across levels.
    pub layout: CompactionLayout,
    /// Delete-blind file pick for the non-FADE baseline.
    pub baseline_pick: FilePickPolicy,
    /// FADE (bounded delete persistence); `None` = delete-blind baseline.
    pub fade: Option<FadeOptions>,
    /// SSTable page size in bytes.
    pub page_size: usize,
    /// KiWi delete-tile granularity `h` (pages per tile); 1 = classic.
    pub pages_per_tile: usize,
    /// Bloom bits per key (0 disables filters).
    pub bloom_bits_per_key: usize,
    /// Shared page-cache capacity in bytes (0 disables caching).
    /// Experiments default to 0 so measured I/O reflects the layout, not
    /// cache luck.
    pub block_cache_bytes: usize,
    /// Unified memory budget in bytes, arbitrated adaptively across the
    /// write buffer, the block cache, and pinned table metadata by a
    /// [`crate::memory::MemoryBudget`].
    ///
    /// **Precedence rule:** when this is non-zero it *overrides* the
    /// static sizing knobs — the memtable seal threshold comes from the
    /// budget's current write-buffer share (not `write_buffer_bytes`)
    /// and the page cache is created at the budget's cache share and
    /// resized by the tuner (`block_cache_bytes` is ignored, and a
    /// cache exists even when it is 0). When this is zero (the
    /// default), behavior is exactly legacy: `write_buffer_bytes` seals
    /// memtables, `block_cache_bytes` sizes the optional cache, and no
    /// tuner runs. On a sharded fleet one budget spans every shard:
    /// each shard's memtable allowance is the write-buffer share
    /// divided by the shard count, and all shards share one cache.
    pub memory_budget_bytes: usize,
    /// Sync the WAL on every commit.
    pub wal_sync: bool,
    /// Background maintenance threads owning flushes and compactions.
    /// `0` runs all maintenance synchronously inside the write path (the
    /// deterministic mode experiments use); the default is one less than
    /// the machine's available parallelism. See `ARCHITECTURE.md` for
    /// the executor's concurrency model.
    pub background_threads: usize,
    /// Soft L0 limit: at or above this many L0 files, each write is
    /// briefly delayed so maintenance can catch up. Only meaningful with
    /// `background_threads > 0`.
    pub l0_slowdown_files: usize,
    /// Hard L0 limit: at or above this many L0 files, writes block until
    /// compaction brings the count back down. Must be >=
    /// `l0_slowdown_files`. Only meaningful with `background_threads > 0`.
    pub l0_stall_files: usize,
    /// Maximum sealed (immutable) memtables queued for flush before
    /// writes stall. Only meaningful with `background_threads > 0`.
    pub max_imm_memtables: usize,
    /// Capacity of the flight-recorder event ring ([`crate::obs`]):
    /// the engine retains the newest this-many maintenance events for
    /// the `events` command. Must be >= 1; emission cost is
    /// capacity-independent.
    pub event_log_capacity: usize,
    /// Per-op trace sampling: one in this many operations gets a full
    /// stage breakdown ([`crate::obs::trace`]). `0` (the default)
    /// disables sampling — the trace hooks then cost one untaken
    /// branch per op. Must be a power of two so the sampler is a mask
    /// over the op counter, not a division.
    pub trace_sample_every: u64,
    /// Key-value separation threshold in bytes: a put whose value is at
    /// least this long has the value appended to the value log and only
    /// a fixed-size pointer stored in the tree. `0` disables separation
    /// (the default; every value stays inline and on-disk layouts are
    /// byte-identical to pre-vlog builds).
    pub value_separation_threshold: usize,
    /// Target size of one value-log segment file; the writer rolls to a
    /// fresh segment once the head reaches this size.
    pub vlog_segment_bytes: u64,
    /// Dead-byte fraction (percent, 0-100) at which vlog GC rewrites a
    /// segment even before any dead extent's FADE deadline is due.
    pub vlog_gc_dead_ratio_percent: u8,
    /// Clock used for tombstone aging; defaults to a logical clock that
    /// the engine advances once per write operation.
    pub clock: Arc<dyn Clock>,
    /// Advance the logical clock by one tick per write operation.
    /// (No effect on externally driven clocks.)
    pub auto_advance_clock: bool,
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("write_buffer_bytes", &self.write_buffer_bytes)
            .field("size_ratio", &self.size_ratio)
            .field("level0_file_limit", &self.level0_file_limit)
            .field("max_levels", &self.max_levels)
            .field("layout", &self.layout)
            .field("fade", &self.fade)
            .field("pages_per_tile", &self.pages_per_tile)
            .field("background_threads", &self.background_threads)
            .field(
                "value_separation_threshold",
                &self.value_separation_threshold,
            )
            .field("trace_sample_every", &self.trace_sample_every)
            .finish_non_exhaustive()
    }
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            write_buffer_bytes: 4 << 20,
            size_ratio: 4,
            level0_file_limit: 4,
            max_levels: 5,
            level1_target_bytes: 16 << 20,
            target_file_bytes: 4 << 20,
            layout: CompactionLayout::Leveling,
            baseline_pick: FilePickPolicy::MinOverlap,
            fade: None,
            page_size: 4096,
            pages_per_tile: 1,
            bloom_bits_per_key: 10,
            block_cache_bytes: 0,
            memory_budget_bytes: 0,
            wal_sync: false,
            background_threads: std::thread::available_parallelism()
                .map_or(1, |n| n.get().saturating_sub(1)),
            l0_slowdown_files: 8,
            l0_stall_files: 16,
            max_imm_memtables: 2,
            event_log_capacity: 4096,
            trace_sample_every: 0,
            value_separation_threshold: 0,
            vlog_segment_bytes: 8 << 20,
            vlog_gc_dead_ratio_percent: 50,
            clock: Arc::new(LogicalClock::new()),
            auto_advance_clock: true,
        }
    }
}

impl DbOptions {
    /// A small-scale configuration convenient for tests and experiments:
    /// kilobyte-sized buffers so trees grow deep quickly.
    pub fn small() -> DbOptions {
        DbOptions {
            write_buffer_bytes: 16 << 10,
            level1_target_bytes: 64 << 10,
            target_file_bytes: 16 << 10,
            page_size: 1024,
            // Synchronous maintenance: a given op sequence always
            // produces the same tree, which the experiments rely on.
            background_threads: 0,
            ..DbOptions::default()
        }
    }

    /// Enable FADE with threshold `d_th` (keeping other FADE defaults).
    pub fn with_fade(mut self, d_th: Tick) -> DbOptions {
        self.fade = Some(FadeOptions {
            delete_persistence_threshold: d_th,
            ..FadeOptions::default()
        });
        self
    }

    /// Set the KiWi tile granularity.
    pub fn with_tile(mut self, h: usize) -> DbOptions {
        self.pages_per_tile = h;
        self
    }

    /// Enable key-value separation for values of `threshold` bytes or
    /// more.
    pub fn with_value_separation(mut self, threshold: usize) -> DbOptions {
        self.value_separation_threshold = threshold;
        self
    }

    /// Enable the unified adaptive memory budget (see
    /// [`DbOptions::memory_budget_bytes`] for the precedence rule).
    pub fn with_memory_budget(mut self, total_bytes: usize) -> DbOptions {
        self.memory_budget_bytes = total_bytes;
        self
    }

    /// Sample one in `every` operations for per-op tracing (`every`
    /// must be a power of two; 0 disables).
    pub fn with_trace_sampling(mut self, every: u64) -> DbOptions {
        self.trace_sample_every = every;
        self
    }

    /// Validate option consistency.
    pub fn validate(&self) -> Result<()> {
        if self.size_ratio < 2 {
            return Err(Error::invalid_argument("size_ratio must be >= 2"));
        }
        if self.max_levels < 2 {
            return Err(Error::invalid_argument("max_levels must be >= 2"));
        }
        if self.max_levels > 16 {
            return Err(Error::invalid_argument("max_levels must be <= 16"));
        }
        if self.write_buffer_bytes < 1024 {
            return Err(Error::invalid_argument(
                "write_buffer_bytes must be >= 1024",
            ));
        }
        if self.level0_file_limit == 0 {
            return Err(Error::invalid_argument("level0_file_limit must be >= 1"));
        }
        if self.target_file_bytes == 0 {
            return Err(Error::invalid_argument("target_file_bytes must be >= 1"));
        }
        if let Some(fade) = &self.fade {
            if fade.delete_persistence_threshold == 0 {
                return Err(Error::invalid_argument(
                    "delete_persistence_threshold must be >= 1 tick",
                ));
            }
        }
        if self.pages_per_tile == 0 {
            return Err(Error::invalid_argument("pages_per_tile must be >= 1"));
        }
        if self.l0_slowdown_files == 0 {
            return Err(Error::invalid_argument("l0_slowdown_files must be >= 1"));
        }
        if self.l0_stall_files < self.l0_slowdown_files {
            return Err(Error::invalid_argument(
                "l0_stall_files must be >= l0_slowdown_files",
            ));
        }
        if self.max_imm_memtables == 0 {
            return Err(Error::invalid_argument("max_imm_memtables must be >= 1"));
        }
        if self.background_threads > 512 {
            return Err(Error::invalid_argument("background_threads must be <= 512"));
        }
        if self.event_log_capacity == 0 {
            return Err(Error::invalid_argument("event_log_capacity must be >= 1"));
        }
        if self.trace_sample_every > 0 && !self.trace_sample_every.is_power_of_two() {
            return Err(Error::invalid_argument(
                "trace_sample_every must be 0 (off) or a power of two",
            ));
        }
        if self.value_separation_threshold > 0 && self.vlog_segment_bytes == 0 {
            return Err(Error::invalid_argument("vlog_segment_bytes must be >= 1"));
        }
        if self.vlog_gc_dead_ratio_percent > 100 {
            return Err(Error::invalid_argument(
                "vlog_gc_dead_ratio_percent must be <= 100",
            ));
        }
        if self.memory_budget_bytes > 0 && self.memory_budget_bytes < 64 << 10 {
            return Err(Error::invalid_argument(
                "memory_budget_bytes must be 0 (disabled) or >= 64 KiB",
            ));
        }
        Ok(())
    }

    /// Byte budget for level `level` (levels >= 1).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.level1_target_bytes
            .saturating_mul(self.size_ratio.saturating_pow(level as u32 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        DbOptions::default().validate().unwrap();
        DbOptions::small().validate().unwrap();
        DbOptions::small()
            .with_fade(1000)
            .with_tile(8)
            .validate()
            .unwrap();
    }

    #[test]
    fn invalid_combinations_rejected() {
        assert!(DbOptions {
            size_ratio: 1,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            max_levels: 1,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            max_levels: 17,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            write_buffer_bytes: 10,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            level0_file_limit: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions::default().with_fade(0).validate().is_err());
        assert!(DbOptions {
            pages_per_tile: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            l0_slowdown_files: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            l0_stall_files: 2,
            l0_slowdown_files: 4,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            max_imm_memtables: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            background_threads: 10_000,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            event_log_capacity: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        assert!(DbOptions::default()
            .with_trace_sampling(3)
            .validate()
            .is_err());
        assert!(DbOptions::default()
            .with_trace_sampling(64)
            .validate()
            .is_ok());
        assert!(DbOptions::default()
            .with_trace_sampling(1)
            .validate()
            .is_ok());
        assert!(DbOptions::default()
            .with_trace_sampling(0)
            .validate()
            .is_ok());
        assert!(DbOptions {
            vlog_segment_bytes: 0,
            ..DbOptions::default().with_value_separation(256)
        }
        .validate()
        .is_err());
        assert!(DbOptions {
            vlog_gc_dead_ratio_percent: 101,
            ..DbOptions::default()
        }
        .validate()
        .is_err());
        // Separation off tolerates a zero segment size.
        assert!(DbOptions {
            vlog_segment_bytes: 0,
            ..DbOptions::default()
        }
        .validate()
        .is_ok());
        // A memory budget too small to split is rejected; zero (off)
        // and a real budget are fine.
        assert!(DbOptions::default()
            .with_memory_budget(1024)
            .validate()
            .is_err());
        assert!(DbOptions::default()
            .with_memory_budget(8 << 20)
            .validate()
            .is_ok());
        assert!(DbOptions::default()
            .with_memory_budget(0)
            .validate()
            .is_ok());
    }

    #[test]
    fn small_options_are_synchronous() {
        // Experiments and unit tests rely on small() being deterministic.
        assert_eq!(DbOptions::small().background_threads, 0);
    }

    #[test]
    fn level_targets_grow_by_size_ratio() {
        let opts = DbOptions {
            level1_target_bytes: 100,
            size_ratio: 10,
            ..DbOptions::default()
        };
        assert_eq!(opts.level_target_bytes(1), 100);
        assert_eq!(opts.level_target_bytes(2), 1000);
        assert_eq!(opts.level_target_bytes(3), 10_000);
    }
}
