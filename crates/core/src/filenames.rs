//! File naming conventions inside a database directory.

use acheron_vfs::join;

/// Path of table file `id`.
pub fn sst_path(dir: &str, id: u64) -> String {
    join(dir, &format!("{id:06}.sst"))
}

/// Path of WAL segment `number`.
pub fn wal_path(dir: &str, number: u64) -> String {
    join(dir, &format!("{number:06}.log"))
}

/// Path of value-log segment `segment` (naming delegated to the vlog
/// crate so the two can never drift).
pub fn vlog_path(dir: &str, segment: u64) -> String {
    join(dir, &acheron_vlog::segment_file_name(segment))
}

/// Name (not path) of manifest `number`.
pub fn manifest_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

/// Parse a directory entry name into its kind.
#[derive(Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `NNNNNN.sst`
    Table(u64),
    /// `NNNNNN.log`
    Wal(u64),
    /// `MANIFEST-NNNNNN`
    Manifest(u64),
    /// `vlog-NNNNNN.vlg`
    Vlog(u64),
    /// `CURRENT`
    Current,
    /// `*.tmp` — scratch half of a write-temp-then-rename sequence
    /// (CURRENT updates, WAL tear healing). Only ever live mid-open;
    /// one found on disk is crash debris.
    Temp,
    /// Anything else.
    Unknown,
}

/// Classify a file name.
pub fn parse_file_name(name: &str) -> FileKind {
    if name == "CURRENT" {
        return FileKind::Current;
    }
    if name.ends_with(".tmp") {
        return FileKind::Temp;
    }
    if let Some(num) = name.strip_prefix("MANIFEST-") {
        if let Ok(n) = num.parse::<u64>() {
            return FileKind::Manifest(n);
        }
    }
    if let Some(stem) = name.strip_suffix(".sst") {
        if let Ok(n) = stem.parse::<u64>() {
            return FileKind::Table(n);
        }
    }
    if let Some(stem) = name.strip_suffix(".log") {
        if let Ok(n) = stem.parse::<u64>() {
            return FileKind::Wal(n);
        }
    }
    if let Some(seg) = acheron_vlog::parse_segment_file_name(name) {
        return FileKind::Vlog(seg);
    }
    FileKind::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_stable() {
        assert_eq!(sst_path("db", 7), "db/000007.sst");
        assert_eq!(wal_path("db", 123456), "db/123456.log");
        assert_eq!(manifest_name(3), "MANIFEST-000003");
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(parse_file_name("000007.sst"), FileKind::Table(7));
        assert_eq!(parse_file_name("000009.log"), FileKind::Wal(9));
        assert_eq!(parse_file_name("MANIFEST-000003"), FileKind::Manifest(3));
        assert_eq!(parse_file_name("CURRENT"), FileKind::Current);
        assert_eq!(parse_file_name("CURRENT.tmp"), FileKind::Temp);
        assert_eq!(parse_file_name("000042.log.tmp"), FileKind::Temp);
        assert_eq!(parse_file_name("vlog-000004.vlg"), FileKind::Vlog(4));
        assert_eq!(parse_file_name("vlog-000004.vlg.tmp"), FileKind::Temp);
        assert_eq!(parse_file_name("vlog-x.vlg"), FileKind::Unknown);
        assert_eq!(vlog_path("db", 4), "db/vlog-000004.vlg");
        assert_eq!(parse_file_name("junk.sst2"), FileKind::Unknown);
        assert_eq!(parse_file_name("abc.sst"), FileKind::Unknown);
        assert_eq!(parse_file_name("MANIFEST-xyz"), FileKind::Unknown);
    }

    #[test]
    fn large_ids_widen_gracefully() {
        assert_eq!(sst_path("d", 1_000_000), "d/1000000.sst");
        assert_eq!(parse_file_name("1000000.sst"), FileKind::Table(1_000_000));
    }
}
