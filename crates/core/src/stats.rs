//! Engine-wide statistics, including the delete-persistence histogram —
//! the headline measurement of the reproduction.

use std::sync::atomic::{AtomicU64, Ordering};

use acheron_types::Tick;
use parking_lot::Mutex;

/// Number of power-of-two latency buckets.
const HISTOGRAM_BUCKETS: usize = 40;

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the bucket boundaries (upper bound of
    /// the bucket containing the q-th sample).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i).
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(1)
                };
            }
        }
        self.max()
    }

    /// [`LatencyHistogram::quantile`] with the argument in percent:
    /// `percentile(99.0)` is the p99 upper bound from the power-of-two
    /// buckets.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// A plain-data summary of the histogram (count/mean/max and the
    /// p50/p90/p99 bucket upper bounds), for export and display.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            max: self.max(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Plain-data summary of a [`LatencyHistogram`]: what a remote stats
/// consumer needs without shipping the buckets themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Maximum sample value.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSummary {
    /// Combine two summaries conservatively. Counts sum and means are
    /// count-weighted (both exact); max/p50/p90/p99 take the pairwise
    /// maximum, which upper-bounds the true merged quantiles — the safe
    /// direction for latency SLO reporting, where an aggregated p99 must
    /// never *understate* the worst shard. (True quantile merging needs
    /// the buckets, which a plain-data summary no longer has.)
    pub fn merge(&self, other: &HistogramSummary) -> HistogramSummary {
        let count = self.count + other.count;
        let mean = if count == 0 {
            0.0
        } else {
            (self.mean * self.count as f64 + other.mean * other.count as f64) / count as f64
        };
        HistogramSummary {
            count,
            mean,
            max: self.max.max(other.max),
            p50: self.p50.max(other.p50),
            p90: self.p90.max(other.p90),
            p99: self.p99.max(other.p99),
        }
    }
}

/// Monotone counters describing everything the engine has done.
#[derive(Debug, Default)]
pub struct DbStats {
    /// Put operations accepted.
    pub puts: AtomicU64,
    /// Point deletes accepted.
    pub deletes: AtomicU64,
    /// Secondary range deletes accepted.
    pub range_deletes: AtomicU64,
    /// Sort-key range deletes accepted.
    pub sort_range_deletes: AtomicU64,
    /// Point lookups served.
    pub gets: AtomicU64,
    /// Range scans served.
    pub scans: AtomicU64,
    /// User payload bytes (key+value) accepted.
    pub user_bytes: AtomicU64,
    /// Memtable flushes performed.
    pub flushes: AtomicU64,
    /// Compactions performed.
    pub compactions: AtomicU64,
    /// Compactions triggered by FADE TTL expiry rather than saturation.
    pub ttl_compactions: AtomicU64,
    /// Bytes read by compactions.
    pub compaction_bytes_in: AtomicU64,
    /// Bytes written by compactions and flushes (table files only).
    pub compaction_bytes_out: AtomicU64,
    /// Entries dropped because a newer version/tombstone shadowed them.
    pub entries_shadowed: AtomicU64,
    /// Entries dropped because a secondary range tombstone covered them.
    pub entries_range_purged: AtomicU64,
    /// Entries dropped because a sort-key range tombstone shadowed them.
    pub entries_key_range_purged: AtomicU64,
    /// Point tombstones physically dropped at the bottom level.
    pub tombstones_purged: AtomicU64,
    /// Sort-key range tombstones physically purged at the bottom level.
    pub key_range_tombstones_purged: AtomicU64,
    /// KiWi pages dropped wholesale (never read) during compactions.
    pub pages_dropped: AtomicU64,
    /// Delete persistence latency: recorded for each purged tombstone as
    /// (purge tick - delete tick).
    pub persistence_latency: LatencyHistogram,
    /// Persistence-threshold violations observed (FADE should keep this
    /// at zero; the baseline will not).
    pub persistence_violations: AtomicU64,
    /// Ticks of the most recent compaction per reason, for debugging.
    pub last_compaction_reason: Mutex<Option<String>>,
    /// Stall episodes: writes that blocked on the hard L0 / sealed-
    /// memtable limits until background maintenance caught up.
    pub write_stalls: AtomicU64,
    /// Writes briefly delayed because L0 reached the soft limit.
    pub write_slowdowns: AtomicU64,
    /// Wall-clock microseconds per stall episode.
    pub stall_micros: LatencyHistogram,
    /// Wall-clock microseconds per memtable flush (table build through
    /// manifest install).
    pub flush_micros: LatencyHistogram,
    /// Wall-clock microseconds per compaction (merge through install).
    pub compaction_micros: LatencyHistogram,
    /// Deepest the sealed-memtable queue has ever grown.
    pub imm_queue_peak: AtomicU64,
    /// Failures recorded by the background maintenance executor.
    pub background_errors: AtomicU64,
    /// Commit groups published by write leaders (each group is one WAL
    /// append+fsync covering every queued request).
    pub commit_groups: AtomicU64,
    /// Distribution of operations per commit group: the group-commit
    /// batching factor under concurrent writers.
    pub commit_group_ops: LatencyHistogram,
    /// WAL fsyncs issued (at most one per commit group when `wal_sync`).
    pub wal_syncs: AtomicU64,
    /// Fsyncs avoided by group commit: requests that rode a leader's
    /// sync instead of issuing their own.
    pub wal_syncs_saved: AtomicU64,
    /// Read-view publications (memtable seal, flush install, compaction
    /// install, range delete, and one per commit group's seqno bump).
    pub read_view_swaps: AtomicU64,
    /// Values separated into the value log at commit time.
    pub vlog_appends: AtomicU64,
    /// Framed bytes appended to the value log (commit + GC rewrites).
    pub vlog_bytes_written: AtomicU64,
    /// Value-pointer dereferences served by reads and scans.
    pub vlog_reads: AtomicU64,
    /// Value-log GC passes that rewrote a segment's survivors.
    pub vlog_gc_rewrites: AtomicU64,
    /// Live bytes re-appended to the vlog head by GC rewrites.
    pub vlog_gc_rewritten_bytes: AtomicU64,
    /// Dead bytes reclaimed by deleting GC'd segments.
    pub vlog_gc_reclaimed_bytes: AtomicU64,
    /// Value-log segment files deleted (GC and recovery orphan sweep).
    pub vlog_segments_deleted: AtomicU64,
    /// Operations that received a full per-op trace (sampler hits plus
    /// wire-requested traces).
    pub traces_sampled: AtomicU64,
}

impl DbStats {
    /// Record a purged tombstone against the persistence threshold.
    pub fn record_tombstone_purge(&self, delete_tick: Tick, purge_tick: Tick, d_th: Option<Tick>) {
        let latency = purge_tick.saturating_sub(delete_tick);
        self.tombstones_purged.fetch_add(1, Ordering::Relaxed);
        self.persistence_latency.record(latency);
        if let Some(d) = d_th {
            if latency > d {
                self.persistence_violations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Write amplification so far: table bytes written / user bytes.
    pub fn write_amplification(&self) -> f64 {
        let user = self.user_bytes.load(Ordering::Relaxed);
        if user == 0 {
            return 0.0;
        }
        self.compaction_bytes_out.load(Ordering::Relaxed) as f64 / user as f64
    }

    /// A point-in-time, plain-data copy of every counter and histogram
    /// summary — the exportable form of the stats (the wire `stats`
    /// command serializes this).
    pub fn snapshot(&self) -> StatsSnapshot {
        use Ordering::Relaxed;
        StatsSnapshot {
            puts: self.puts.load(Relaxed),
            deletes: self.deletes.load(Relaxed),
            range_deletes: self.range_deletes.load(Relaxed),
            sort_range_deletes: self.sort_range_deletes.load(Relaxed),
            gets: self.gets.load(Relaxed),
            scans: self.scans.load(Relaxed),
            user_bytes: self.user_bytes.load(Relaxed),
            flushes: self.flushes.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
            ttl_compactions: self.ttl_compactions.load(Relaxed),
            compaction_bytes_in: self.compaction_bytes_in.load(Relaxed),
            compaction_bytes_out: self.compaction_bytes_out.load(Relaxed),
            entries_shadowed: self.entries_shadowed.load(Relaxed),
            entries_range_purged: self.entries_range_purged.load(Relaxed),
            entries_key_range_purged: self.entries_key_range_purged.load(Relaxed),
            tombstones_purged: self.tombstones_purged.load(Relaxed),
            key_range_tombstones_purged: self.key_range_tombstones_purged.load(Relaxed),
            pages_dropped: self.pages_dropped.load(Relaxed),
            persistence_latency: self.persistence_latency.summary(),
            persistence_violations: self.persistence_violations.load(Relaxed),
            write_stalls: self.write_stalls.load(Relaxed),
            write_slowdowns: self.write_slowdowns.load(Relaxed),
            stall_micros: self.stall_micros.summary(),
            flush_micros: self.flush_micros.summary(),
            compaction_micros: self.compaction_micros.summary(),
            imm_queue_peak: self.imm_queue_peak.load(Relaxed),
            background_errors: self.background_errors.load(Relaxed),
            commit_groups: self.commit_groups.load(Relaxed),
            commit_group_ops: self.commit_group_ops.summary(),
            wal_syncs: self.wal_syncs.load(Relaxed),
            wal_syncs_saved: self.wal_syncs_saved.load(Relaxed),
            read_view_swaps: self.read_view_swaps.load(Relaxed),
            vlog_appends: self.vlog_appends.load(Relaxed),
            vlog_bytes_written: self.vlog_bytes_written.load(Relaxed),
            vlog_reads: self.vlog_reads.load(Relaxed),
            vlog_gc_rewrites: self.vlog_gc_rewrites.load(Relaxed),
            vlog_gc_rewritten_bytes: self.vlog_gc_rewritten_bytes.load(Relaxed),
            vlog_gc_reclaimed_bytes: self.vlog_gc_reclaimed_bytes.load(Relaxed),
            vlog_segments_deleted: self.vlog_segments_deleted.load(Relaxed),
            traces_sampled: self.traces_sampled.load(Relaxed),
            // Cache and memory-budget fields live on the BlockCache /
            // MemoryBudget, not in DbStats; `Db::stats_snapshot` fills
            // them (and the fleet router fills them once for a shared
            // cache, so shard merges cannot multiply a global gauge).
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_inserted_bytes: 0,
            cache_used_bytes: 0,
            cache_capacity_bytes: 0,
            memory_budget_bytes: 0,
            memtable_budget_bytes: 0,
            pinned_bytes: 0,
            memory_adjustments: 0,
        }
    }
}

/// Plain-data, copyable snapshot of [`DbStats`] — safe to ship across
/// threads or the wire. Field meanings match the [`DbStats`] fields of
/// the same names.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub puts: u64,
    pub deletes: u64,
    pub range_deletes: u64,
    pub sort_range_deletes: u64,
    pub gets: u64,
    pub scans: u64,
    pub user_bytes: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub ttl_compactions: u64,
    pub compaction_bytes_in: u64,
    pub compaction_bytes_out: u64,
    pub entries_shadowed: u64,
    pub entries_range_purged: u64,
    pub entries_key_range_purged: u64,
    pub tombstones_purged: u64,
    pub key_range_tombstones_purged: u64,
    pub pages_dropped: u64,
    pub persistence_latency: HistogramSummary,
    pub persistence_violations: u64,
    pub write_stalls: u64,
    pub write_slowdowns: u64,
    pub stall_micros: HistogramSummary,
    pub flush_micros: HistogramSummary,
    pub compaction_micros: HistogramSummary,
    pub imm_queue_peak: u64,
    pub background_errors: u64,
    pub commit_groups: u64,
    pub commit_group_ops: HistogramSummary,
    pub wal_syncs: u64,
    pub wal_syncs_saved: u64,
    pub read_view_swaps: u64,
    pub vlog_appends: u64,
    pub vlog_bytes_written: u64,
    pub vlog_reads: u64,
    pub vlog_gc_rewrites: u64,
    pub vlog_gc_rewritten_bytes: u64,
    pub vlog_gc_reclaimed_bytes: u64,
    pub vlog_segments_deleted: u64,
    pub traces_sampled: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_inserted_bytes: u64,
    pub cache_used_bytes: u64,
    pub cache_capacity_bytes: u64,
    pub memory_budget_bytes: u64,
    pub memtable_budget_bytes: u64,
    pub pinned_bytes: u64,
    pub memory_adjustments: u64,
}

impl StatsSnapshot {
    /// Combine two snapshots into a fleet-wide view: counters sum,
    /// `imm_queue_peak` takes the worst shard, histogram summaries merge
    /// per [`HistogramSummary::merge`] (quantiles upper-bounded by the
    /// worst shard). Written as an exhaustive struct expression so a new
    /// field cannot be added without deciding how it aggregates.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts + other.puts,
            deletes: self.deletes + other.deletes,
            range_deletes: self.range_deletes + other.range_deletes,
            sort_range_deletes: self.sort_range_deletes + other.sort_range_deletes,
            gets: self.gets + other.gets,
            scans: self.scans + other.scans,
            user_bytes: self.user_bytes + other.user_bytes,
            flushes: self.flushes + other.flushes,
            compactions: self.compactions + other.compactions,
            ttl_compactions: self.ttl_compactions + other.ttl_compactions,
            compaction_bytes_in: self.compaction_bytes_in + other.compaction_bytes_in,
            compaction_bytes_out: self.compaction_bytes_out + other.compaction_bytes_out,
            entries_shadowed: self.entries_shadowed + other.entries_shadowed,
            entries_range_purged: self.entries_range_purged + other.entries_range_purged,
            entries_key_range_purged: self.entries_key_range_purged
                + other.entries_key_range_purged,
            tombstones_purged: self.tombstones_purged + other.tombstones_purged,
            key_range_tombstones_purged: self.key_range_tombstones_purged
                + other.key_range_tombstones_purged,
            pages_dropped: self.pages_dropped + other.pages_dropped,
            persistence_latency: self.persistence_latency.merge(&other.persistence_latency),
            persistence_violations: self.persistence_violations + other.persistence_violations,
            write_stalls: self.write_stalls + other.write_stalls,
            write_slowdowns: self.write_slowdowns + other.write_slowdowns,
            stall_micros: self.stall_micros.merge(&other.stall_micros),
            flush_micros: self.flush_micros.merge(&other.flush_micros),
            compaction_micros: self.compaction_micros.merge(&other.compaction_micros),
            imm_queue_peak: self.imm_queue_peak.max(other.imm_queue_peak),
            background_errors: self.background_errors + other.background_errors,
            commit_groups: self.commit_groups + other.commit_groups,
            commit_group_ops: self.commit_group_ops.merge(&other.commit_group_ops),
            wal_syncs: self.wal_syncs + other.wal_syncs,
            wal_syncs_saved: self.wal_syncs_saved + other.wal_syncs_saved,
            read_view_swaps: self.read_view_swaps + other.read_view_swaps,
            vlog_appends: self.vlog_appends + other.vlog_appends,
            vlog_bytes_written: self.vlog_bytes_written + other.vlog_bytes_written,
            vlog_reads: self.vlog_reads + other.vlog_reads,
            vlog_gc_rewrites: self.vlog_gc_rewrites + other.vlog_gc_rewrites,
            vlog_gc_rewritten_bytes: self.vlog_gc_rewritten_bytes + other.vlog_gc_rewritten_bytes,
            vlog_gc_reclaimed_bytes: self.vlog_gc_reclaimed_bytes + other.vlog_gc_reclaimed_bytes,
            vlog_segments_deleted: self.vlog_segments_deleted + other.vlog_segments_deleted,
            traces_sampled: self.traces_sampled + other.traces_sampled,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            cache_inserted_bytes: self.cache_inserted_bytes + other.cache_inserted_bytes,
            cache_used_bytes: self.cache_used_bytes + other.cache_used_bytes,
            cache_capacity_bytes: self.cache_capacity_bytes + other.cache_capacity_bytes,
            memory_budget_bytes: self.memory_budget_bytes + other.memory_budget_bytes,
            memtable_budget_bytes: self.memtable_budget_bytes + other.memtable_budget_bytes,
            pinned_bytes: self.pinned_bytes + other.pinned_bytes,
            memory_adjustments: self.memory_adjustments + other.memory_adjustments,
        }
    }

    /// Flatten into `(name, value)` pairs — the canonical wire/export
    /// form. Histogram means are rounded to integers; the remaining
    /// histogram fields are exported as `<name>_{count,max,p50,p90,p99}`.
    pub fn to_pairs(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = vec![
            ("puts".into(), self.puts),
            ("deletes".into(), self.deletes),
            ("range_deletes".into(), self.range_deletes),
            ("sort_range_deletes".into(), self.sort_range_deletes),
            ("gets".into(), self.gets),
            ("scans".into(), self.scans),
            ("user_bytes".into(), self.user_bytes),
            ("flushes".into(), self.flushes),
            ("compactions".into(), self.compactions),
            ("ttl_compactions".into(), self.ttl_compactions),
            ("compaction_bytes_in".into(), self.compaction_bytes_in),
            ("compaction_bytes_out".into(), self.compaction_bytes_out),
            ("entries_shadowed".into(), self.entries_shadowed),
            ("entries_range_purged".into(), self.entries_range_purged),
            (
                "entries_key_range_purged".into(),
                self.entries_key_range_purged,
            ),
            ("tombstones_purged".into(), self.tombstones_purged),
            (
                "key_range_tombstones_purged".into(),
                self.key_range_tombstones_purged,
            ),
            ("pages_dropped".into(), self.pages_dropped),
            ("persistence_violations".into(), self.persistence_violations),
            ("write_stalls".into(), self.write_stalls),
            ("write_slowdowns".into(), self.write_slowdowns),
            ("imm_queue_peak".into(), self.imm_queue_peak),
            ("background_errors".into(), self.background_errors),
            ("commit_groups".into(), self.commit_groups),
            ("wal_syncs".into(), self.wal_syncs),
            ("wal_syncs_saved".into(), self.wal_syncs_saved),
            ("read_view_swaps".into(), self.read_view_swaps),
            ("vlog_appends".into(), self.vlog_appends),
            ("vlog_bytes_written".into(), self.vlog_bytes_written),
            ("vlog_reads".into(), self.vlog_reads),
            ("vlog_gc_rewrites".into(), self.vlog_gc_rewrites),
            (
                "vlog_gc_rewritten_bytes".into(),
                self.vlog_gc_rewritten_bytes,
            ),
            (
                "vlog_gc_reclaimed_bytes".into(),
                self.vlog_gc_reclaimed_bytes,
            ),
            ("vlog_segments_deleted".into(), self.vlog_segments_deleted),
            ("traces_sampled".into(), self.traces_sampled),
            // Cache/memory names carry the exposition prefix directly so
            // the Prometheus rendering (which prints pair names
            // verbatim) emits the documented db_cache_* / db_memory_*
            // series.
            ("db_cache_hits".into(), self.cache_hits),
            ("db_cache_misses".into(), self.cache_misses),
            ("db_cache_evictions".into(), self.cache_evictions),
            ("db_cache_inserted_bytes".into(), self.cache_inserted_bytes),
            ("db_cache_used_bytes".into(), self.cache_used_bytes),
            ("db_cache_capacity_bytes".into(), self.cache_capacity_bytes),
            ("db_memory_budget_bytes".into(), self.memory_budget_bytes),
            (
                "db_memory_memtable_budget_bytes".into(),
                self.memtable_budget_bytes,
            ),
            ("db_memory_pinned_bytes".into(), self.pinned_bytes),
            (
                "db_memory_budget_adjustments".into(),
                self.memory_adjustments,
            ),
        ];
        for (name, h) in [
            ("persistence_latency", &self.persistence_latency),
            ("stall_micros", &self.stall_micros),
            ("flush_micros", &self.flush_micros),
            ("compaction_micros", &self.compaction_micros),
            ("commit_group_ops", &self.commit_group_ops),
        ] {
            out.push((format!("{name}_count"), h.count));
            out.push((format!("{name}_mean"), h.mean.round() as u64));
            out.push((format!("{name}_max"), h.max));
            out.push((format!("{name}_p50"), h.p50));
            out.push((format!("{name}_p90"), h.p90));
            out.push((format!("{name}_p99"), h.p99));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // Median is 500; the bucket upper bound containing it is 511.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0) >= 999);
        // The q=0 rank clamps to the first sample, which is 0 here.
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_zero_sample() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentile_matches_quantile() {
        let h = LatencyHistogram::default();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), h.quantile(0.5));
        assert_eq!(h.percentile(99.0), h.quantile(0.99));
        assert!(h.percentile(99.0) >= h.percentile(50.0));
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, h.percentile(50.0));
        assert_eq!(s.p99, h.percentile(99.0));
        assert_eq!(s.max, 999);
    }

    #[test]
    fn snapshot_copies_counters_and_flattens() {
        let s = DbStats::default();
        s.puts.store(7, Ordering::Relaxed);
        s.record_tombstone_purge(10, 30, Some(100));
        let snap = s.snapshot();
        assert_eq!(snap.puts, 7);
        assert_eq!(snap.tombstones_purged, 1);
        assert_eq!(snap.persistence_latency.count, 1);
        let pairs = snap.to_pairs();
        let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("puts"), Some(7));
        assert_eq!(get("persistence_latency_count"), Some(1));
        assert_eq!(get("persistence_latency_max"), Some(20));
    }

    #[test]
    fn to_pairs_covers_every_snapshot_field() {
        fn hist(seed: u64) -> HistogramSummary {
            HistogramSummary {
                count: seed,
                mean: seed as f64 + 0.25,
                max: seed + 1,
                p50: seed + 2,
                p90: seed + 3,
                p99: seed + 4,
            }
        }
        let snap = StatsSnapshot {
            puts: 1,
            deletes: 2,
            range_deletes: 3,
            sort_range_deletes: 25,
            gets: 4,
            scans: 5,
            user_bytes: 6,
            flushes: 7,
            compactions: 8,
            ttl_compactions: 9,
            compaction_bytes_in: 10,
            compaction_bytes_out: 11,
            entries_shadowed: 12,
            entries_range_purged: 13,
            entries_key_range_purged: 26,
            tombstones_purged: 14,
            key_range_tombstones_purged: 27,
            pages_dropped: 15,
            persistence_latency: hist(100),
            persistence_violations: 16,
            write_stalls: 17,
            write_slowdowns: 18,
            stall_micros: hist(200),
            flush_micros: hist(300),
            compaction_micros: hist(400),
            imm_queue_peak: 19,
            background_errors: 20,
            commit_groups: 21,
            commit_group_ops: hist(500),
            wal_syncs: 22,
            wal_syncs_saved: 23,
            read_view_swaps: 24,
            vlog_appends: 28,
            vlog_bytes_written: 29,
            vlog_reads: 30,
            vlog_gc_rewrites: 31,
            vlog_gc_rewritten_bytes: 32,
            vlog_gc_reclaimed_bytes: 33,
            vlog_segments_deleted: 34,
            traces_sampled: 45,
            cache_hits: 35,
            cache_misses: 36,
            cache_evictions: 37,
            cache_inserted_bytes: 38,
            cache_used_bytes: 39,
            cache_capacity_bytes: 40,
            memory_budget_bytes: 41,
            memtable_budget_bytes: 42,
            pinned_bytes: 43,
            memory_adjustments: 44,
        };
        // Destructure with no `..`: adding a field to StatsSnapshot
        // without deciding how it exports breaks this test at compile
        // time, which is the point — to_pairs must not silently drift.
        let StatsSnapshot {
            puts,
            deletes,
            range_deletes,
            sort_range_deletes,
            gets,
            scans,
            user_bytes,
            flushes,
            compactions,
            ttl_compactions,
            compaction_bytes_in,
            compaction_bytes_out,
            entries_shadowed,
            entries_range_purged,
            entries_key_range_purged,
            tombstones_purged,
            key_range_tombstones_purged,
            pages_dropped,
            persistence_latency,
            persistence_violations,
            write_stalls,
            write_slowdowns,
            stall_micros,
            flush_micros,
            compaction_micros,
            imm_queue_peak,
            background_errors,
            commit_groups,
            commit_group_ops,
            wal_syncs,
            wal_syncs_saved,
            read_view_swaps,
            vlog_appends,
            vlog_bytes_written,
            vlog_reads,
            vlog_gc_rewrites,
            vlog_gc_rewritten_bytes,
            vlog_gc_reclaimed_bytes,
            vlog_segments_deleted,
            traces_sampled,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_inserted_bytes,
            cache_used_bytes,
            cache_capacity_bytes,
            memory_budget_bytes,
            memtable_budget_bytes,
            pinned_bytes,
            memory_adjustments,
        } = snap;
        let pairs = snap.to_pairs();
        let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        let scalars = [
            ("puts", puts),
            ("deletes", deletes),
            ("range_deletes", range_deletes),
            ("sort_range_deletes", sort_range_deletes),
            ("gets", gets),
            ("scans", scans),
            ("user_bytes", user_bytes),
            ("flushes", flushes),
            ("compactions", compactions),
            ("ttl_compactions", ttl_compactions),
            ("compaction_bytes_in", compaction_bytes_in),
            ("compaction_bytes_out", compaction_bytes_out),
            ("entries_shadowed", entries_shadowed),
            ("entries_range_purged", entries_range_purged),
            ("entries_key_range_purged", entries_key_range_purged),
            ("tombstones_purged", tombstones_purged),
            ("key_range_tombstones_purged", key_range_tombstones_purged),
            ("pages_dropped", pages_dropped),
            ("persistence_violations", persistence_violations),
            ("write_stalls", write_stalls),
            ("write_slowdowns", write_slowdowns),
            ("imm_queue_peak", imm_queue_peak),
            ("background_errors", background_errors),
            ("commit_groups", commit_groups),
            ("wal_syncs", wal_syncs),
            ("wal_syncs_saved", wal_syncs_saved),
            ("read_view_swaps", read_view_swaps),
            ("vlog_appends", vlog_appends),
            ("vlog_bytes_written", vlog_bytes_written),
            ("vlog_reads", vlog_reads),
            ("vlog_gc_rewrites", vlog_gc_rewrites),
            ("vlog_gc_rewritten_bytes", vlog_gc_rewritten_bytes),
            ("vlog_gc_reclaimed_bytes", vlog_gc_reclaimed_bytes),
            ("vlog_segments_deleted", vlog_segments_deleted),
            ("traces_sampled", traces_sampled),
            ("db_cache_hits", cache_hits),
            ("db_cache_misses", cache_misses),
            ("db_cache_evictions", cache_evictions),
            ("db_cache_inserted_bytes", cache_inserted_bytes),
            ("db_cache_used_bytes", cache_used_bytes),
            ("db_cache_capacity_bytes", cache_capacity_bytes),
            ("db_memory_budget_bytes", memory_budget_bytes),
            ("db_memory_memtable_budget_bytes", memtable_budget_bytes),
            ("db_memory_pinned_bytes", pinned_bytes),
            ("db_memory_budget_adjustments", memory_adjustments),
        ];
        for (name, value) in scalars {
            assert_eq!(
                get(name),
                Some(value),
                "scalar {name} missing from to_pairs"
            );
        }
        let histograms = [
            ("persistence_latency", persistence_latency),
            ("stall_micros", stall_micros),
            ("flush_micros", flush_micros),
            ("compaction_micros", compaction_micros),
            ("commit_group_ops", commit_group_ops),
        ];
        for (name, h) in histograms {
            assert_eq!(get(&format!("{name}_count")), Some(h.count), "{name}");
            assert_eq!(
                get(&format!("{name}_mean")),
                Some(h.mean.round() as u64),
                "{name}"
            );
            assert_eq!(get(&format!("{name}_max")), Some(h.max), "{name}");
            assert_eq!(get(&format!("{name}_p50")), Some(h.p50), "{name}");
            assert_eq!(get(&format!("{name}_p90")), Some(h.p90), "{name}");
            assert_eq!(get(&format!("{name}_p99")), Some(h.p99), "{name}");
        }
        // And nothing extra: every exported pair traces back to a field.
        assert_eq!(pairs.len(), scalars.len() + 6 * histograms.len());
    }

    #[test]
    fn merge_sums_counters_and_upper_bounds_quantiles() {
        let a = StatsSnapshot {
            puts: 10,
            imm_queue_peak: 3,
            persistence_latency: HistogramSummary {
                count: 4,
                mean: 10.0,
                max: 40,
                p50: 8,
                p90: 20,
                p99: 40,
            },
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            puts: 5,
            imm_queue_peak: 7,
            persistence_latency: HistogramSummary {
                count: 12,
                mean: 2.0,
                max: 16,
                p50: 2,
                p90: 30,
                p99: 31,
            },
            ..StatsSnapshot::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.puts, 15);
        assert_eq!(m.imm_queue_peak, 7, "peak is a max, not a sum");
        let h = m.persistence_latency;
        assert_eq!(h.count, 16);
        assert!((h.mean - 4.0).abs() < 1e-9, "count-weighted mean");
        assert_eq!(h.max, 40);
        assert_eq!((h.p50, h.p90, h.p99), (8, 30, 40), "worst-shard quantiles");
        // Merging with an empty snapshot is the identity.
        assert_eq!(a.merge(&StatsSnapshot::default()), a);
    }

    #[test]
    fn purge_recording_flags_violations() {
        let s = DbStats::default();
        s.record_tombstone_purge(100, 150, Some(60));
        s.record_tombstone_purge(100, 180, Some(60));
        assert_eq!(s.tombstones_purged.load(Ordering::Relaxed), 2);
        assert_eq!(s.persistence_violations.load(Ordering::Relaxed), 1);
        // Without a threshold nothing is a violation.
        s.record_tombstone_purge(0, 1_000_000, None);
        assert_eq!(s.persistence_violations.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn write_amplification_ratio() {
        let s = DbStats::default();
        assert_eq!(s.write_amplification(), 0.0);
        s.user_bytes.store(100, Ordering::Relaxed);
        s.compaction_bytes_out.store(450, Ordering::Relaxed);
        assert!((s.write_amplification() - 4.5).abs() < 1e-9);
    }
}
