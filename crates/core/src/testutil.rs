//! Test fixtures and the deterministic crash-recovery harness.
//!
//! Two kinds of tooling live here:
//!
//! * **File fixtures** ([`make_file`] / [`make_file_with`]) — build real
//!   table files on a [`MemFs`] for unit tests of versions, pickers,
//!   and compactions.
//! * **The crash-recovery harness** — drive a seeded workload of puts
//!   and deletes against a database on a fault-injecting filesystem
//!   ([`FaultVfs`]), cut power at a chosen durability point (sync or
//!   rename), reboot on the surviving bytes, reopen, and check the
//!   recovery invariants the engine promises:
//!
//!   1. every acknowledged (WAL-synced) write is readable;
//!   2. no acknowledged delete is resurrected;
//!   3. the surviving image and the recovered image are `doctor`-clean;
//!   4. FADE's delete-persistence bound still holds going forward.
//!
//!   [`run_crash_point`] checks one crash instant; [`run_crash_suite`]
//!   sweeps many; [`run_recovery_crash_point`] crashes a second time
//!   *during the recovery itself*, exercising the repair path's own
//!   crash windows (tear healing, dropped-segment deletion, manifest
//!   snapshot + GC). Violations are *collected*, not panicked, so tests
//!   can also assert that a deliberately broken ordering — see
//!   [`demonstrate_delete_before_manifest`] — is in fact caught.
//!
//! Everything is deterministic for `background_threads = 0`: the same
//! [`CrashConfig`] enumerates the same durability points and produces
//! the same outcomes. With workers, crash points land wherever thread
//! timing puts the n-th sync — each run is still a valid (and checked)
//! crash, just not a reproducible one.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use acheron_sstable::{Table, TableBuilder, TableOptions};
use acheron_types::{Entry, Result};
use acheron_vfs::{CutDurability, FaultVfs, MemFs, Vfs};

use crate::db::Db;
use crate::doctor;
use crate::options::DbOptions;
use crate::version::FileMeta;

/// Build a real table file on `fs` and wrap it in a [`FileMeta`].
///
/// Keys are `key{NNNNNN}` over `key_ids`; seqnos start at `base_seq`;
/// dkeys equal the key id. `tombstone_every` (if nonzero) turns every
/// n-th entry into a tombstone whose tick equals its dkey.
#[allow(clippy::too_many_arguments)]
pub fn make_file_with(
    fs: &MemFs,
    id: u64,
    level: usize,
    run: u64,
    key_ids: Range<u32>,
    base_seq: u64,
    tombstone_every: u32,
    created_tick: u64,
) -> Arc<FileMeta> {
    let path = crate::filenames::sst_path("", id);
    let mut b = TableBuilder::new(fs.create(&path).unwrap(), TableOptions::default()).unwrap();
    for (i, k) in key_ids.enumerate() {
        let e = if tombstone_every != 0 && k % tombstone_every == 0 {
            Entry::tombstone(
                format!("key{k:06}").into_bytes(),
                base_seq + i as u64,
                u64::from(k),
            )
        } else {
            Entry::put(
                format!("key{k:06}").into_bytes(),
                b"v".to_vec(),
                base_seq + i as u64,
                u64::from(k),
            )
        };
        b.add(&e).unwrap();
    }
    let stats = b.finish().unwrap();
    let table = Table::open(fs.open(&path).unwrap()).unwrap();
    Arc::new(FileMeta {
        id,
        level,
        run,
        size_bytes: fs.file_size(&path).unwrap(),
        stats,
        created_tick,
        table,
    })
}

/// Plain puts-only file.
pub fn make_file(
    fs: &MemFs,
    id: u64,
    level: usize,
    key_ids: Range<u32>,
    base_seq: u64,
) -> Arc<FileMeta> {
    make_file_with(fs, id, level, 0, key_ids, base_seq, 0, 0)
}

// ---------------------------------------------------------------------
// Crash-recovery harness
// ---------------------------------------------------------------------

/// One operation of a crash workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Insert `key` with a value encoding `stamp` (the op index, so a
    /// recovered value identifies exactly which write it came from).
    Put {
        /// Key id within the workload's key space.
        key: u32,
        /// Op index at generation time, recoverable from the value.
        stamp: u64,
        /// Whether the value is padded past the campaign's
        /// value-separation threshold, so it travels through the value
        /// log as a pointer instead of inline.
        large: bool,
    },
    /// Point-delete `key`.
    Delete {
        /// Key id within the workload's key space.
        key: u32,
    },
    /// Sort-key range delete covering key ids `lo..=hi` (the engine
    /// sees the corresponding key-byte bounds, which order identically
    /// because workload keys are zero-padded).
    RangeDeleteKeys {
        /// Lowest covered key id.
        lo: u32,
        /// Highest covered key id (inclusive).
        hi: u32,
    },
}

impl WorkloadOp {
    /// The key ids this op touches, as an inclusive range.
    pub fn keys(&self) -> std::ops::RangeInclusive<u32> {
        match self {
            WorkloadOp::Put { key, .. } | WorkloadOp::Delete { key } => *key..=*key,
            WorkloadOp::RangeDeleteKeys { lo, hi } => *lo..=*hi,
        }
    }

    /// Whether this op can change `key`'s state.
    pub fn touches(&self, key: u32) -> bool {
        self.keys().contains(&key)
    }
}

/// A seeded put/delete workload over a bounded key space.
#[derive(Debug, Clone)]
pub struct CrashWorkload {
    /// Seed for the op sequence (and, xored with the crash point, for
    /// the fault filesystem's own randomness).
    pub seed: u64,
    /// Number of operations.
    pub ops: usize,
    /// Keys are drawn uniformly from `0..key_space`.
    pub key_space: u32,
    /// Percentage of operations that are deletes.
    pub delete_percent: u64,
    /// Percentage of operations that are sort-key range deletes
    /// (carved out of the delete share, spanning up to 8 keys).
    pub range_delete_percent: u64,
    /// Percentage of puts whose value is padded past the campaign's
    /// value-separation threshold (see [`CrashConfig::db_options`]), so
    /// every sweep also exercises vlog pointers and their recovery.
    pub large_value_percent: u64,
}

impl Default for CrashWorkload {
    fn default() -> Self {
        CrashWorkload {
            seed: 0xACE0_0001,
            ops: 300,
            key_space: 64,
            delete_percent: 30,
            range_delete_percent: 5,
            large_value_percent: 15,
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl CrashWorkload {
    /// The deterministic op sequence for this spec.
    pub fn generate(&self) -> Vec<WorkloadOp> {
        let mut s = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..self.ops)
            .map(|i| {
                let r = xorshift(&mut s);
                let key = ((r >> 16) % u64::from(self.key_space)) as u32;
                let pct = r % 100;
                if pct < self.range_delete_percent {
                    let width = ((r >> 40) % 8) as u32;
                    WorkloadOp::RangeDeleteKeys {
                        lo: key,
                        hi: (key + width).min(self.key_space.saturating_sub(1)).max(key),
                    }
                } else if pct < self.range_delete_percent + self.delete_percent {
                    WorkloadOp::Delete { key }
                } else {
                    WorkloadOp::Put {
                        key,
                        stamp: i as u64,
                        large: (r >> 33) % 100 < self.large_value_percent,
                    }
                }
            })
            .collect()
    }
}

/// The reference state (key → live stamp, `None` = deleted) after the
/// first `n` ops of `ops`.
pub fn model_after(ops: &[WorkloadOp], n: usize) -> BTreeMap<u32, Option<u64>> {
    let mut m = BTreeMap::new();
    for op in &ops[..n] {
        match op {
            WorkloadOp::Put { key, stamp, .. } => {
                m.insert(*key, Some(*stamp));
            }
            WorkloadOp::Delete { key } => {
                m.insert(*key, None);
            }
            WorkloadOp::RangeDeleteKeys { lo, hi } => {
                for k in *lo..=*hi {
                    m.insert(k, None);
                }
            }
        };
    }
    m
}

fn key_bytes(k: u32) -> Vec<u8> {
    format!("key{k:06}").into_bytes()
}

/// Bytes every large value is padded to — past
/// [`CrashConfig::db_options`]'s separation threshold, so the value
/// travels through the value log.
pub const LARGE_VALUE_BYTES: usize = 480;

fn value_bytes(stamp: u64, large: bool) -> Vec<u8> {
    let mut v = format!("stamp{stamp:010}").into_bytes();
    if large {
        while v.len() < LARGE_VALUE_BYTES {
            v.push(b'#');
        }
    }
    v
}

fn parse_stamp(v: &[u8]) -> Option<u64> {
    // Fixed-width prefix: the stamp parses identically whether the
    // value is inline or padded out for value separation.
    std::str::from_utf8(v)
        .ok()?
        .strip_prefix("stamp")?
        .get(..10)?
        .parse()
        .ok()
}

/// Apply one workload op to a live database.
pub fn apply_op(db: &Db, op: &WorkloadOp) -> Result<()> {
    match op {
        WorkloadOp::Put { key, stamp, large } => {
            db.put(&key_bytes(*key), &value_bytes(*stamp, *large))
        }
        WorkloadOp::Delete { key } => db.delete(&key_bytes(*key)),
        WorkloadOp::RangeDeleteKeys { lo, hi } => {
            db.range_delete_keys(&key_bytes(*lo), &key_bytes(*hi))
        }
    }
}

/// Configuration of one crash-recovery campaign.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// The op sequence to drive.
    pub workload: CrashWorkload,
    /// `0` = deterministic synchronous maintenance; `> 0` = background
    /// workers (crash points then land wherever thread timing puts
    /// them).
    pub background_threads: usize,
    /// FADE's `D_th`, checked to still hold after recovery.
    pub delete_persistence_threshold: u64,
    /// What a power cut does to unsynced file suffixes.
    pub cut: CutDurability,
    /// Unified memory budget (0 = disabled). Non-zero runs the whole
    /// campaign with the block cache and adaptive arbiter live, so the
    /// sweep proves recovery is cache-oblivious: the cache is purely
    /// in-memory state and must not change any recovered answer.
    pub memory_budget_bytes: usize,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            workload: CrashWorkload::default(),
            background_threads: 0,
            delete_persistence_threshold: 2_000,
            cut: CutDurability::DropUnsynced,
            memory_budget_bytes: 0,
        }
    }
}

impl CrashConfig {
    /// Engine options for this campaign: small buffers (so the workload
    /// exercises seals, flushes, and compactions), `wal_sync` on (the
    /// per-op durability the invariants are stated against), FADE
    /// enabled.
    pub fn db_options(&self) -> DbOptions {
        DbOptions {
            write_buffer_bytes: 4 << 10,
            level1_target_bytes: 16 << 10,
            target_file_bytes: 8 << 10,
            page_size: 512,
            max_levels: 4,
            wal_sync: true,
            background_threads: self.background_threads,
            // Below LARGE_VALUE_BYTES, above the small inline values:
            // every sweep drives both value paths through each crash.
            value_separation_threshold: 256,
            vlog_segment_bytes: 4 << 10,
            memory_budget_bytes: self.memory_budget_bytes,
            ..DbOptions::default()
        }
        .with_fade(self.delete_persistence_threshold)
    }
}

/// What happened at one crash point.
#[derive(Debug)]
pub struct CrashPointOutcome {
    /// The armed durability point.
    pub point: u64,
    /// Whether the cut actually fired (`false` = the workload finished
    /// before reaching the point; the checks still ran).
    pub crashed: bool,
    /// Operations acknowledged before the crash surfaced.
    pub acked: usize,
    /// Invariant violations found; empty = the engine behaved.
    pub violations: Vec<String>,
}

/// Aggregate of a crash-point sweep.
#[derive(Debug, Default)]
pub struct CrashSuiteReport {
    /// Per-point outcomes, in sweep order.
    pub outcomes: Vec<CrashPointOutcome>,
}

impl CrashSuiteReport {
    /// Points at which the power cut actually fired.
    pub fn crashes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.crashed).count()
    }

    /// Every violation across the sweep.
    pub fn violations(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .flat_map(|o| o.violations.iter().map(String::as_str))
            .collect()
    }
}

/// Count the durability points (syncs + renames) the full workload
/// generates with no fault armed — the space [`run_crash_point`] can be
/// swept over. Exact for `background_threads = 0`; approximate with
/// workers.
pub fn count_crash_points(cfg: &CrashConfig) -> u64 {
    let fault = FaultVfs::with_seed(Arc::new(MemFs::new()), cfg.workload.seed);
    fault.set_cut_durability(cfg.cut);
    let db = Db::open(Arc::new(fault.clone()), "db", cfg.db_options()).expect("clean open");
    fault.reset_points();
    for op in cfg.workload.generate() {
        apply_op(&db, &op).expect("no fault armed");
    }
    drop(db);
    fault.durability_points()
}

/// Run the workload, cut power at the `point`-th durability point,
/// reboot, reopen, and check every recovery invariant. Violations are
/// returned, not panicked.
pub fn run_crash_point(cfg: &CrashConfig, point: u64) -> CrashPointOutcome {
    let ops = cfg.workload.generate();
    let fault = FaultVfs::with_seed(
        Arc::new(MemFs::new()),
        cfg.workload.seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    fault.set_cut_durability(cfg.cut);
    let mut violations: Vec<String> = Vec::new();

    let db = Db::open(Arc::new(fault.clone()), "db", cfg.db_options()).expect("clean open");
    fault.reset_points();
    fault.arm_power_cut_at(point);
    let mut acked = 0usize;
    let mut in_flight = false;
    for op in &ops {
        match apply_op(&db, op) {
            Ok(()) => acked += 1,
            Err(_) => {
                // The op that surfaced the crash is the single op whose
                // durability is legitimately ambiguous.
                in_flight = true;
                break;
            }
        }
    }
    let crashed = fault.has_crashed();
    drop(db);
    fault.reboot();

    // Invariant 3a: the surviving image is diagnosable. Warnings (torn
    // WAL tails, orphan tables) are expected crash debris; an *error*
    // would mean the manifest references bytes that never became
    // durable — the ordering invariant broken.
    if let Err(e) = doctor::check_db(&fault, "db") {
        violations.push(format!("doctor failed on the crashed image: {e}"));
    }

    match Db::open(Arc::new(fault.clone()), "db", cfg.db_options()) {
        Err(e) => violations.push(format!("reopen after crash failed: {e}")),
        Ok(db) => {
            // Invariants 1 + 2: acked writes readable, no resurrection.
            violations.extend(check_recovered_state(&db, &ops, acked, in_flight));
            // Invariant 4: the persistence bound holds going forward.
            violations.extend(check_fade_bound(&db, cfg));
            if let Err(e) = db.verify_integrity() {
                violations.push(format!("verify_integrity after recovery: {e}"));
            }
            drop(db);
            // Invariant 3b: recovery collected the crash debris — after
            // a clean reopen + shutdown the image is doctor-clean.
            match doctor::check_db(&fault, "db") {
                Err(e) => violations.push(format!("doctor failed after recovery: {e}")),
                Ok(report) => {
                    for w in report.warnings {
                        violations.push(format!("doctor warning after recovery: {w}"));
                    }
                }
            }
        }
    }
    let violations = violations
        .into_iter()
        .map(|v| format!("point {point}: {v}"))
        .collect();
    CrashPointOutcome {
        point,
        crashed,
        acked,
        violations,
    }
}

/// Crash twice: once in the workload at durability point
/// `workload_point`, then *again during the recovery itself* at its
/// `recovery_point`-th durability point — the double-fault schedule
/// that catches recovery paths which repair the image in a
/// non-crash-safe order (healing a WAL tear before the segments it
/// invalidates are durably gone, deleting a superseded manifest before
/// the CURRENT repoint is durable, rewriting a segment in place). After
/// the second reboot the database must open cleanly and satisfy every
/// invariant of [`run_crash_point`].
///
/// The returned outcome's `point` and `crashed` describe the
/// *recovery* crash; `acked` still counts workload acknowledgements.
pub fn run_recovery_crash_point(
    cfg: &CrashConfig,
    workload_point: u64,
    recovery_point: u64,
) -> CrashPointOutcome {
    let ops = cfg.workload.generate();
    let fault = FaultVfs::with_seed(
        Arc::new(MemFs::new()),
        cfg.workload.seed
            ^ workload_point.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ recovery_point
                .rotate_left(32)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    fault.set_cut_durability(cfg.cut);
    let mut violations: Vec<String> = Vec::new();

    // First life: the workload, cut at `workload_point`.
    let db = Db::open(Arc::new(fault.clone()), "db", cfg.db_options()).expect("clean open");
    fault.reset_points();
    fault.arm_power_cut_at(workload_point);
    let mut acked = 0usize;
    let mut in_flight = false;
    for op in &ops {
        match apply_op(&db, op) {
            Ok(()) => acked += 1,
            Err(_) => {
                in_flight = true;
                break;
            }
        }
    }
    drop(db);
    fault.reboot();

    // Second life: recovery, cut at its `recovery_point`-th durability
    // point. The open may also complete first (the point lies beyond
    // recovery) and die during shutdown — both are valid schedules.
    fault.reset_points();
    fault.arm_power_cut_at(recovery_point);
    match Db::open(Arc::new(fault.clone()), "db", cfg.db_options()) {
        Ok(db) => drop(db),
        Err(_) if fault.has_crashed() => {}
        Err(e) => violations.push(format!("recovery failed without a power cut: {e}")),
    }
    let crashed = fault.has_crashed();
    fault.reboot();

    // Third life: no faults; every invariant must hold.
    match Db::open(Arc::new(fault.clone()), "db", cfg.db_options()) {
        Err(e) => violations.push(format!("reopen after recovery crash failed: {e}")),
        Ok(db) => {
            violations.extend(check_recovered_state(&db, &ops, acked, in_flight));
            violations.extend(check_fade_bound(&db, cfg));
            if let Err(e) = db.verify_integrity() {
                violations.push(format!("verify_integrity after recovery crash: {e}"));
            }
            drop(db);
            match doctor::check_db(&fault, "db") {
                Err(e) => violations.push(format!("doctor failed after recovery crash: {e}")),
                Ok(report) => {
                    for w in report.warnings {
                        violations.push(format!("doctor warning after recovery crash: {w}"));
                    }
                }
            }
        }
    }
    let violations = violations
        .into_iter()
        .map(|v| format!("workload point {workload_point}, recovery point {recovery_point}: {v}"))
        .collect();
    CrashPointOutcome {
        point: recovery_point,
        crashed,
        acked,
        violations,
    }
}

/// Sweep [`run_crash_point`] over `points`.
pub fn run_crash_suite(
    cfg: &CrashConfig,
    points: impl IntoIterator<Item = u64>,
) -> CrashSuiteReport {
    CrashSuiteReport {
        outcomes: points
            .into_iter()
            .map(|p| run_crash_point(cfg, p))
            .collect(),
    }
}

/// Compare a recovered database against the op model: state must equal
/// the model after `acked` ops, except that the single in-flight op (if
/// any) may or may not have survived — its WAL record can be durable
/// even though the crash kept its acknowledgement from returning.
pub fn check_recovered_state(
    db: &Db,
    ops: &[WorkloadOp],
    acked: usize,
    in_flight: bool,
) -> Vec<String> {
    let expect = model_after(ops, acked);
    let next = (in_flight && acked < ops.len()).then(|| (ops[acked], model_after(ops, acked + 1)));
    let keys: std::collections::BTreeSet<u32> = ops.iter().flat_map(|op| op.keys()).collect();
    let large_of: BTreeMap<u64, bool> = ops
        .iter()
        .filter_map(|op| match op {
            WorkloadOp::Put { stamp, large, .. } => Some((*stamp, *large)),
            _ => None,
        })
        .collect();
    let mut violations = Vec::new();
    for key in keys {
        let got = match db.get(&key_bytes(key)) {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!("key {key}: read after recovery failed: {e}"));
                continue;
            }
        };
        let got_stamp = match &got {
            Some(v) => match parse_stamp(v) {
                Some(s) => Some(s),
                None => {
                    violations.push(format!("key {key}: unparseable recovered value {got:?}"));
                    continue;
                }
            },
            None => None,
        };
        // Byte-exact recovery: a value that parses but mismatches its
        // stamp's expected bytes means the payload behind a (possibly
        // separated) value was corrupted, not merely lost.
        if let (Some(v), Some(s)) = (&got, got_stamp) {
            let want_bytes = value_bytes(s, large_of.get(&s).copied().unwrap_or(false));
            if v[..] != want_bytes[..] {
                violations.push(format!(
                    "key {key}: recovered value for stamp {s} corrupted \
                     ({} bytes, expected {})",
                    v.len(),
                    want_bytes.len()
                ));
                continue;
            }
        }
        let want = expect.get(&key).copied().flatten();
        if got_stamp == want {
            continue;
        }
        if let Some((op, next_model)) = &next {
            if op.touches(key) && got_stamp == next_model.get(&key).copied().flatten() {
                continue;
            }
        }
        if let (None, Some(stamp)) = (want, got_stamp) {
            violations.push(format!(
                "key {key}: resurrected delete (stamp {stamp} readable after an acked delete)"
            ));
        } else {
            violations.push(format!(
                "key {key}: expected stamp {want:?} after {acked} acked ops, found {got_stamp:?}"
            ));
        }
    }
    violations
}

/// Age the recovered database well past `D_th` (in sub-margin steps, as
/// a wall-clock deployment would) and verify FADE's persistence bound
/// still holds: no violation is counted and no live tombstone exceeds
/// the threshold.
fn check_fade_bound(db: &Db, cfg: &CrashConfig) -> Vec<String> {
    let mut violations = Vec::new();
    let d_th = cfg.delete_persistence_threshold;
    let step = (d_th / 16).max(1);
    for _ in 0..40 {
        db.advance_clock(step);
        let r = if cfg.background_threads == 0 {
            db.maintain()
        } else {
            db.wait_idle()
        };
        if let Err(e) = r {
            violations.push(format!("maintenance after recovery failed: {e}"));
            return violations;
        }
    }
    use std::sync::atomic::Ordering::Relaxed;
    let pv = db.stats().persistence_violations.load(Relaxed);
    if pv != 0 {
        violations.push(format!("{pv} FADE persistence violations after recovery"));
    }
    if let Some(age) = db.oldest_live_tombstone_age() {
        if age > d_th {
            violations.push(format!(
                "live tombstone aged {age} ticks > D_th {d_th} after recovery"
            ));
        }
    }
    if let Some(age) = db.oldest_live_key_range_tombstone_age() {
        if age > d_th {
            violations.push(format!(
                "live sort-key range tombstone aged {age} ticks > D_th {d_th} after recovery"
            ));
        }
    }
    violations
}

/// Demonstrate that the harness catches a broken crash ordering.
///
/// The engine's invariant is *manifest append ≻ version publish ≻
/// physical deletion*. This helper simulates an engine that violated it
/// — physically deleting WAL segments before the manifest recorded the
/// flush that made them obsolete, then losing power — by deleting every
/// WAL segment of a cleanly written image before reopening. The
/// recovered-state check must report the acked-but-unflushed writes as
/// lost (and any tail delete as resurrected). Returns those violations;
/// a healthy harness returns a non-empty list.
pub fn demonstrate_delete_before_manifest(cfg: &CrashConfig) -> Vec<String> {
    let mut ops = cfg.workload.generate();
    // A deterministic tail that cannot all be flushed: the final update
    // and delete live only in the WAL at shutdown.
    let stamp = ops.len() as u64;
    ops.push(WorkloadOp::Put {
        key: 0,
        stamp,
        large: false,
    });
    ops.push(WorkloadOp::Put {
        key: 1,
        stamp: stamp + 1,
        // A separated value in the unflushed tail: its pointer dies
        // with the deleted WAL, which the state check must report.
        large: true,
    });
    ops.push(WorkloadOp::Delete { key: 2 });

    let mem = Arc::new(MemFs::new());
    let db = Db::open(mem.clone() as Arc<dyn Vfs>, "db", cfg.db_options()).expect("open");
    for op in &ops {
        apply_op(&db, op).expect("no faults in the broken-ordering demo");
    }
    drop(db);

    // The buggy deletion, followed by the crash.
    for name in mem.list("db").unwrap() {
        if name.ends_with(".log") {
            mem.delete(&acheron_vfs::join("db", &name)).unwrap();
        }
    }

    let db = Db::open(mem as Arc<dyn Vfs>, "db", cfg.db_options()).expect("reopen");
    check_recovered_state(&db, &ops, ops.len(), false)
}
