//! Shared fixtures for the engine's unit tests.

use std::ops::Range;
use std::sync::Arc;

use acheron_sstable::{Table, TableBuilder, TableOptions};
use acheron_types::Entry;
use acheron_vfs::{MemFs, Vfs};

use crate::version::FileMeta;

/// Build a real table file on `fs` and wrap it in a [`FileMeta`].
///
/// Keys are `key{NNNNNN}` over `key_ids`; seqnos start at `base_seq`;
/// dkeys equal the key id. `tombstone_every` (if nonzero) turns every
/// n-th entry into a tombstone whose tick equals its dkey.
#[allow(clippy::too_many_arguments)]
pub fn make_file_with(
    fs: &MemFs,
    id: u64,
    level: usize,
    run: u64,
    key_ids: Range<u32>,
    base_seq: u64,
    tombstone_every: u32,
    created_tick: u64,
) -> Arc<FileMeta> {
    let path = crate::filenames::sst_path("", id);
    let mut b = TableBuilder::new(fs.create(&path).unwrap(), TableOptions::default()).unwrap();
    for (i, k) in key_ids.enumerate() {
        let e = if tombstone_every != 0 && k % tombstone_every == 0 {
            Entry::tombstone(
                format!("key{k:06}").into_bytes(),
                base_seq + i as u64,
                u64::from(k),
            )
        } else {
            Entry::put(
                format!("key{k:06}").into_bytes(),
                b"v".to_vec(),
                base_seq + i as u64,
                u64::from(k),
            )
        };
        b.add(&e).unwrap();
    }
    let stats = b.finish().unwrap();
    let table = Table::open(fs.open(&path).unwrap()).unwrap();
    Arc::new(FileMeta {
        id,
        level,
        run,
        size_bytes: fs.file_size(&path).unwrap(),
        stats,
        created_tick,
        table,
    })
}

/// Plain puts-only file.
pub fn make_file(
    fs: &MemFs,
    id: u64,
    level: usize,
    key_ids: Range<u32>,
    base_seq: u64,
) -> Arc<FileMeta> {
    make_file_with(fs, id, level, 0, key_ids, base_seq, 0, 0)
}
