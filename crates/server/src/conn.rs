//! Per-connection handler: reads framed requests, applies each in
//! order with backpressure, and writes responses back in request order
//! (which is what makes client pipelining safe).
//!
//! Writes are applied one at a time: the engine's group-commit WAL
//! already merges concurrent commits (across *all* connections) into a
//! single fsync, which replaces the per-connection write-coalescing
//! this layer used to do — and does it without changing the unit of
//! atomicity a client observes (one request, one commit).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use acheron::WritePressure;
use acheron_types::{Error, Result};

use crate::engine::Engine;
use crate::rate_limit::TokenBucket;
use crate::server::Shared;
use crate::wire::{encode_frame, FrameDecoder, Request, Response};

/// Greet an over-limit connection with an `Err` frame and close it.
pub(crate) fn refuse(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    let payload = Response::Err("server at connection capacity".into()).encode();
    let mut frame = Vec::new();
    encode_frame(&payload, &mut frame);
    let _ = stream.write_all(&frame);
}

/// Serve one connection to completion.
pub(crate) fn run(stream: TcpStream, shared: Arc<Shared>) {
    if let Err(err) = serve(&stream, &shared) {
        // A protocol violation means the stream is out of sync: tell the
        // peer why (best effort) and drop the connection.
        shared
            .metrics
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        let payload = Response::Err(format!("protocol error: {err}")).encode();
        let mut frame = Vec::new();
        encode_frame(&payload, &mut frame);
        let _ = (&stream).write_all(&frame);
    }
    shared
        .metrics
        .connections_closed
        .fetch_add(1, Ordering::Relaxed);
}

/// The connection loop. Returns `Err` only for protocol violations;
/// transport errors and orderly closes return `Ok(())`.
fn serve(mut stream: &TcpStream, shared: &Arc<Shared>) -> Result<()> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.opts.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    let mut decoder = FrameDecoder::new(shared.opts.max_frame_bytes);
    let mut buf = vec![0u8; 64 << 10];
    let mut last_activity = Instant::now();
    // The admission bucket is owned by this connection thread: refill
    // is computed from elapsed time on use, so no lock and no timer.
    let mut bucket = shared
        .opts
        .rate_limit
        .map(|cfg| TokenBucket::new(cfg, Instant::now()));
    loop {
        // Drain every complete frame already buffered, then respond to
        // the whole group at once.
        let mut requests = Vec::new();
        while let Some(frame) = decoder.next_frame()? {
            requests.push(Request::decode(&frame)?);
        }
        if !requests.is_empty() {
            let responses = handle_group(shared, &requests, bucket.as_mut());
            if write_responses(stream, &responses, shared).is_err() {
                return Ok(());
            }
            last_activity = Instant::now();
        }
        // In-flight work is drained; now honor a pending shutdown.
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Orderly close. Leftover bytes mean the peer died mid-frame.
                if decoder.pending_bytes() > 0 {
                    return Err(Error::corruption("connection closed mid-frame"));
                }
                return Ok(());
            }
            Ok(n) => {
                shared
                    .metrics
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                decoder.feed(&buf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(idle) = shared.opts.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        return Ok(());
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
}

/// Execute one pipelined group of requests, producing one response per
/// request, in order. Each write commits individually — concurrent
/// connections share one WAL fsync through the engine's commit group.
///
/// Admission order per request: token bucket (data ops only), then the
/// stall check (writes only, per-shard on a fleet), then the engine.
fn handle_group(
    shared: &Arc<Shared>,
    requests: &[Request],
    mut bucket: Option<&mut TokenBucket>,
) -> Vec<Response> {
    let engine = &shared.engine;
    let metrics = &shared.metrics;
    let pressure = engine.write_pressure();
    let mut responses: Vec<Response> = Vec::with_capacity(requests.len());
    let mut committed_writes = false;

    for req in requests {
        metrics.requests.fetch_add(1, Ordering::Relaxed);
        let is_data_op = !matches!(
            req,
            Request::Ping
                | Request::Stats
                | Request::Metrics
                | Request::Events
                | Request::Traces
                | Request::Audit
        );
        if is_data_op {
            if let Some(bucket) = bucket.as_deref_mut() {
                // Admission control: shed over-rate load before it
                // reaches any engine. Control-plane requests (ping,
                // stats, metrics, events) are exempt so an operator can
                // always observe a saturated server.
                if !bucket.try_take(Instant::now()) {
                    metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                    metrics.busy_responses.fetch_add(1, Ordering::Relaxed);
                    responses.push(Response::Busy);
                    continue;
                }
            }
        }
        if req.is_write() && engine.stall_write(req, &pressure) {
            // The stall tier of backpressure: shed instead of queueing.
            metrics.busy_responses.fetch_add(1, Ordering::Relaxed);
            responses.push(Response::Busy);
            continue;
        }
        let resp = match req {
            Request::Ping => Response::Unit,
            Request::Put { key, value, dkey } => {
                // An unstamped put takes the engine's current tick as its
                // delete key, matching the embedded `Db::put` path.
                let dkey = dkey.unwrap_or_else(|| engine.now());
                committed_writes = true;
                let started = Instant::now();
                let resp = to_response(engine.put_with_dkey(key, value, dkey), metrics);
                metrics
                    .write_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::Delete { key } => {
                committed_writes = true;
                let started = Instant::now();
                let resp = to_response(engine.delete(key), metrics);
                metrics
                    .write_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::RangeDeleteSecondary { lo, hi } => {
                committed_writes = true;
                let started = Instant::now();
                let resp = to_response(engine.range_delete_secondary(*lo, *hi), metrics);
                metrics
                    .write_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::RangeDeleteKeys { lo, hi } => {
                committed_writes = true;
                let started = Instant::now();
                let resp = to_response(engine.range_delete_keys(lo, hi), metrics);
                metrics
                    .write_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::Get { key } => {
                let started = Instant::now();
                let resp = match engine.get(key) {
                    Ok(v) => Response::Value(v),
                    Err(e) => err_response(e, metrics),
                };
                metrics
                    .read_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::Scan { lo, hi } => {
                let started = Instant::now();
                let resp = match engine.scan(lo, hi) {
                    Ok(rows) => Response::Rows(rows),
                    Err(e) => err_response(e, metrics),
                };
                metrics
                    .read_latency
                    .record(started.elapsed().as_micros() as u64);
                resp
            }
            Request::Stats => Response::Stats(stats_pairs(engine, &pressure, metrics)),
            Request::Metrics => {
                let mut text = acheron::obs::render_prometheus(
                    &stats_pairs(engine, &pressure, metrics),
                    &engine.tombstone_gauges(),
                    engine.now(),
                    engine.d_th(),
                );
                text.push_str(&engine.shard_metrics_lines());
                Response::Text(text)
            }
            Request::Events => Response::Text(engine.events_text()),
            Request::Traces => Response::Text(engine.traces_text()),
            Request::Audit => {
                let audit = engine.delete_audit();
                Response::Audit {
                    violation: !audit.ok(),
                    text: audit.render(),
                }
            }
            Request::Traced { trace_id, inner } => {
                committed_writes |= inner.is_write();
                let latency = if inner.is_write() {
                    &metrics.write_latency
                } else {
                    &metrics.read_latency
                };
                let started = Instant::now();
                let resp = handle_traced(engine, *trace_id, inner, metrics);
                latency.record(started.elapsed().as_micros() as u64);
                resp
            }
        };
        responses.push(resp);
    }

    if committed_writes && pressure.slowdown {
        // The gentle tier: pace the connection instead of shedding.
        metrics.throttle_sleeps.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(shared.opts.slowdown_sleep);
    }

    responses
}

/// Execute a force-traced data op: run `inner` with tracing on and
/// wrap its ordinary result in [`Response::Trace`]. Failures drop the
/// trace wrapper and surface the plain `Busy`/`Err` — the caller's
/// retry logic should see exactly what an untraced op would produce.
fn handle_traced(
    engine: &Engine,
    trace_id: u64,
    inner: &Request,
    metrics: &crate::metrics::ServerMetrics,
) -> Response {
    let wrap = |trace: acheron::OpTrace, inner: Response| Response::Trace {
        trace_id: trace.trace_id,
        op: trace.op.name().to_string(),
        spans: trace.named_spans(),
        inner: Box::new(inner),
    };
    match inner {
        Request::Put { key, value, dkey } => {
            // The traced path always stamps the engine tick; an explicit
            // dkey falls back to the untraced put so the stamp is honored.
            if let Some(d) = dkey {
                return to_response(engine.put_with_dkey(key, value, *d), metrics);
            }
            match engine.put_traced(key, value, trace_id) {
                Ok(trace) => wrap(trace, Response::Unit),
                Err(e) => err_response(e, metrics),
            }
        }
        Request::Delete { key } => match engine.delete_traced(key, trace_id) {
            Ok(trace) => wrap(trace, Response::Unit),
            Err(e) => err_response(e, metrics),
        },
        Request::Get { key } => match engine.get_traced(key, trace_id) {
            Ok((value, trace)) => wrap(trace, Response::Value(value)),
            Err(e) => err_response(e, metrics),
        },
        // The decoder rejects every other inner tag; keep the handler
        // total anyway.
        other => Response::Err(format!("cannot trace a {} request", other.op_name())),
    }
}

fn to_response(result: Result<()>, metrics: &crate::metrics::ServerMetrics) -> Response {
    match result {
        Ok(()) => Response::Unit,
        Err(e) => err_response(e, metrics),
    }
}

fn err_response(e: Error, metrics: &crate::metrics::ServerMetrics) -> Response {
    if e.is_busy() {
        metrics.busy_responses.fetch_add(1, Ordering::Relaxed);
        Response::Busy
    } else {
        metrics.error_responses.fetch_add(1, Ordering::Relaxed);
        Response::Err(e.to_string())
    }
}

/// Engine counters + live pressure gauges + server metrics, flattened
/// for the `stats` wire response. On a fleet the engine counters are
/// the per-shard sums and the pressure gauges the worst shard's.
fn stats_pairs(
    engine: &Engine,
    pressure: &WritePressure,
    metrics: &crate::metrics::ServerMetrics,
) -> Vec<(String, u64)> {
    let mut pairs = engine.stats_snapshot().to_pairs();
    pairs.push(("db_l0_files".into(), pressure.l0_files as u64));
    pairs.push((
        "db_sealed_memtables".into(),
        pressure.sealed_memtables as u64,
    ));
    pairs.push(("db_slowdown".into(), u64::from(pressure.slowdown)));
    pairs.push(("db_stall".into(), u64::from(pressure.stall)));
    pairs.extend(metrics.to_pairs());
    pairs
}

/// Frame and send a group's responses as one vectored write.
fn write_responses(
    mut stream: &TcpStream,
    responses: &[Response],
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let mut out = Vec::new();
    for resp in responses {
        encode_frame(&resp.encode(), &mut out);
    }
    shared
        .metrics
        .bytes_out
        .fetch_add(out.len() as u64, Ordering::Relaxed);
    stream.write_all(&out)?;
    stream.flush()
}
