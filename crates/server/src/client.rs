//! A synchronous, pipelined client for the Acheron wire protocol.
//!
//! The client is deliberately dependency-free: one `TcpStream`, the
//! shared [`FrameDecoder`], and blocking
//! I/O. Three behaviors matter:
//!
//! * **Pipelining** — [`Client::pipeline`] writes any number of request
//!   frames before reading the responses back; the server guarantees
//!   response order matches request order.
//! * **Reconnect on drop** — a transport error on a *quiescent*
//!   connection (no responses outstanding) triggers one transparent
//!   reconnect-and-retry. Mid-pipeline errors are surfaced instead:
//!   the client cannot know which requests were applied.
//! * **Busy backoff** — [`Response::Busy`] (the server shedding writes
//!   under stall pressure) is retried with exponential backoff up to
//!   [`ClientOptions::busy_retries`] times, then surfaced as
//!   [`Error::Busy`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use acheron_types::{Error, Result};
use acheron_workload::OpSink;

use crate::wire::{encode_frame, FrameDecoder, Request, Response, DEFAULT_MAX_FRAME_BYTES};

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Timeout for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Timeout waiting for a response frame.
    pub read_timeout: Duration,
    /// Retries for a `Busy` response before giving up (0 = surface the
    /// first `Busy` immediately).
    pub busy_retries: u32,
    /// Initial busy backoff; doubles per retry.
    pub busy_backoff: Duration,
    /// Frame payload cap (must be ≥ the server's, or large scan
    /// responses will be rejected client-side).
    pub max_frame_bytes: usize,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            busy_retries: 8,
            busy_backoff: Duration::from_millis(2),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// A connection to an Acheron server.
pub struct Client {
    addr: SocketAddr,
    opts: ClientOptions,
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    buf: Vec<u8>,
}

impl Client {
    /// Connect with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit options.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ClientOptions) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| Error::io("resolve server address", e))?
            .next()
            .ok_or_else(|| Error::invalid_argument("server address resolved to nothing"))?;
        let mut client = Client {
            addr,
            opts,
            stream: None,
            decoder: FrameDecoder::new(0),
            buf: vec![0u8; 64 << 10],
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Drop and re-establish the connection (also clears any buffered
    /// partial frames).
    pub fn reconnect(&mut self) -> Result<()> {
        self.stream = None;
        let stream = TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout)
            .map_err(|e| Error::io("connect to server", e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.opts.read_timeout))
            .map_err(|e| Error::io("set client read timeout", e))?;
        self.decoder = FrameDecoder::new(self.opts.max_frame_bytes);
        self.stream = Some(stream);
        Ok(())
    }

    /// Send `requests` as one pipelined burst and read all responses
    /// back, in order. Transport errors mid-pipeline are surfaced (not
    /// retried): with responses outstanding the client cannot know
    /// which writes the server applied.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>> {
        let mut frames = Vec::new();
        for req in requests {
            encode_frame(&req.encode(), &mut frames);
        }
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| Error::io("pipeline", std::io::Error::other("not connected")))?;
        if let Err(e) = stream.write_all(&frames) {
            self.stream = None;
            return Err(Error::io("send request frames", e));
        }
        let mut responses = Vec::with_capacity(requests.len());
        while responses.len() < requests.len() {
            match self.read_frame() {
                Ok(frame) => responses.push(Response::decode(&frame)?),
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            }
        }
        Ok(responses)
    }

    /// One request, one response — with transparent reconnect: if the
    /// transport fails on this quiescent connection, reconnect and
    /// retry the request once.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        let mut reconnected = false;
        loop {
            if self.stream.is_none() {
                self.reconnect()?;
                reconnected = true;
            }
            match self.pipeline(std::slice::from_ref(request)) {
                Ok(mut responses) => return Ok(responses.pop().expect("one response")),
                Err(e) => {
                    let transport = matches!(e, Error::Io { .. });
                    if !transport || reconnected {
                        return Err(e);
                    }
                    // Fall through: reconnect at loop top and retry once.
                }
            }
        }
    }

    /// [`Client::request`] plus busy backoff (for write operations the
    /// server may shed under stall pressure).
    fn request_retrying_busy(&mut self, request: &Request) -> Result<Response> {
        let mut backoff = self.opts.busy_backoff;
        for _ in 0..self.opts.busy_retries {
            match self.request(request)? {
                Response::Busy => {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                other => return Ok(other),
            }
        }
        match self.request(request)? {
            Response::Busy => Err(Error::busy(format!(
                "server still shedding {} after {} retries",
                request.op_name(),
                self.opts.busy_retries
            ))),
            other => Ok(other),
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let stream = self
                .stream
                .as_mut()
                .ok_or_else(|| Error::io("read frame", std::io::Error::other("not connected")))?;
            match stream.read(&mut self.buf) {
                Ok(0) => {
                    return Err(Error::io(
                        "read frame",
                        std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ),
                    ))
                }
                Ok(n) => {
                    let (buf, decoder) = (&self.buf[..n], &mut self.decoder);
                    decoder.feed(buf);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io("read frame", e)),
            }
        }
    }

    // ---- typed convenience wrappers -------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        unit(self.request(&Request::Ping)?)
    }

    /// Insert/update; the server stamps the engine's current tick as
    /// the delete key (matching embedded `Db::put`).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_opt(key, value, None)
    }

    /// Insert/update with an explicit secondary delete key.
    pub fn put_with_dkey(&mut self, key: &[u8], value: &[u8], dkey: u64) -> Result<()> {
        self.put_opt(key, value, Some(dkey))
    }

    fn put_opt(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()> {
        let req = Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
            dkey,
        };
        unit(self.request_retrying_busy(&req)?)
    }

    /// Point delete.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        unit(self.request_retrying_busy(&Request::Delete { key: key.to_vec() })?)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.request(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected("get", &other)),
        }
    }

    /// Inclusive range scan.
    pub fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let req = Request::Scan {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        };
        match self.request(&req)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("scan", &other)),
        }
    }

    /// Secondary range delete over the delete-key domain.
    pub fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()> {
        unit(self.request_retrying_busy(&Request::RangeDeleteSecondary { lo, hi })?)
    }

    /// Range delete over the sort-key domain (inclusive bounds).
    pub fn range_delete_keys(&mut self, lo: &[u8], hi: &[u8]) -> Result<()> {
        unit(self.request_retrying_busy(&Request::RangeDeleteKeys {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        })?)
    }

    /// Engine + server statistics as `(name, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.request(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Prometheus-style metrics exposition text (counters, gauges, and
    /// the tombstone age histogram).
    pub fn metrics(&mut self) -> Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// The engine's recent event ring, rendered one event per line.
    pub fn events(&mut self) -> Result<String> {
        match self.request(&Request::Events)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("events", &other)),
        }
    }

    /// Recently sampled per-op traces, rendered one span per line.
    pub fn traces(&mut self) -> Result<String> {
        match self.request(&Request::Traces)? {
            Response::Text(text) => Ok(text),
            other => Err(unexpected("traces", &other)),
        }
    }

    /// The delete-lifecycle audit: `(violation, rendered report)`.
    /// `violation` is true when some cohort or live delete family has
    /// already overrun the server's `D_th`.
    pub fn audit(&mut self) -> Result<(bool, String)> {
        match self.request(&Request::Audit)? {
            Response::Audit { violation, text } => Ok((violation, text)),
            other => Err(unexpected("audit", &other)),
        }
    }

    /// Force-traced put: executes like [`Client::put`] but returns the
    /// server-side span breakdown.
    pub fn put_traced(&mut self, key: &[u8], value: &[u8], trace_id: u64) -> Result<TracedResult> {
        let req = Request::Traced {
            trace_id,
            inner: Box::new(Request::Put {
                key: key.to_vec(),
                value: value.to_vec(),
                dkey: None,
            }),
        };
        traced_result("traced put", self.request_retrying_busy(&req)?)
    }

    /// Force-traced point delete.
    pub fn delete_traced(&mut self, key: &[u8], trace_id: u64) -> Result<TracedResult> {
        let req = Request::Traced {
            trace_id,
            inner: Box::new(Request::Delete { key: key.to_vec() }),
        };
        traced_result("traced delete", self.request_retrying_busy(&req)?)
    }

    /// Force-traced point lookup; the looked-up value rides in
    /// [`TracedResult::value`].
    pub fn get_traced(&mut self, key: &[u8], trace_id: u64) -> Result<TracedResult> {
        let req = Request::Traced {
            trace_id,
            inner: Box::new(Request::Get { key: key.to_vec() }),
        };
        traced_result("traced get", self.request(&req)?)
    }
}

/// A force-traced operation's result: the server-side span breakdown
/// plus the wrapped operation's own payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedResult {
    /// The trace id (echoed from the request).
    pub trace_id: u64,
    /// Operation name (`put`, `delete`, `get`).
    pub op: String,
    /// `(stage name, value)` pairs — microseconds for `_micros`
    /// stages, counts otherwise.
    pub spans: Vec<(String, u64)>,
    /// The wrapped get's value; `None` for writes and missing keys.
    pub value: Option<Vec<u8>>,
}

fn traced_result(what: &str, resp: Response) -> Result<TracedResult> {
    match resp {
        Response::Trace {
            trace_id,
            op,
            spans,
            inner,
        } => {
            let value = match *inner {
                Response::Unit => None,
                Response::Value(v) => v,
                other => return Err(unexpected(what, &other)),
            };
            Ok(TracedResult {
                trace_id,
                op,
                spans,
                value,
            })
        }
        other => Err(unexpected(what, &other)),
    }
}

/// A remote connection is a workload sink, so the same seeded op
/// stream can drive the engine embedded or over the wire.
impl OpSink for Client {
    fn put(&mut self, key: &[u8], value: &[u8], dkey: Option<u64>) -> Result<()> {
        self.put_opt(key, value, dkey)
    }

    fn delete(&mut self, key: &[u8]) -> Result<()> {
        Client::delete(self, key)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Client::get(self, key)
    }

    fn scan(&mut self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Client::scan(self, lo, hi)
    }

    fn range_delete_secondary(&mut self, lo: u64, hi: u64) -> Result<()> {
        Client::range_delete_secondary(self, lo, hi)
    }
}

fn unit(resp: Response) -> Result<()> {
    match resp {
        Response::Unit => Ok(()),
        Response::Busy => Err(Error::busy("server shed the request")),
        Response::Err(m) => Err(Error::Internal(format!("server error: {m}"))),
        other => Err(unexpected("write", &other)),
    }
}

fn unexpected(what: &str, resp: &Response) -> Error {
    match resp {
        Response::Err(m) => Error::Internal(format!("server error: {m}")),
        Response::Busy => Error::busy(format!("server shed the {what}")),
        other => Error::corruption(format!("unexpected response to {what}: {other:?}")),
    }
}
