//! The engine behind the server: a single [`Db`] or a sharded fleet.
//!
//! Connection handlers are written against this enum rather than
//! `Arc<Db>` so one server binary serves both shapes. The router logic
//! itself (hash dispatch, cross-shard snapshot merging, the admission
//! barrier) lives in [`acheron::ShardedDb`]; this layer only chooses
//! *which* engine answers and how its observability is rendered:
//!
//! * a single engine renders exactly as before;
//! * a fleet renders the *merged* counters and gauges, plus per-shard
//!   gauge series (`db_shard_*{shard="i"}`) and the fleet-wide maximum
//!   tombstone age — the number the per-shard `D_th` promise is judged
//!   by.

use std::sync::Arc;

use acheron::{Db, ShardedDb, StatsSnapshot, TombstoneGauges, WritePressure};
use acheron_types::{Result, Tick};

use crate::wire::Request;

/// The engine a server instance dispatches to.
#[derive(Clone)]
pub enum Engine {
    /// One engine owns the whole keyspace.
    Single(Arc<Db>),
    /// A hash-partitioned fleet of engines.
    Sharded(Arc<ShardedDb>),
}

impl From<Arc<Db>> for Engine {
    fn from(db: Arc<Db>) -> Engine {
        Engine::Single(db)
    }
}

impl From<Arc<ShardedDb>> for Engine {
    fn from(db: Arc<ShardedDb>) -> Engine {
        Engine::Sharded(db)
    }
}

impl Engine {
    /// Current clock tick.
    pub fn now(&self) -> Tick {
        match self {
            Engine::Single(db) => db.now(),
            Engine::Sharded(db) => db.now(),
        }
    }

    /// Insert with an explicit delete key.
    pub fn put_with_dkey(&self, key: &[u8], value: &[u8], dkey: u64) -> Result<()> {
        match self {
            Engine::Single(db) => db.put_with_dkey(key, value, dkey),
            Engine::Sharded(db) => db.put_with_dkey(key, value, dkey),
        }
    }

    /// Point delete.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        match self {
            Engine::Single(db) => db.delete(key),
            Engine::Sharded(db) => db.delete(key),
        }
    }

    /// Secondary range delete (broadcast to every shard of a fleet).
    pub fn range_delete_secondary(&self, lo: u64, hi: u64) -> Result<()> {
        match self {
            Engine::Single(db) => db.range_delete_secondary(lo, hi),
            Engine::Sharded(db) => db.range_delete_secondary(lo, hi),
        }
    }

    /// Sort-key range delete (broadcast to every shard of a fleet —
    /// hash partitioning scatters a sort-key interval across shards).
    pub fn range_delete_keys(&self, lo: &[u8], hi: &[u8]) -> Result<()> {
        match self {
            Engine::Single(db) => db.range_delete_keys(lo, hi),
            Engine::Sharded(db) => db.range_delete_keys(lo, hi),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self {
            Engine::Single(db) => Ok(db.get(key)?.map(|v| v.to_vec())),
            Engine::Sharded(db) => db.get(key),
        }
    }

    /// Inclusive range scan (merged across shards of a fleet).
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self {
            Engine::Single(db) => Ok(db
                .scan(lo, hi)?
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect()),
            Engine::Sharded(db) => db.scan(lo, hi),
        }
    }

    /// Write pressure: the engine's own for a single engine, the
    /// worst-case composition (max gauges, OR flags) for a fleet —
    /// the right input for pacing decisions that cover the whole
    /// connection.
    pub fn write_pressure(&self) -> WritePressure {
        match self {
            Engine::Single(db) => db.write_pressure(),
            Engine::Sharded(db) => db.write_pressure(),
        }
    }

    /// Whether `req` (a write) should be shed as `Busy` right now.
    /// `group_pressure` is the fleet/engine pressure captured once per
    /// pipelined group. A single engine sheds on that capture; a fleet
    /// consults only the *owning* shard for keyed writes, so one
    /// stalled shard does not shed the whole keyspace — broadcast
    /// writes (range deletes) still honor the fleet view because they
    /// touch every shard.
    pub fn stall_write(&self, req: &Request, group_pressure: &WritePressure) -> bool {
        match self {
            Engine::Single(_) => group_pressure.stall,
            Engine::Sharded(db) => match req.key() {
                Some(key) => db.shard_for(key).write_pressure().stall,
                None => group_pressure.stall,
            },
        }
    }

    /// Merged engine counters (per-shard sums for a fleet), including
    /// block-cache counters and memory-budget gauges. On a fleet the
    /// shared cache is reported exactly once, not once per shard.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        match self {
            Engine::Single(db) => db.stats_snapshot(),
            Engine::Sharded(db) => db.stats_snapshot(),
        }
    }

    /// Merged tombstone gauges (fleet-wide population for a fleet).
    pub fn tombstone_gauges(&self) -> TombstoneGauges {
        match self {
            Engine::Single(db) => db.tombstone_gauges(),
            Engine::Sharded(db) => db.tombstone_gauges(),
        }
    }

    /// The FADE persistence threshold, if configured.
    pub fn d_th(&self) -> Option<Tick> {
        let opts = match self {
            Engine::Single(db) => db.options(),
            Engine::Sharded(db) => db.options(),
        };
        opts.fade.as_ref().map(|f| f.delete_persistence_threshold)
    }

    /// Extra Prometheus lines a fleet appends after the merged view:
    /// shard count, per-shard tombstone/pressure series, and the
    /// fleet-wide maximum tombstone age (0 when no tombstone is live —
    /// always emitted so dashboards can alert on it unconditionally).
    /// Empty for a single engine.
    pub fn shard_metrics_lines(&self) -> String {
        let Engine::Sharded(db) = self else {
            return String::new();
        };
        let now = db.now();
        // Group samples by family so each family gets exactly one
        // `# TYPE` line before its first sample — the per-shard series
        // repeat the family name once per shard.
        let mut out = String::new();
        let family = |out: &mut String, name: &str, lines: &[String]| {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for line in lines {
                out.push_str(line);
            }
        };
        family(
            &mut out,
            "db_shards",
            &[format!("db_shards {}\n", db.shard_count())],
        );
        let gauges = db.shard_gauges();
        let pressure = db.shard_pressure();
        let per_shard = |f: &dyn Fn(usize) -> u64, name: &str| -> Vec<String> {
            (0..db.shard_count())
                .map(|i| format!("{name}{{shard=\"{i}\"}} {}\n", f(i)))
                .collect()
        };
        family(
            &mut out,
            "db_shard_live_tombstones",
            &per_shard(&|i| gauges[i].live_tombstones(), "db_shard_live_tombstones"),
        );
        family(
            &mut out,
            "db_shard_oldest_tombstone_age_ticks",
            &per_shard(
                &|i| {
                    gauges[i]
                        .oldest_live_tick()
                        .map_or(0, |t0| now.saturating_sub(t0))
                },
                "db_shard_oldest_tombstone_age_ticks",
            ),
        );
        family(
            &mut out,
            "db_shard_l0_files",
            &per_shard(&|i| pressure[i].l0_files as u64, "db_shard_l0_files"),
        );
        family(
            &mut out,
            "db_shard_slowdown",
            &per_shard(&|i| u64::from(pressure[i].slowdown), "db_shard_slowdown"),
        );
        family(
            &mut out,
            "db_shard_stall",
            &per_shard(&|i| u64::from(pressure[i].stall), "db_shard_stall"),
        );
        // Per-shard memory-split gauges: each shard's write-buffer
        // allowance under the shared arbiter, and its pinned
        // filter/metadata contribution. The fleet-level totals are in
        // the merged snapshot (`db_memory_*`).
        let stats = db.shard_stats();
        family(
            &mut out,
            "db_shard_memtable_budget_bytes",
            &per_shard(
                &|i| stats[i].memtable_budget_bytes,
                "db_shard_memtable_budget_bytes",
            ),
        );
        family(
            &mut out,
            "db_shard_pinned_bytes",
            &per_shard(&|i| stats[i].pinned_bytes, "db_shard_pinned_bytes"),
        );
        family(
            &mut out,
            "db_fleet_max_tombstone_age_ticks",
            &[format!(
                "db_fleet_max_tombstone_age_ticks {}\n",
                db.fleet_max_tombstone_age().unwrap_or(0)
            )],
        );
        out
    }

    /// The `events` command body: one engine's ring, or every shard's
    /// ring sectioned per shard.
    pub fn events_text(&self) -> String {
        match self {
            Engine::Single(db) => acheron::obs::render_events(&db.events()),
            Engine::Sharded(db) => acheron::obs::render_sharded_events(&db.shard_events()),
        }
    }

    /// The `traces` command body: recently sampled op traces (the
    /// fleet-wide concatenation for a sharded engine).
    pub fn traces_text(&self) -> String {
        match self {
            Engine::Single(db) => acheron::render_traces(&db.recent_traces()),
            Engine::Sharded(db) => acheron::render_traces(&db.recent_traces()),
        }
    }

    /// The delete-lifecycle audit (per-shard cohort union for a fleet).
    pub fn delete_audit(&self) -> acheron::DeleteAudit {
        match self {
            Engine::Single(db) => db.delete_audit(),
            Engine::Sharded(db) => db.delete_audit(),
        }
    }

    /// Force-traced put (the server stamps the engine's current tick as
    /// the delete key, like an untraced wire put).
    pub fn put_traced(&self, key: &[u8], value: &[u8], trace_id: u64) -> Result<acheron::OpTrace> {
        match self {
            Engine::Single(db) => db.put_traced(key, value, Some(trace_id)),
            Engine::Sharded(db) => db.put_traced(key, value, Some(trace_id)),
        }
    }

    /// Force-traced point delete.
    pub fn delete_traced(&self, key: &[u8], trace_id: u64) -> Result<acheron::OpTrace> {
        match self {
            Engine::Single(db) => db.delete_traced(key, Some(trace_id)),
            Engine::Sharded(db) => db.delete_traced(key, Some(trace_id)),
        }
    }

    /// Force-traced point lookup.
    pub fn get_traced(
        &self,
        key: &[u8],
        trace_id: u64,
    ) -> Result<(Option<Vec<u8>>, acheron::OpTrace)> {
        match self {
            Engine::Single(db) => {
                let (value, trace) = db.get_traced(key, Some(trace_id))?;
                Ok((value.map(|v| v.to_vec()), trace))
            }
            Engine::Sharded(db) => db.get_traced(key, Some(trace_id)),
        }
    }

    /// Shard count (1 for a single engine), for status display.
    pub fn shard_count(&self) -> usize {
        match self {
            Engine::Single(_) => 1,
            Engine::Sharded(db) => db.shard_count(),
        }
    }
}
