//! Per-connection admission control: a token bucket that sheds excess
//! load as wire `Busy` *before* the request reaches any engine.
//!
//! This is the outermost tier of the backpressure stack. The engine's
//! own tiers react to internal state (slowdown pacing, stall → `Busy`);
//! the token bucket caps what a single connection may *offer* in the
//! first place, so one hot client cannot monopolize the commit path of
//! a shard fleet. Composition order per request:
//!
//! 1. token bucket (this module) — over-rate data ops shed as `Busy`;
//! 2. per-shard stall check — writes to a stalled shard shed as `Busy`;
//! 3. slowdown pacing — the connection sleeps briefly after committing
//!    a group while any shard reports slowdown.
//!
//! Each connection thread owns its bucket outright — refill is computed
//! from elapsed wall time on each take, so there is no shared state, no
//! lock, and no refill timer thread.

use std::time::Instant;

/// Admission-control configuration, applied per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Sustained data-operation rate granted to each connection.
    pub ops_per_sec: u64,
    /// Bucket capacity: how large a burst may be admitted at once
    /// after an idle period.
    pub burst: u64,
}

impl RateLimitConfig {
    /// A config allowing `ops_per_sec` sustained, with a burst equal to
    /// one second's allowance.
    pub fn per_sec(ops_per_sec: u64) -> RateLimitConfig {
        RateLimitConfig {
            ops_per_sec,
            burst: ops_per_sec.max(1),
        }
    }
}

/// A classic token bucket: `burst` capacity, refilled continuously at
/// `ops_per_sec`. Time is passed in explicitly so behavior is testable
/// without sleeping.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    fill_per_sec: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket starting full (a fresh connection may burst
    /// immediately).
    pub fn new(config: RateLimitConfig, now: Instant) -> TokenBucket {
        let capacity = (config.burst.max(1)) as f64;
        TokenBucket {
            capacity,
            fill_per_sec: config.ops_per_sec as f64,
            tokens: capacity,
            last: now,
        }
    }

    /// Take one token if available. `now` must be monotone
    /// non-decreasing across calls (an `Instant` from the caller's
    /// clock); going backwards is treated as zero elapsed time.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.fill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_admits_then_sheds() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            RateLimitConfig {
                ops_per_sec: 10,
                burst: 3,
            },
            t0,
        );
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted with no time passing");
    }

    #[test]
    fn refill_restores_admission_at_the_configured_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            RateLimitConfig {
                ops_per_sec: 10,
                burst: 1,
            },
            t0,
        );
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0));
        // 10 ops/sec -> one token every 100ms.
        assert!(!b.try_take(t0 + Duration::from_millis(50)));
        assert!(b.try_take(t0 + Duration::from_millis(160)));
        assert!(!b.try_take(t0 + Duration::from_millis(170)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateLimitConfig::per_sec(1000), t0);
        // A long idle period must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(3600);
        for _ in 0..1000 {
            assert!(b.try_take(later));
        }
        assert!(!b.try_take(later));
    }

    #[test]
    fn per_sec_config_defaults_burst_to_rate() {
        let c = RateLimitConfig::per_sec(250);
        assert_eq!(c.burst, 250);
        // Degenerate zero rate still has a usable bucket of one.
        assert_eq!(RateLimitConfig::per_sec(0).burst, 1);
    }
}
