//! Server-side observability: per-operation latency histograms plus
//! connection / byte / error counters, all lock-free and shared across
//! connection threads. Surfaced through the `stats` wire command and
//! the SERVE-mode status line.

use std::sync::atomic::{AtomicU64, Ordering};

use acheron::LatencyHistogram;

/// Counters and histograms for one server instance.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_opened: AtomicU64,
    /// Connections that have fully terminated.
    pub connections_closed: AtomicU64,
    /// Connections refused because the pool was at `max_connections`.
    pub connections_rejected: AtomicU64,
    /// Request frames decoded.
    pub requests: AtomicU64,
    /// Requests shed with a `Busy` response under stall pressure.
    pub busy_responses: AtomicU64,
    /// Requests shed with a `Busy` response by per-connection
    /// admission control (token bucket), before reaching any engine.
    pub rate_limited: AtomicU64,
    /// Requests answered with an `Err` response.
    pub error_responses: AtomicU64,
    /// Connections dropped for protocol violations (bad frame, bad
    /// checksum, oversize, trailing garbage).
    pub protocol_errors: AtomicU64,
    /// Bytes received on the wire (frame headers included).
    pub bytes_in: AtomicU64,
    /// Bytes sent on the wire (frame headers included).
    pub bytes_out: AtomicU64,
    /// Times a write batch was delayed by slowdown throttling.
    pub throttle_sleeps: AtomicU64,
    /// Service latency (decode → response queued) for write ops, µs.
    pub write_latency: LatencyHistogram,
    /// Service latency for read ops (get/scan), µs.
    pub read_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.connections_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.connections_closed.load(Ordering::Relaxed))
    }

    /// Flatten everything into `(name, value)` pairs for the `stats`
    /// wire response; histograms expand to `_{count,p50,p99,max}`.
    pub fn to_pairs(&self) -> Vec<(String, u64)> {
        let mut pairs = vec![
            (
                "server_connections_opened".into(),
                self.connections_opened.load(Ordering::Relaxed),
            ),
            (
                "server_connections_closed".into(),
                self.connections_closed.load(Ordering::Relaxed),
            ),
            (
                "server_connections_rejected".into(),
                self.connections_rejected.load(Ordering::Relaxed),
            ),
            ("server_connections_open".into(), self.open_connections()),
            (
                "server_requests".into(),
                self.requests.load(Ordering::Relaxed),
            ),
            (
                "server_busy_responses".into(),
                self.busy_responses.load(Ordering::Relaxed),
            ),
            (
                "server_rate_limited".into(),
                self.rate_limited.load(Ordering::Relaxed),
            ),
            (
                "server_error_responses".into(),
                self.error_responses.load(Ordering::Relaxed),
            ),
            (
                "server_protocol_errors".into(),
                self.protocol_errors.load(Ordering::Relaxed),
            ),
            (
                "server_bytes_in".into(),
                self.bytes_in.load(Ordering::Relaxed),
            ),
            (
                "server_bytes_out".into(),
                self.bytes_out.load(Ordering::Relaxed),
            ),
            (
                "server_throttle_sleeps".into(),
                self.throttle_sleeps.load(Ordering::Relaxed),
            ),
        ];
        for (name, hist) in [
            ("server_write_us", &self.write_latency),
            ("server_read_us", &self.read_latency),
        ] {
            let s = hist.summary();
            pairs.push((format!("{name}_count"), s.count));
            pairs.push((format!("{name}_p50"), s.p50));
            pairs.push((format!("{name}_p99"), s.p99));
            pairs.push((format!("{name}_max"), s.max));
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_counters_and_histograms() {
        let m = ServerMetrics::default();
        m.connections_opened.store(3, Ordering::Relaxed);
        m.connections_closed.store(1, Ordering::Relaxed);
        m.read_latency.record(100);
        let pairs = m.to_pairs();
        let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("server_connections_open"), 2);
        assert_eq!(get("server_read_us_count"), 1);
        assert!(pairs.iter().any(|(n, _)| n == "server_write_us_p99"));
    }
}
