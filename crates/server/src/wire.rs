//! The wire protocol: length-prefixed, CRC32C-framed binary messages.
//!
//! # Framing
//!
//! Every message (request or response) travels as one frame:
//!
//! ```text
//! +----------------+---------------------+------------------+
//! | len: u32 LE    | crc: u32 LE (masked)| payload[len]     |
//! +----------------+---------------------+------------------+
//! ```
//!
//! `len` is the payload length; `crc` is the masked CRC32C of the
//! payload (the same masking scheme as every other persistent artifact
//! in the engine, see [`acheron_types::checksum`]). A frame whose
//! length exceeds the negotiated cap or whose checksum fails is a
//! *protocol error*: the stream can no longer be trusted to be in sync,
//! so the peer reports an error and closes the connection — it never
//! panics and never wedges.
//!
//! # Messages
//!
//! Payloads are self-describing: a tag byte followed by fields encoded
//! with the engine's codec primitives (varints, length-prefixed
//! slices). Responses arrive strictly in request order, which is what
//! makes pipelining trivial: a client may write any number of request
//! frames before reading the matching responses back.

use acheron_types::codec::{
    get_u32_le, put_u32_le, put_varint64, require_length_prefixed, require_varint64,
};
use acheron_types::{checksum, Error, Result};

/// Frame header size: payload length + masked CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Default cap on a single frame's payload. Large enough for any
/// realistic scan response page, small enough that a malicious length
/// prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Unit`].
    Ping,
    /// Insert/update. `dkey = None` lets the server stamp the engine's
    /// current tick (the embedded [`acheron::Db::put`] behavior).
    Put {
        /// Sort key.
        key: Vec<u8>,
        /// Value payload.
        value: Vec<u8>,
        /// Optional explicit secondary delete key.
        dkey: Option<u64>,
    },
    /// Point delete.
    Delete {
        /// Sort key.
        key: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// Sort key.
        key: Vec<u8>,
    },
    /// Inclusive range scan over sort keys.
    Scan {
        /// Low bound (inclusive).
        lo: Vec<u8>,
        /// High bound (inclusive).
        hi: Vec<u8>,
    },
    /// Secondary range delete over the delete-key domain.
    RangeDeleteSecondary {
        /// Low delete key (inclusive).
        lo: u64,
        /// High delete key (inclusive).
        hi: u64,
    },
    /// Range delete over the sort-key domain (inclusive bounds).
    RangeDeleteKeys {
        /// Low sort key (inclusive).
        lo: Vec<u8>,
        /// High sort key (inclusive).
        hi: Vec<u8>,
    },
    /// Engine + server statistics as `(name, value)` pairs.
    Stats,
    /// Prometheus-style text exposition of counters and the live
    /// delete-persistence gauges; answered with [`Response::Text`].
    Metrics,
    /// The engine's flight-recorder ring, rendered one event per line;
    /// answered with [`Response::Text`].
    Events,
    /// Recently sampled per-op traces, rendered one span per line;
    /// answered with [`Response::Text`].
    Traces,
    /// The delete-lifecycle audit: per-cohort `D_th` slack plus the
    /// live unresolved-delete ages; answered with [`Response::Audit`].
    Audit,
    /// Force-trace one data operation: the server executes `inner`
    /// with tracing on (regardless of its sampling rate) and answers
    /// with [`Response::Trace`] carrying the span breakdown. Only
    /// `Put`, `Delete`, and `Get` may be wrapped — nesting is a
    /// protocol error.
    Traced {
        /// Client-chosen trace id, echoed back so a caller can stitch
        /// its own timeline onto the server-side spans.
        trace_id: u64,
        /// The wrapped data operation.
        inner: Box<Request>,
    },
}

const REQ_PING: u8 = 1;
const REQ_PUT: u8 = 2;
const REQ_DELETE: u8 = 3;
const REQ_GET: u8 = 4;
const REQ_SCAN: u8 = 5;
const REQ_RDEL: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_METRICS: u8 = 8;
const REQ_EVENTS: u8 = 9;
const REQ_KRDEL: u8 = 10;
const REQ_TRACES: u8 = 11;
const REQ_AUDIT: u8 = 12;
const REQ_TRACED: u8 = 13;

impl Request {
    /// True for operations that mutate the database (the ones the
    /// server sheds with [`Response::Busy`] under stall pressure).
    pub fn is_write(&self) -> bool {
        match self {
            Request::Put { .. }
            | Request::Delete { .. }
            | Request::RangeDeleteSecondary { .. }
            | Request::RangeDeleteKeys { .. } => true,
            Request::Traced { inner, .. } => inner.is_write(),
            _ => false,
        }
    }

    /// The primary key a keyed request routes by (`None` for keyless
    /// requests: scans, range deletes, stats/metrics/events, ping).
    /// The sharded server uses this for per-shard admission — a write
    /// is shed only when *its* shard is stalled.
    pub fn key(&self) -> Option<&[u8]> {
        match self {
            Request::Put { key, .. } | Request::Delete { key } | Request::Get { key } => {
                Some(key.as_slice())
            }
            Request::Traced { inner, .. } => inner.key(),
            _ => None,
        }
    }

    /// Short operation name, used for metrics labels.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Get { .. } => "get",
            Request::Scan { .. } => "scan",
            Request::RangeDeleteSecondary { .. } => "range_delete",
            Request::RangeDeleteKeys { .. } => "range_delete_keys",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Events => "events",
            Request::Traces => "traces",
            Request::Audit => "audit",
            Request::Traced { .. } => "traced",
        }
    }

    /// Encode into a message payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Put { key, value, dkey } => {
                out.push(REQ_PUT);
                match dkey {
                    Some(d) => {
                        out.push(1);
                        put_varint64(&mut out, *d);
                    }
                    None => out.push(0),
                }
                put_slice(&mut out, key);
                put_slice(&mut out, value);
            }
            Request::Delete { key } => {
                out.push(REQ_DELETE);
                put_slice(&mut out, key);
            }
            Request::Get { key } => {
                out.push(REQ_GET);
                put_slice(&mut out, key);
            }
            Request::Scan { lo, hi } => {
                out.push(REQ_SCAN);
                put_slice(&mut out, lo);
                put_slice(&mut out, hi);
            }
            Request::RangeDeleteSecondary { lo, hi } => {
                out.push(REQ_RDEL);
                put_varint64(&mut out, *lo);
                put_varint64(&mut out, *hi);
            }
            Request::RangeDeleteKeys { lo, hi } => {
                out.push(REQ_KRDEL);
                put_slice(&mut out, lo);
                put_slice(&mut out, hi);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Metrics => out.push(REQ_METRICS),
            Request::Events => out.push(REQ_EVENTS),
            Request::Traces => out.push(REQ_TRACES),
            Request::Audit => out.push(REQ_AUDIT),
            Request::Traced { trace_id, inner } => {
                out.push(REQ_TRACED);
                put_varint64(&mut out, *trace_id);
                out.extend_from_slice(&inner.encode());
            }
        }
        out
    }

    /// Decode a message payload. Total: malformed input yields a
    /// [`Error::Corruption`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| Error::corruption("empty request payload"))?;
        match tag {
            REQ_PING => {
                expect_empty(rest, "ping")?;
                Ok(Request::Ping)
            }
            REQ_PUT => {
                let (&flag, rest) = rest
                    .split_first()
                    .ok_or_else(|| Error::corruption("truncated put flags"))?;
                let (dkey, rest) = match flag {
                    0 => (None, rest),
                    1 => {
                        let (d, rest) = require_varint64(rest, "put dkey")?;
                        (Some(d), rest)
                    }
                    other => return Err(Error::corruption(format!("bad put flag byte {other}"))),
                };
                let (key, rest) = require_length_prefixed(rest, "put key")?;
                let (value, rest) = require_length_prefixed(rest, "put value")?;
                expect_empty(rest, "put")?;
                Ok(Request::Put {
                    key: key.to_vec(),
                    value: value.to_vec(),
                    dkey,
                })
            }
            REQ_DELETE => {
                let (key, rest) = require_length_prefixed(rest, "delete key")?;
                expect_empty(rest, "delete")?;
                Ok(Request::Delete { key: key.to_vec() })
            }
            REQ_GET => {
                let (key, rest) = require_length_prefixed(rest, "get key")?;
                expect_empty(rest, "get")?;
                Ok(Request::Get { key: key.to_vec() })
            }
            REQ_SCAN => {
                let (lo, rest) = require_length_prefixed(rest, "scan lo")?;
                let (hi, rest) = require_length_prefixed(rest, "scan hi")?;
                expect_empty(rest, "scan")?;
                Ok(Request::Scan {
                    lo: lo.to_vec(),
                    hi: hi.to_vec(),
                })
            }
            REQ_RDEL => {
                let (lo, rest) = require_varint64(rest, "range delete lo")?;
                let (hi, rest) = require_varint64(rest, "range delete hi")?;
                expect_empty(rest, "range delete")?;
                Ok(Request::RangeDeleteSecondary { lo, hi })
            }
            REQ_KRDEL => {
                let (lo, rest) = require_length_prefixed(rest, "key range delete lo")?;
                let (hi, rest) = require_length_prefixed(rest, "key range delete hi")?;
                expect_empty(rest, "key range delete")?;
                Ok(Request::RangeDeleteKeys {
                    lo: lo.to_vec(),
                    hi: hi.to_vec(),
                })
            }
            REQ_STATS => {
                expect_empty(rest, "stats")?;
                Ok(Request::Stats)
            }
            REQ_METRICS => {
                expect_empty(rest, "metrics")?;
                Ok(Request::Metrics)
            }
            REQ_EVENTS => {
                expect_empty(rest, "events")?;
                Ok(Request::Events)
            }
            REQ_TRACES => {
                expect_empty(rest, "traces")?;
                Ok(Request::Traces)
            }
            REQ_AUDIT => {
                expect_empty(rest, "audit")?;
                Ok(Request::Audit)
            }
            REQ_TRACED => {
                let (trace_id, rest) = require_varint64(rest, "traced id")?;
                // Only flat data ops may be wrapped. Checking the tag
                // *before* recursing keeps decode depth constant — a
                // frame of nested REQ_TRACED tags must not be able to
                // recurse the stack away.
                match rest.first() {
                    Some(&t) if t == REQ_PUT || t == REQ_DELETE || t == REQ_GET => {}
                    Some(&t) => {
                        return Err(Error::corruption(format!(
                            "request tag {t} cannot be traced"
                        )))
                    }
                    None => return Err(Error::corruption("traced request without an inner op")),
                }
                let inner = Request::decode(rest)?;
                Ok(Request::Traced {
                    trace_id,
                    inner: Box::new(inner),
                })
            }
            other => Err(Error::corruption(format!("unknown request tag {other}"))),
        }
    }
}

/// One server response. Self-describing (tagged), so a response stream
/// can be decoded without the request context; responses are delivered
/// strictly in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Acknowledgement with no body (ping and accepted writes).
    Unit,
    /// Point-lookup result (`None` = key absent or deleted).
    Value(Option<Vec<u8>>),
    /// Scan result rows in key order.
    Rows(Vec<(Vec<u8>, Vec<u8>)>),
    /// Statistics pairs.
    Stats(Vec<(String, u64)>),
    /// The server shed this request under write stall pressure; retry
    /// after backing off.
    Busy,
    /// The request failed; the message is the engine/server error text.
    Err(String),
    /// A rendered text document (metrics exposition, event listing).
    Text(String),
    /// The span breakdown of a force-traced data op, wrapping the
    /// operation's ordinary result. `spans` are `(stage name, value)`
    /// pairs — microseconds for `_micros` stages, counts otherwise.
    Trace {
        /// The trace id (client-chosen or server-allocated).
        trace_id: u64,
        /// Operation name (`put`, `delete`, `get`).
        op: String,
        /// Named stage measurements, in recording order.
        spans: Vec<(String, u64)>,
        /// The wrapped operation's own response (`Unit` or `Value`).
        inner: Box<Response>,
    },
    /// The delete-lifecycle audit report.
    Audit {
        /// True when some cohort or live gauge has already overrun
        /// `D_th` — the CLI exits nonzero on this flag.
        violation: bool,
        /// The rendered per-cohort report.
        text: String,
    },
}

const RESP_UNIT: u8 = 1;
const RESP_VALUE: u8 = 2;
const RESP_NO_VALUE: u8 = 3;
const RESP_ROWS: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_BUSY: u8 = 6;
const RESP_ERR: u8 = 7;
const RESP_TEXT: u8 = 8;
const RESP_TRACE: u8 = 9;
const RESP_AUDIT: u8 = 10;

impl Response {
    /// Encode into a message payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Unit => out.push(RESP_UNIT),
            Response::Value(Some(v)) => {
                out.push(RESP_VALUE);
                put_slice(&mut out, v);
            }
            Response::Value(None) => out.push(RESP_NO_VALUE),
            Response::Rows(rows) => {
                out.push(RESP_ROWS);
                put_varint64(&mut out, rows.len() as u64);
                for (k, v) in rows {
                    put_slice(&mut out, k);
                    put_slice(&mut out, v);
                }
            }
            Response::Stats(pairs) => {
                out.push(RESP_STATS);
                put_varint64(&mut out, pairs.len() as u64);
                for (name, value) in pairs {
                    put_slice(&mut out, name.as_bytes());
                    put_varint64(&mut out, *value);
                }
            }
            Response::Busy => out.push(RESP_BUSY),
            Response::Err(msg) => {
                out.push(RESP_ERR);
                put_slice(&mut out, msg.as_bytes());
            }
            Response::Text(text) => {
                out.push(RESP_TEXT);
                put_slice(&mut out, text.as_bytes());
            }
            Response::Trace {
                trace_id,
                op,
                spans,
                inner,
            } => {
                out.push(RESP_TRACE);
                put_varint64(&mut out, *trace_id);
                put_slice(&mut out, op.as_bytes());
                put_varint64(&mut out, spans.len() as u64);
                for (name, value) in spans {
                    put_slice(&mut out, name.as_bytes());
                    put_varint64(&mut out, *value);
                }
                out.extend_from_slice(&inner.encode());
            }
            Response::Audit { violation, text } => {
                out.push(RESP_AUDIT);
                out.push(u8::from(*violation));
                put_slice(&mut out, text.as_bytes());
            }
        }
        out
    }

    /// Decode a message payload. Total: malformed input yields a
    /// [`Error::Corruption`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let (&tag, rest) = payload
            .split_first()
            .ok_or_else(|| Error::corruption("empty response payload"))?;
        match tag {
            RESP_UNIT => {
                expect_empty(rest, "unit")?;
                Ok(Response::Unit)
            }
            RESP_VALUE => {
                let (v, rest) = require_length_prefixed(rest, "value body")?;
                expect_empty(rest, "value")?;
                Ok(Response::Value(Some(v.to_vec())))
            }
            RESP_NO_VALUE => {
                expect_empty(rest, "no-value")?;
                Ok(Response::Value(None))
            }
            RESP_ROWS => {
                let (n, mut rest) = require_varint64(rest, "row count")?;
                // Bound preallocation by what the payload could actually
                // hold (2 bytes minimum per row) so a lying count cannot
                // balloon memory.
                let n = usize::try_from(n)
                    .map_err(|_| Error::corruption("row count overflows usize"))?;
                if n > rest.len() / 2 + 1 {
                    return Err(Error::corruption(format!(
                        "row count {n} impossible for {}-byte body",
                        rest.len()
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let (k, r) = require_length_prefixed(rest, "row key")?;
                    let (v, r) = require_length_prefixed(r, "row value")?;
                    rows.push((k.to_vec(), v.to_vec()));
                    rest = r;
                }
                expect_empty(rest, "rows")?;
                Ok(Response::Rows(rows))
            }
            RESP_STATS => {
                let (n, mut rest) = require_varint64(rest, "stats count")?;
                let n = usize::try_from(n)
                    .map_err(|_| Error::corruption("stats count overflows usize"))?;
                if n > rest.len() / 2 + 1 {
                    return Err(Error::corruption(format!(
                        "stats count {n} impossible for {}-byte body",
                        rest.len()
                    )));
                }
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let (name, r) = require_length_prefixed(rest, "stat name")?;
                    let (value, r) = require_varint64(r, "stat value")?;
                    let name = String::from_utf8(name.to_vec())
                        .map_err(|_| Error::corruption("stat name is not utf-8"))?;
                    pairs.push((name, value));
                    rest = r;
                }
                expect_empty(rest, "stats")?;
                Ok(Response::Stats(pairs))
            }
            RESP_BUSY => {
                expect_empty(rest, "busy")?;
                Ok(Response::Busy)
            }
            RESP_ERR => {
                let (msg, rest) = require_length_prefixed(rest, "error message")?;
                expect_empty(rest, "error")?;
                Ok(Response::Err(String::from_utf8_lossy(msg).into_owned()))
            }
            RESP_TEXT => {
                let (text, rest) = require_length_prefixed(rest, "text body")?;
                expect_empty(rest, "text")?;
                Ok(Response::Text(String::from_utf8_lossy(text).into_owned()))
            }
            RESP_TRACE => {
                let (trace_id, rest) = require_varint64(rest, "trace id")?;
                let (op, rest) = require_length_prefixed(rest, "trace op")?;
                let op = String::from_utf8(op.to_vec())
                    .map_err(|_| Error::corruption("trace op is not utf-8"))?;
                let (n, mut rest) = require_varint64(rest, "trace span count")?;
                let n = usize::try_from(n)
                    .map_err(|_| Error::corruption("trace span count overflows usize"))?;
                if n > rest.len() / 2 + 1 {
                    return Err(Error::corruption(format!(
                        "trace span count {n} impossible for {}-byte body",
                        rest.len()
                    )));
                }
                let mut spans = Vec::with_capacity(n);
                for _ in 0..n {
                    let (name, r) = require_length_prefixed(rest, "trace span name")?;
                    let (value, r) = require_varint64(r, "trace span value")?;
                    let name = String::from_utf8(name.to_vec())
                        .map_err(|_| Error::corruption("trace span name is not utf-8"))?;
                    spans.push((name, value));
                    rest = r;
                }
                // The wrapped result is a flat tag; refusing anything
                // else before recursing keeps decode depth constant.
                match rest.first() {
                    Some(&t) if t == RESP_UNIT || t == RESP_VALUE || t == RESP_NO_VALUE => {}
                    Some(&t) => {
                        return Err(Error::corruption(format!(
                            "response tag {t} cannot be trace-wrapped"
                        )))
                    }
                    None => return Err(Error::corruption("trace without an inner response")),
                }
                let inner = Response::decode(rest)?;
                Ok(Response::Trace {
                    trace_id,
                    op,
                    spans,
                    inner: Box::new(inner),
                })
            }
            RESP_AUDIT => {
                let (&flag, rest) = rest
                    .split_first()
                    .ok_or_else(|| Error::corruption("truncated audit flag"))?;
                let violation = match flag {
                    0 => false,
                    1 => true,
                    other => return Err(Error::corruption(format!("bad audit flag byte {other}"))),
                };
                let (text, rest) = require_length_prefixed(rest, "audit body")?;
                expect_empty(rest, "audit")?;
                Ok(Response::Audit {
                    violation,
                    text: String::from_utf8_lossy(text).into_owned(),
                })
            }
            other => Err(Error::corruption(format!("unknown response tag {other}"))),
        }
    }
}

/// Append one framed message (header + payload) to `dst`.
pub fn encode_frame(payload: &[u8], dst: &mut Vec<u8>) {
    put_u32_le(dst, payload.len() as u32);
    put_u32_le(dst, checksum::mask(checksum::crc32c(payload)));
    dst.extend_from_slice(payload);
}

/// Incremental frame parser over a byte stream. Feed it raw socket
/// reads; it yields complete, checksum-verified payloads. All failure
/// modes are [`Error::Corruption`] — a caller should treat any error as
/// fatal to the connection (the stream is no longer in sync).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away
    /// periodically rather than on every frame.
    pos: usize,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder enforcing the given payload-size cap.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame,
        }
    }

    /// Append raw bytes read from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        // Compact lazily: only when the dead prefix dominates.
        if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed (a non-empty value after the
    /// peer closed means a truncated frame).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extract the next complete frame's payload, `Ok(None)` if more
    /// bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        let Some((len, rest)) = get_u32_le(avail) else {
            return Ok(None);
        };
        let len = len as usize;
        if len > self.max_frame {
            return Err(Error::corruption(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                self.max_frame
            )));
        }
        let Some((stored_crc, body)) = get_u32_le(rest) else {
            return Ok(None);
        };
        if body.len() < len {
            return Ok(None);
        }
        let payload = &body[..len];
        if checksum::unmask(stored_crc) != checksum::crc32c(payload) {
            return Err(Error::corruption("frame checksum mismatch"));
        }
        let payload = payload.to_vec();
        self.pos += FRAME_HEADER_BYTES + len;
        Ok(Some(payload))
    }
}

fn put_slice(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint64(dst, slice.len() as u64);
    dst.extend_from_slice(slice);
}

/// A decoded message must consume its whole payload — trailing bytes
/// mean a framing bug or tampering.
fn expect_empty(rest: &[u8], what: &str) -> Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(Error::corruption(format!(
            "{} byte(s) trailing a {what} message",
            rest.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
                dkey: None,
            },
            Request::Put {
                key: vec![],
                value: vec![0; 300],
                dkey: Some(u64::MAX),
            },
            Request::Delete {
                key: b"gone".to_vec(),
            },
            Request::Get { key: b"k".to_vec() },
            Request::Scan {
                lo: b"a".to_vec(),
                hi: b"z".to_vec(),
            },
            Request::RangeDeleteSecondary {
                lo: 0,
                hi: u64::MAX,
            },
            Request::RangeDeleteKeys {
                lo: b"user:".to_vec(),
                hi: b"user:\xff".to_vec(),
            },
            Request::Stats,
            Request::Metrics,
            Request::Events,
            Request::Traces,
            Request::Audit,
            Request::Traced {
                trace_id: 7,
                inner: Box::new(Request::Put {
                    key: b"k".to_vec(),
                    value: b"v".to_vec(),
                    dkey: None,
                }),
            },
            Request::Traced {
                trace_id: u64::MAX,
                inner: Box::new(Request::Get { key: b"k".to_vec() }),
            },
            Request::Traced {
                trace_id: 0,
                inner: Box::new(Request::Delete {
                    key: b"gone".to_vec(),
                }),
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Unit,
            Response::Value(Some(b"payload".to_vec())),
            Response::Value(None),
            Response::Rows(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), vec![0xff; 100]),
            ]),
            Response::Rows(vec![]),
            Response::Stats(vec![("puts".into(), 42), ("gets".into(), u64::MAX)]),
            Response::Busy,
            Response::Err("it broke".into()),
            Response::Text("db_live_tombstones 7\n".into()),
            Response::Text(String::new()),
            Response::Trace {
                trace_id: 42,
                op: "put".into(),
                spans: vec![
                    ("wal_append_fsync_micros".into(), 120),
                    ("memtable_insert_micros".into(), 3),
                    ("total_micros".into(), 130),
                ],
                inner: Box::new(Response::Unit),
            },
            Response::Trace {
                trace_id: 43,
                op: "get".into(),
                spans: vec![],
                inner: Box::new(Response::Value(Some(b"v".to_vec()))),
            },
            Response::Audit {
                violation: false,
                text: "all cohorts resolved\n".into(),
            },
            Response::Audit {
                violation: true,
                text: "cohort shard=0 epoch=3 overdue\n".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn framed_stream_round_trips_through_decoder_in_any_chunking() {
        let mut stream = Vec::new();
        for req in all_requests() {
            encode_frame(&req.encode(), &mut stream);
        }
        for chunk in [1usize, 3, 7, stream.len()] {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
            let mut decoded = Vec::new();
            for part in stream.chunks(chunk) {
                dec.feed(part);
                while let Some(frame) = dec.next_frame().unwrap() {
                    decoded.push(Request::decode(&frame).unwrap());
                }
            }
            assert_eq!(decoded, all_requests(), "chunk={chunk}");
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn corrupt_frames_error_instead_of_panicking() {
        // Bad checksum.
        let mut frame = Vec::new();
        encode_frame(b"\x01", &mut frame);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
        dec.feed(&frame);
        assert!(dec.next_frame().is_err());

        // Oversize length prefix rejected before buffering the body.
        let mut dec = FrameDecoder::new(64);
        let mut huge = Vec::new();
        put_u32_le(&mut huge, 1 << 30);
        put_u32_le(&mut huge, 0);
        dec.feed(&huge);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn truncated_decoders_report_none_not_error() {
        let mut frame = Vec::new();
        encode_frame(&Request::Ping.encode(), &mut frame);
        for cut in 0..frame.len() {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
            dec.feed(&frame[..cut]);
            assert!(dec.next_frame().unwrap().is_none(), "cut={cut}");
        }
    }

    #[test]
    fn malformed_payload_bytes_never_panic_decoders() {
        // Deterministic pseudo-random fuzz over short payloads: decode
        // must return (not panic) on every input.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u8
        };
        for len in 0..64usize {
            for _ in 0..32 {
                let payload: Vec<u8> = (0..len).map(|_| next()).collect();
                let _ = Request::decode(&payload);
                let _ = Response::decode(&payload);
            }
        }
    }

    #[test]
    fn lying_row_count_is_rejected() {
        let mut payload = vec![RESP_ROWS];
        put_varint64(&mut payload, u64::MAX);
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn traced_rejects_nesting_and_non_data_ops() {
        // A deep stack of nested REQ_TRACED tags must fail on the first
        // level, not recurse once per byte.
        let mut nested = Vec::new();
        for _ in 0..100_000 {
            nested.push(REQ_TRACED);
            nested.push(0); // varint trace id 0
        }
        assert!(Request::decode(&nested).is_err());

        // Control-plane ops cannot be wrapped.
        let mut payload = vec![REQ_TRACED, 1, REQ_STATS];
        assert!(Request::decode(&payload).is_err());
        payload = vec![REQ_TRACED, 1];
        assert!(Request::decode(&payload).is_err(), "missing inner op");

        // Same constant-depth guarantee on the response side.
        let mut resp = Vec::new();
        for _ in 0..100_000 {
            resp.push(RESP_TRACE);
            resp.push(0); // trace id
            resp.push(0); // empty op name
            resp.push(0); // zero spans
        }
        assert!(Response::decode(&resp).is_err());
    }
}
