//! The TCP server: a bounded thread-per-connection accept loop over a
//! shared [`Engine`] (a single `Db` or a sharded fleet), with graceful
//! shutdown.
//!
//! # Threading
//!
//! One accept thread owns the (nonblocking) listener and spawns one
//! handler thread per connection, up to
//! [`ServerOptions::max_connections`]; beyond that, new connections are
//! greeted with an `Err` frame and closed immediately rather than
//! queued. Handler threads share the engine through an `Arc` — each
//! engine's own write mutex and versioned reads make that safe (see
//! `ARCHITECTURE.md`).
//!
//! # Shutdown ordering
//!
//! [`Server::shutdown`] (1) flips the shutdown flag so the accept loop
//! stops taking connections, (2) joins the accept thread, (3) waits for
//! every handler to drain the complete request frames it has already
//! buffered and exit, then returns. Only after that should the caller
//! drop its `Db` handle, which joins the engine's background executor
//! and (on the last handle) closes the WAL.

use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use acheron_types::{Error, Result};
use parking_lot::Mutex;

use crate::conn;
use crate::engine::Engine;
use crate::metrics::ServerMetrics;
use crate::rate_limit::RateLimitConfig;
use crate::wire::DEFAULT_MAX_FRAME_BYTES;

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Connection pool bound; further connections are refused with an
    /// `Err` frame (never silently queued).
    pub max_connections: usize,
    /// Per-frame payload cap enforced before buffering.
    pub max_frame_bytes: usize,
    /// How long a blocked read/accept waits before re-checking the
    /// shutdown flag. Also the per-connection read timeout granularity.
    pub poll_interval: Duration,
    /// Idle time after which a silent connection is dropped. `None`
    /// keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Per-connection write timeout for response frames.
    pub write_timeout: Duration,
    /// Sleep injected after committing a write batch while the engine
    /// reports *slowdown* pressure (the gentle tier of backpressure; the
    /// stall tier sheds writes with `Busy`).
    pub slowdown_sleep: Duration,
    /// Per-connection admission control: data operations beyond the
    /// token bucket's allowance are shed as `Busy` before reaching any
    /// engine. `None` (the default) admits everything.
    pub rate_limit: Option<RateLimitConfig>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(5),
            idle_timeout: None,
            write_timeout: Duration::from_secs(30),
            slowdown_sleep: Duration::from_millis(2),
            rate_limit: None,
        }
    }
}

/// State shared between the accept loop and every connection handler.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) opts: ServerOptions,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start serving `engine` on background threads.
    /// `engine` is anything convertible into an [`Engine`]: an
    /// `Arc<Db>` (single engine) or an `Arc<ShardedDb>` (fleet).
    pub fn start(
        engine: impl Into<Engine>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> Result<Server> {
        let engine = engine.into();
        let listener = TcpListener::bind(addr).map_err(|e| Error::io("server bind", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::io("server local_addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::io("server set_nonblocking", e))?;
        let shared = Arc::new(Shared {
            engine,
            opts,
            metrics: Arc::new(ServerMetrics::default()),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("acheron-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| Error::io("spawn accept thread", e))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// This server's metrics registry.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// One-line status summary for interactive SERVE mode.
    pub fn status_line(&self) -> String {
        let m = &self.shared.metrics;
        let wp = self.shared.engine.write_pressure();
        format!(
            "shards={} conns={} reqs={} busy={} proto_errs={} in={}B out={}B l0={}{}",
            self.shared.engine.shard_count(),
            m.open_connections(),
            m.requests.load(Ordering::Relaxed),
            m.busy_responses.load(Ordering::Relaxed),
            m.protocol_errors.load(Ordering::Relaxed),
            m.bytes_in.load(Ordering::Relaxed),
            m.bytes_out.load(Ordering::Relaxed),
            wp.l0_files,
            if wp.stall {
                " [STALL]"
            } else if wp.slowdown {
                " [SLOWDOWN]"
            } else {
                ""
            },
        )
    }

    /// Stop accepting, drain in-flight requests, and join every server
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread has exited, so no new handles can appear.
        let handles = std::mem::take(&mut *self.shared.conns.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handlers so the handle list doesn't grow
                // without bound on long-lived servers.
                shared.conns.lock().retain(|h| !h.is_finished());
                let open = shared.metrics.open_connections() as usize;
                if open >= shared.opts.max_connections {
                    shared
                        .metrics
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    conn::refuse(stream, &shared);
                    continue;
                }
                shared
                    .metrics
                    .connections_opened
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                match thread::Builder::new()
                    .name("acheron-conn".into())
                    .spawn(move || conn::run(stream, conn_shared))
                {
                    Ok(handle) => shared.conns.lock().push(handle),
                    Err(_) => {
                        shared
                            .metrics
                            .connections_closed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(shared.opts.poll_interval);
            }
            Err(_) => thread::sleep(shared.opts.poll_interval),
        }
    }
}
