//! # Acheron service layer
//!
//! Everything needed to serve an [`acheron::Db`] over TCP and talk to
//! it, with **no async runtime and no networking dependencies** — just
//! `std::net` and threads, matching the rest of the workspace's
//! std-only discipline:
//!
//! * [`wire`] — the length-prefixed, CRC32C-framed binary protocol
//!   (requests, responses, and an incremental [`wire::FrameDecoder`]).
//! * [`Server`] — a bounded thread-per-connection TCP server with
//!   server-side write batching, end-to-end backpressure (engine stall
//!   → wire [`wire::Response::Busy`]; slowdown → per-connection
//!   pacing), and graceful shutdown. It serves an [`Engine`]: a single
//!   `Arc<Db>` or a hash-partitioned `Arc<acheron::ShardedDb>` fleet.
//! * [`RateLimitConfig`] — per-connection token-bucket admission
//!   control; over-rate data operations are shed as `Busy` before they
//!   reach any engine, composing with the engine's own stall/slowdown
//!   tiers.
//! * [`Client`] — a synchronous, pipelined client with
//!   reconnect-on-drop and busy backoff; it implements
//!   [`acheron_workload::OpSink`], so one seeded workload can drive
//!   the engine embedded or over the wire and be checked for
//!   result-identity.
//! * [`ServerMetrics`] — per-op latency histograms plus
//!   connection/byte/error counters, exposed through the `stats` wire
//!   command.
//!
//! ```no_run
//! use acheron::{Db, DbOptions};
//! use acheron_server::{Client, Server, ServerOptions};
//! use acheron_vfs::MemFs;
//! use std::sync::Arc;
//!
//! let db = Arc::new(Db::open(Arc::new(MemFs::new()), "db", DbOptions::small()).unwrap());
//! let mut server = Server::start(db, "127.0.0.1:0", ServerOptions::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.put(b"k", b"v").unwrap();
//! assert_eq!(client.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod engine;
pub mod metrics;
pub mod rate_limit;
pub mod server;
pub mod wire;

pub use client::{Client, ClientOptions, TracedResult};
pub use engine::Engine;
pub use metrics::ServerMetrics;
pub use rate_limit::{RateLimitConfig, TokenBucket};
pub use server::{Server, ServerOptions};
pub use wire::{Request, Response};
