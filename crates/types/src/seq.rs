//! Sequence numbers and value kinds.
//!
//! Every mutation is stamped with a monotonically increasing [`SeqNo`].
//! Together with a [`ValueKind`], the pair is packed into a 64-bit *tag*
//! (`seqno << 8 | kind`) that forms the trailer of an internal key.
//! Internal keys with equal user keys sort by tag **descending**, so the
//! newest version of a key is encountered first during iteration.

/// A monotonically increasing logical timestamp assigned to each mutation.
pub type SeqNo = u64;

/// The largest representable sequence number (56 bits, since the tag
/// reserves the low 8 bits for the [`ValueKind`]).
pub const MAX_SEQNO: SeqNo = (1 << 56) - 1;

/// The kind of a logged/stored entry.
///
/// The numeric values are part of the on-disk format; do not renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ValueKind {
    /// A point tombstone: logically deletes all older versions of its key.
    Tombstone = 0,
    /// A regular key/value insertion (or update).
    Put = 1,
    /// A range tombstone over the *secondary delete key* domain
    /// (Acheron/Lethe's secondary range delete). Appears in the WAL and
    /// version metadata but is never woven into SSTable data blocks.
    RangeTombstone = 2,
    /// A range tombstone over the *sort key* domain: deletes every user
    /// key in `[start, end]`. Appears in the WAL and in SSTable meta
    /// blocks but is never woven into SSTable data blocks as an entry.
    KeyRangeTombstone = 3,
    /// A put whose value lives in the value log: the entry's payload is
    /// the fixed-size [`crate::vptr::ValuePointer`] encoding, not the
    /// value itself. Read paths dereference it; compactions carry it
    /// through unchanged.
    ValuePointer = 4,
}

impl ValueKind {
    /// Decode from the low byte of a tag.
    pub fn from_u8(v: u8) -> Option<ValueKind> {
        match v {
            0 => Some(ValueKind::Tombstone),
            1 => Some(ValueKind::Put),
            2 => Some(ValueKind::RangeTombstone),
            3 => Some(ValueKind::KeyRangeTombstone),
            4 => Some(ValueKind::ValuePointer),
            _ => None,
        }
    }

    /// True for point tombstones.
    #[inline]
    pub fn is_tombstone(self) -> bool {
        matches!(self, ValueKind::Tombstone)
    }

    /// True for entries that carry (or point at) a user value — an
    /// inline [`ValueKind::Put`] or a separated
    /// [`ValueKind::ValuePointer`]. The liveness test read paths use:
    /// anything else hides the key.
    #[inline]
    pub fn is_put_like(self) -> bool {
        matches!(self, ValueKind::Put | ValueKind::ValuePointer)
    }
}

/// Kind byte used when *seeking*: sorts before every real kind at the same
/// sequence number under descending-tag order, i.e. a seek tag built with
/// this kind positions at the first entry with `seqno <= snapshot`.
pub const SEEK_KIND: u8 = 0xff;

/// Pack a sequence number and kind byte into an internal-key tag.
#[inline]
pub fn pack_tag(seq: SeqNo, kind: u8) -> u64 {
    debug_assert!(seq <= MAX_SEQNO, "seqno {seq} exceeds 56 bits");
    (seq << 8) | u64::from(kind)
}

/// Unpack a tag into `(seqno, kind_byte)`.
#[inline]
pub fn unpack_tag(tag: u64) -> (SeqNo, u8) {
    (tag >> 8, (tag & 0xff) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        for seq in [0u64, 1, 42, MAX_SEQNO] {
            for kind in [
                ValueKind::Tombstone,
                ValueKind::Put,
                ValueKind::RangeTombstone,
            ] {
                let tag = pack_tag(seq, kind as u8);
                let (s, k) = unpack_tag(tag);
                assert_eq!(s, seq);
                assert_eq!(ValueKind::from_u8(k), Some(kind));
            }
        }
    }

    #[test]
    fn kind_from_u8_rejects_unknown() {
        assert_eq!(ValueKind::from_u8(3), Some(ValueKind::KeyRangeTombstone));
        assert_eq!(ValueKind::from_u8(4), Some(ValueKind::ValuePointer));
        assert_eq!(ValueKind::from_u8(5), None);
        assert_eq!(ValueKind::from_u8(0xff), None);
    }

    #[test]
    fn put_like_classification() {
        assert!(ValueKind::Put.is_put_like());
        assert!(ValueKind::ValuePointer.is_put_like());
        assert!(!ValueKind::Tombstone.is_put_like());
        assert!(!ValueKind::RangeTombstone.is_put_like());
        assert!(!ValueKind::KeyRangeTombstone.is_put_like());
    }

    #[test]
    fn newer_seqno_has_larger_tag() {
        // Descending-tag iteration order must put newer entries first.
        let older = pack_tag(10, ValueKind::Put as u8);
        let newer = pack_tag(11, ValueKind::Tombstone as u8);
        assert!(newer > older);
    }

    #[test]
    fn seek_tag_sorts_after_real_tags_at_same_seqno() {
        // With descending comparison, a larger tag sorts *earlier*; the
        // seek kind must therefore produce the largest tag for a seqno so
        // the seek positions at-or-before every real entry of that seqno.
        let seek = pack_tag(10, SEEK_KIND);
        let put = pack_tag(10, ValueKind::Put as u8);
        let del = pack_tag(10, ValueKind::Tombstone as u8);
        assert!(seek > put && seek > del);
    }

    #[test]
    fn tombstone_classification() {
        assert!(ValueKind::Tombstone.is_tombstone());
        assert!(!ValueKind::Put.is_tombstone());
        assert!(!ValueKind::RangeTombstone.is_tombstone());
    }
}
