//! The fully-decoded mutation record that flows between layers, and the
//! secondary *delete key* domain on which Acheron's range deletes operate.
//!
//! Every entry carries, besides its sort key / value / seqno / kind, a
//! 64-bit **delete key** — the secondary attribute (canonically a
//! timestamp) that `range_delete_secondary` predicates select on. Puts
//! carry an application-supplied delete key; point tombstones carry the
//! logical tick at which they were issued (used by FADE to age them).

use bytes::Bytes;

use crate::key::{InternalKey, UserKey};
use crate::seq::{SeqNo, ValueKind};

/// Sentinel delete key for entries whose application did not supply one.
/// Chosen as 0 so "no delete key" entries are only matched by ranges that
/// explicitly include 0.
pub const DELETE_KEY_NONE: u64 = 0;

/// A fully decoded mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The LSM sort key.
    pub key: UserKey,
    /// Mutation sequence number.
    pub seqno: SeqNo,
    /// Put / tombstone / secondary-range-tombstone.
    pub kind: ValueKind,
    /// The secondary delete-key attribute (e.g. a timestamp).
    pub dkey: u64,
    /// Value payload. Empty for tombstones. For
    /// [`ValueKind::RangeTombstone`] entries in the WAL, holds the encoded
    /// [`DeleteKeyRange`].
    pub value: Bytes,
}

impl Entry {
    /// Build a put.
    pub fn put(key: impl Into<UserKey>, value: impl Into<Bytes>, seqno: SeqNo, dkey: u64) -> Entry {
        Entry {
            key: key.into(),
            seqno,
            kind: ValueKind::Put,
            dkey,
            value: value.into(),
        }
    }

    /// Build a value-pointer entry: the value lives in the value log and
    /// `value` holds the 20-byte [`crate::ValuePointer`] encoding.
    pub fn value_pointer(
        key: impl Into<UserKey>,
        ptr: crate::ValuePointer,
        seqno: SeqNo,
        dkey: u64,
    ) -> Entry {
        Entry {
            key: key.into(),
            seqno,
            kind: ValueKind::ValuePointer,
            dkey,
            value: Bytes::copy_from_slice(&ptr.encode()),
        }
    }

    /// Build a point tombstone. `dkey` is the tick the delete was issued
    /// at, used by FADE to age the tombstone.
    pub fn tombstone(key: impl Into<UserKey>, seqno: SeqNo, dkey: u64) -> Entry {
        Entry {
            key: key.into(),
            seqno,
            kind: ValueKind::Tombstone,
            dkey,
            value: Bytes::new(),
        }
    }

    /// The internal key for this entry.
    pub fn internal_key(&self) -> InternalKey {
        InternalKey::new(&self.key, self.seqno, self.kind)
    }

    /// True for point tombstones.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.kind.is_tombstone()
    }

    /// Approximate in-memory / on-disk payload size in bytes (key +
    /// value + trailer + delete key). Used for memtable sizing and
    /// write-amplification accounting.
    #[inline]
    pub fn encoded_size(&self) -> usize {
        self.key.len() + self.value.len() + 8 /* tag */ + 8 /* dkey */
    }
}

/// A committed secondary range delete: shadows every entry whose `dkey`
/// lies in `range` and whose seqno is **less than** `seqno`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeTombstone {
    /// Sequence number the range delete was committed at.
    pub seqno: SeqNo,
    /// The delete-key interval it erases.
    pub range: DeleteKeyRange,
}

impl RangeTombstone {
    /// True if this tombstone erases an entry with the given seqno/dkey.
    #[inline]
    pub fn shadows(&self, entry_seqno: SeqNo, dkey: u64) -> bool {
        entry_seqno < self.seqno && self.range.contains(dkey)
    }

    /// True if this tombstone erases *every* entry in a region whose
    /// delete keys span `[dkey_lo, dkey_hi]` and whose largest seqno is
    /// `max_seqno` — the page-drop test KiWi uses.
    #[inline]
    pub fn covers_region(&self, dkey_lo: u64, dkey_hi: u64, max_seqno: SeqNo) -> bool {
        max_seqno < self.seqno && self.range.covers(dkey_lo, dkey_hi)
    }
}

/// An inclusive range over the secondary delete-key domain.
///
/// `DeleteKeyRange { lo: 0, hi: u64::MAX }` covers every entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeleteKeyRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl DeleteKeyRange {
    /// Construct, normalizing an inverted pair into an empty range.
    pub fn new(lo: u64, hi: u64) -> DeleteKeyRange {
        DeleteKeyRange { lo, hi }
    }

    /// The full domain.
    pub fn all() -> DeleteKeyRange {
        DeleteKeyRange {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// True if the range contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, dkey: u64) -> bool {
        self.lo <= dkey && dkey <= self.hi
    }

    /// True if `self` fully covers `[lo, hi]`.
    #[inline]
    pub fn covers(&self, lo: u64, hi: u64) -> bool {
        !self.is_empty() && self.lo <= lo && hi <= self.hi
    }

    /// True if `self` intersects `[lo, hi]`.
    #[inline]
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        !self.is_empty() && self.lo <= hi && lo <= self.hi
    }

    /// Encode as 16 little-endian bytes (for WAL payloads).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.lo.to_le_bytes());
        out[8..].copy_from_slice(&self.hi.to_le_bytes());
        out
    }

    /// Decode from the 16-byte encoding.
    pub fn decode(src: &[u8]) -> Option<DeleteKeyRange> {
        if src.len() != 16 {
            return None;
        }
        Some(DeleteKeyRange {
            lo: u64::from_le_bytes(src[..8].try_into().unwrap()),
            hi: u64::from_le_bytes(src[8..].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_tombstone_constructors() {
        let p = Entry::put(&b"k"[..], &b"v"[..], 5, 100);
        assert_eq!(p.kind, ValueKind::Put);
        assert!(!p.is_tombstone());
        assert_eq!(p.dkey, 100);

        let t = Entry::tombstone(&b"k"[..], 6, 101);
        assert!(t.is_tombstone());
        assert!(t.value.is_empty());
    }

    #[test]
    fn internal_key_reflects_entry() {
        let e = Entry::put(&b"abc"[..], &b"v"[..], 9, 0);
        let ik = e.internal_key();
        assert_eq!(ik.user_key(), b"abc");
        assert_eq!(ik.seqno(), 9);
        assert_eq!(ik.kind(), Some(ValueKind::Put));
    }

    #[test]
    fn encoded_size_counts_key_value_and_trailers() {
        let e = Entry::put(&b"ab"[..], &b"xyz"[..], 1, 0);
        assert_eq!(e.encoded_size(), 2 + 3 + 16);
    }

    #[test]
    fn range_contains_and_bounds_are_inclusive() {
        let r = DeleteKeyRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = DeleteKeyRange::new(20, 10);
        assert!(r.is_empty());
        assert!(!r.contains(15));
        assert!(!r.overlaps(0, u64::MAX));
        assert!(!r.covers(15, 15));
    }

    #[test]
    fn covers_and_overlaps() {
        let r = DeleteKeyRange::new(10, 20);
        assert!(r.covers(10, 20));
        assert!(r.covers(12, 18));
        assert!(!r.covers(9, 20));
        assert!(!r.covers(10, 21));
        assert!(r.overlaps(0, 10));
        assert!(r.overlaps(20, 30));
        assert!(r.overlaps(15, 16));
        assert!(!r.overlaps(0, 9));
        assert!(!r.overlaps(21, 30));
    }

    #[test]
    fn full_domain_range() {
        let r = DeleteKeyRange::all();
        assert!(r.contains(0));
        assert!(r.contains(u64::MAX));
        assert!(r.covers(0, u64::MAX));
    }

    #[test]
    fn range_tombstone_shadowing() {
        let rt = RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::new(10, 20),
        };
        assert!(rt.shadows(99, 15));
        assert!(!rt.shadows(100, 15), "equal seqno is not shadowed");
        assert!(!rt.shadows(101, 15), "newer entries are not shadowed");
        assert!(!rt.shadows(99, 9), "dkey outside range is not shadowed");
        assert!(rt.shadows(0, 10) && rt.shadows(0, 20), "bounds inclusive");
    }

    #[test]
    fn range_tombstone_region_cover() {
        let rt = RangeTombstone {
            seqno: 100,
            range: DeleteKeyRange::new(10, 20),
        };
        assert!(rt.covers_region(12, 18, 99));
        assert!(rt.covers_region(10, 20, 0));
        assert!(
            !rt.covers_region(12, 18, 100),
            "region with equal max seqno survives"
        );
        assert!(
            !rt.covers_region(9, 18, 50),
            "region poking below lo survives"
        );
        assert!(
            !rt.covers_region(12, 21, 50),
            "region poking above hi survives"
        );
    }

    #[test]
    fn range_encoding_round_trip() {
        for r in [
            DeleteKeyRange::new(0, 0),
            DeleteKeyRange::new(1, u64::MAX),
            DeleteKeyRange::new(0xdead, 0xbeef_0000),
        ] {
            assert_eq!(DeleteKeyRange::decode(&r.encode()), Some(r));
        }
        assert_eq!(DeleteKeyRange::decode(&[0u8; 15]), None);
        assert_eq!(DeleteKeyRange::decode(&[0u8; 17]), None);
    }
}
