//! User and internal keys.
//!
//! A *user key* is an arbitrary byte string chosen by the application
//! (the LSM *sort key*). An *internal key* is a user key plus an 8-byte
//! trailer packing the mutation's sequence number and kind:
//!
//! ```text
//! +----------------- user key ----------------+--- tag (8B LE) ---+
//! | arbitrary bytes                            | seqno<<8 | kind  |
//! +--------------------------------------------+-------------------+
//! ```
//!
//! Internal keys order by user key ascending, then by tag **descending**
//! — so within one user key the newest mutation sorts first. All SSTable
//! blocks, fence pointers, and merge iterators operate on this order.

use std::cmp::Ordering;
use std::fmt;

use bytes::Bytes;

use crate::seq::{pack_tag, unpack_tag, SeqNo, ValueKind, SEEK_KIND};

/// An application-visible key (the LSM sort key). Cheaply cloneable.
pub type UserKey = Bytes;

/// Length in bytes of the internal-key trailer.
pub const TAG_LEN: usize = 8;

/// An owned internal key: user key + packed `(seqno, kind)` trailer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    encoded: Bytes,
}

impl InternalKey {
    /// Build an internal key from parts.
    pub fn new(user_key: &[u8], seq: SeqNo, kind: ValueKind) -> InternalKey {
        Self::with_kind_byte(user_key, seq, kind as u8)
    }

    /// Build a *seek* key: positions at the first entry for `user_key`
    /// visible at snapshot `seq` (i.e. with seqno ≤ `seq`).
    pub fn for_seek(user_key: &[u8], seq: SeqNo) -> InternalKey {
        Self::with_kind_byte(user_key, seq, SEEK_KIND)
    }

    fn with_kind_byte(user_key: &[u8], seq: SeqNo, kind: u8) -> InternalKey {
        let mut buf = Vec::with_capacity(user_key.len() + TAG_LEN);
        buf.extend_from_slice(user_key);
        buf.extend_from_slice(&pack_tag(seq, kind).to_le_bytes());
        InternalKey {
            encoded: Bytes::from(buf),
        }
    }

    /// Reconstruct from an encoded byte string (e.g. read from a block).
    ///
    /// Returns `None` if `encoded` is shorter than the trailer.
    pub fn decode(encoded: Bytes) -> Option<InternalKey> {
        if encoded.len() < TAG_LEN {
            return None;
        }
        Some(InternalKey { encoded })
    }

    /// The full encoded representation.
    #[inline]
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// Borrow as an [`InternalKeyRef`].
    #[inline]
    pub fn as_ref(&self) -> InternalKeyRef<'_> {
        InternalKeyRef {
            encoded: &self.encoded,
        }
    }

    /// The user-key prefix.
    #[inline]
    pub fn user_key(&self) -> &[u8] {
        &self.encoded[..self.encoded.len() - TAG_LEN]
    }

    /// The user-key prefix as a cheap `Bytes` slice of this key.
    #[inline]
    pub fn user_key_bytes(&self) -> Bytes {
        self.encoded.slice(..self.encoded.len() - TAG_LEN)
    }

    /// The sequence number in the trailer.
    #[inline]
    pub fn seqno(&self) -> SeqNo {
        self.as_ref().seqno()
    }

    /// The kind byte in the trailer (may be [`SEEK_KIND`]).
    #[inline]
    pub fn kind_byte(&self) -> u8 {
        self.as_ref().kind_byte()
    }

    /// The decoded [`ValueKind`], if the kind byte is a real kind.
    #[inline]
    pub fn kind(&self) -> Option<ValueKind> {
        ValueKind::from_u8(self.kind_byte())
    }
}

impl fmt::Debug for InternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InternalKey({:?}@{}:{:#x})",
            String::from_utf8_lossy(self.user_key()),
            self.seqno(),
            self.kind_byte()
        )
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_internal(self.encoded(), other.encoded())
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A borrowed view of an encoded internal key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct InternalKeyRef<'a> {
    encoded: &'a [u8],
}

impl<'a> InternalKeyRef<'a> {
    /// Wrap an encoded internal key. Returns `None` if too short to hold
    /// the trailer.
    #[inline]
    pub fn decode(encoded: &'a [u8]) -> Option<InternalKeyRef<'a>> {
        if encoded.len() < TAG_LEN {
            return None;
        }
        Some(InternalKeyRef { encoded })
    }

    /// The full encoded bytes.
    #[inline]
    pub fn encoded(&self) -> &'a [u8] {
        self.encoded
    }

    /// The user-key prefix.
    #[inline]
    pub fn user_key(&self) -> &'a [u8] {
        &self.encoded[..self.encoded.len() - TAG_LEN]
    }

    /// The packed trailer.
    #[inline]
    pub fn tag(&self) -> u64 {
        let off = self.encoded.len() - TAG_LEN;
        u64::from_le_bytes(self.encoded[off..].try_into().unwrap())
    }

    /// The sequence number.
    #[inline]
    pub fn seqno(&self) -> SeqNo {
        unpack_tag(self.tag()).0
    }

    /// The kind byte.
    #[inline]
    pub fn kind_byte(&self) -> u8 {
        unpack_tag(self.tag()).1
    }

    /// Convert to an owned [`InternalKey`].
    pub fn to_owned(&self) -> InternalKey {
        InternalKey {
            encoded: Bytes::copy_from_slice(self.encoded),
        }
    }
}

impl fmt::Debug for InternalKeyRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InternalKeyRef({:?}@{}:{:#x})",
            String::from_utf8_lossy(self.user_key()),
            self.seqno(),
            self.kind_byte()
        )
    }
}

/// Compare two *encoded* internal keys: user key ascending, then tag
/// descending (newer mutations first).
///
/// Both inputs must be valid encodings (at least [`TAG_LEN`] bytes); in
/// release builds a short input compares by raw bytes, in debug builds it
/// asserts.
#[inline]
pub fn compare_internal(a: &[u8], b: &[u8]) -> Ordering {
    debug_assert!(
        a.len() >= TAG_LEN && b.len() >= TAG_LEN,
        "short internal key"
    );
    if a.len() < TAG_LEN || b.len() < TAG_LEN {
        return a.cmp(b);
    }
    let (ua, ta) = a.split_at(a.len() - TAG_LEN);
    let (ub, tb) = b.split_at(b.len() - TAG_LEN);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = u64::from_le_bytes(ta.try_into().unwrap());
            let tb = u64::from_le_bytes(tb.try_into().unwrap());
            tb.cmp(&ta) // descending: larger tag (newer) sorts first
        }
        ord => ord,
    }
}

/// Compare user keys (plain byte order); named for symmetry and to keep
/// call sites explicit about which domain they compare in.
#[inline]
pub fn compare_user(a: &[u8], b: &[u8]) -> Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ik(k: &str, seq: SeqNo, kind: ValueKind) -> InternalKey {
        InternalKey::new(k.as_bytes(), seq, kind)
    }

    #[test]
    fn parts_round_trip() {
        let key = ik("apple", 42, ValueKind::Put);
        assert_eq!(key.user_key(), b"apple");
        assert_eq!(key.seqno(), 42);
        assert_eq!(key.kind(), Some(ValueKind::Put));
        assert_eq!(key.user_key_bytes(), Bytes::from_static(b"apple"));
    }

    #[test]
    fn empty_user_key_is_valid() {
        let key = ik("", 7, ValueKind::Tombstone);
        assert_eq!(key.user_key(), b"");
        assert_eq!(key.seqno(), 7);
        assert_eq!(key.encoded().len(), TAG_LEN);
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(InternalKey::decode(Bytes::from_static(b"1234567")).is_none());
        assert!(InternalKeyRef::decode(b"1234567").is_none());
        assert!(InternalKeyRef::decode(&[]).is_none());
    }

    #[test]
    fn ordering_user_key_ascending() {
        assert!(ik("a", 5, ValueKind::Put) < ik("b", 1, ValueKind::Put));
        assert!(ik("ab", 1, ValueKind::Put) < ik("b", 100, ValueKind::Put));
    }

    #[test]
    fn ordering_same_user_key_newer_first() {
        let newer = ik("k", 10, ValueKind::Tombstone);
        let older = ik("k", 9, ValueKind::Put);
        assert!(newer < older, "newer seqno must sort first");
    }

    #[test]
    fn seek_key_positions_before_equal_seqno_entries() {
        let seek = InternalKey::for_seek(b"k", 10);
        let put_at_10 = ik("k", 10, ValueKind::Put);
        let put_at_11 = ik("k", 11, ValueKind::Put);
        // Seek key sorts at-or-before seqno-10 entries ...
        assert!(seek <= put_at_10);
        // ... but after seqno-11 entries (which are invisible to snapshot 10).
        assert!(put_at_11 < seek);
    }

    #[test]
    fn prefix_user_keys_order_correctly() {
        // "ab" < "abc" as user keys; the tag bytes must not leak into the
        // user-key comparison.
        let a = ik("ab", 1, ValueKind::Put);
        let b = ik("abc", 1_000_000, ValueKind::Put);
        assert!(a < b);
    }

    #[test]
    fn ref_and_owned_agree() {
        let a = ik("same", 3, ValueKind::Put);
        let r = InternalKeyRef::decode(a.encoded()).unwrap();
        assert_eq!(r.user_key(), a.user_key());
        assert_eq!(r.seqno(), a.seqno());
        assert_eq!(r.to_owned(), a);
    }

    #[test]
    fn compare_internal_matches_ord_impl() {
        let keys = [
            ik("a", 1, ValueKind::Put),
            ik("a", 2, ValueKind::Tombstone),
            ik("b", 1, ValueKind::Put),
            ik("", 0, ValueKind::Put),
        ];
        for x in &keys {
            for y in &keys {
                assert_eq!(x.cmp(y), compare_internal(x.encoded(), y.encoded()));
            }
        }
    }

    #[test]
    fn sorting_a_history_yields_newest_first_per_key() {
        let mut v = [
            ik("k", 1, ValueKind::Put),
            ik("k", 3, ValueKind::Tombstone),
            ik("j", 9, ValueKind::Put),
            ik("k", 2, ValueKind::Put),
        ];
        v.sort();
        let rendered: Vec<(Vec<u8>, SeqNo)> = v
            .iter()
            .map(|k| (k.user_key().to_vec(), k.seqno()))
            .collect();
        assert_eq!(
            rendered,
            vec![
                (b"j".to_vec(), 9),
                (b"k".to_vec(), 3),
                (b"k".to_vec(), 2),
                (b"k".to_vec(), 1),
            ]
        );
    }
}
