//! Clock abstraction for delete-persistence accounting.
//!
//! FADE's contract — "every tombstone is persisted within `D_th` of its
//! insertion" — is defined against a clock. The engine takes the clock as
//! a trait object so that:
//!
//! * tests and benchmarks use [`LogicalClock`] (one tick per operation,
//!   fully deterministic — persistence latency becomes a count of
//!   operations, matching how the paper's knobs are expressed), and
//! * deployments use [`SystemClock`] (milliseconds since engine start).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A point in clock time. The unit depends on the clock implementation
/// (operations for [`LogicalClock`], milliseconds for [`SystemClock`]).
pub type Tick = u64;

/// Source of ticks for tombstone aging.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current tick. Must be monotonically non-decreasing.
    fn now(&self) -> Tick;

    /// Downcast hook: `Some(self)` when the implementation is a
    /// [`LogicalClock`] the engine may auto-advance. Custom clocks keep
    /// the default `None` and advance themselves.
    fn as_logical(&self) -> Option<&LogicalClock> {
        None
    }
}

/// A deterministic clock advanced explicitly by the embedding code
/// (the engine advances it once per write operation by default).
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A clock starting at tick 0.
    pub fn new() -> LogicalClock {
        LogicalClock {
            ticks: AtomicU64::new(0),
        }
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: Tick) -> LogicalClock {
        LogicalClock {
            ticks: AtomicU64::new(start),
        }
    }

    /// Advance by `n` ticks, returning the new value.
    pub fn advance(&self, n: u64) -> Tick {
        self.ticks.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Set the clock forward to `t`. Moving backwards is a no-op (the
    /// clock stays monotone).
    pub fn advance_to(&self, t: Tick) {
        self.ticks.fetch_max(t, Ordering::Relaxed);
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> Tick {
        self.ticks.load(Ordering::Relaxed)
    }

    fn as_logical(&self) -> Option<&LogicalClock> {
        Some(self)
    }
}

/// Wall-clock time in milliseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose tick 0 is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Tick {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn logical_clock_advances() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(1), 1);
        assert_eq!(c.advance(41), 42);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn logical_clock_advance_to_is_monotone() {
        let c = LogicalClock::starting_at(100);
        c.advance_to(50); // must not go backwards
        assert_eq!(c.now(), 100);
        c.advance_to(200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn logical_clock_is_shareable_across_threads() {
        let c = Arc::new(LogicalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_trait_object_usable() {
        let c: Arc<dyn Clock> = Arc::new(LogicalClock::starting_at(7));
        assert_eq!(c.now(), 7);
    }
}
