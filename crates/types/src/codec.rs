//! Binary encoding primitives: little-endian fixed integers, LEB128
//! varints, and length-prefixed slices.
//!
//! These are the building blocks of every on-disk format in the engine
//! (WAL records, SSTable blocks, the manifest). All decoders are
//! *total*: they never panic on malformed input, returning `None`
//! instead, so corruption surfaces as a recoverable error at the caller.

use crate::error::{Error, Result};

/// Append a `u32` in little-endian order.
#[inline]
pub fn put_u32_le(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
#[inline]
pub fn put_u64_le(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a little-endian `u32` from the front of `src`.
#[inline]
pub fn get_u32_le(src: &[u8]) -> Option<(u32, &[u8])> {
    let bytes = src.get(..4)?;
    Some((u32::from_le_bytes(bytes.try_into().unwrap()), &src[4..]))
}

/// Decode a little-endian `u64` from the front of `src`.
#[inline]
pub fn get_u64_le(src: &[u8]) -> Option<(u64, &[u8])> {
    let bytes = src.get(..8)?;
    Some((u64::from_le_bytes(bytes.try_into().unwrap()), &src[8..]))
}

/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT64_LEN: usize = 10;

/// Append a LEB128-encoded `u64`.
#[inline]
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            dst.push(byte);
            return;
        }
        dst.push(byte | 0x80);
    }
}

/// Append a LEB128-encoded `u32`.
#[inline]
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, u64::from(v));
}

/// Decode a LEB128 `u64` from the front of `src`.
///
/// Returns `None` on truncation or on encodings longer than
/// [`MAX_VARINT64_LEN`] bytes (which cannot arise from `put_varint64`).
#[inline]
pub fn get_varint64(src: &[u8]) -> Option<(u64, &[u8])> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(MAX_VARINT64_LEN) {
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute a single bit.
        if i == MAX_VARINT64_LEN - 1 && byte > 1 {
            return None;
        }
        result |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((result, &src[i + 1..]));
        }
    }
    None
}

/// Decode a LEB128 `u32` from the front of `src`.
#[inline]
pub fn get_varint32(src: &[u8]) -> Option<(u32, &[u8])> {
    let (v, rest) = get_varint64(src)?;
    if v > u64::from(u32::MAX) {
        return None;
    }
    Some((v as u32, rest))
}

/// Number of bytes `put_varint64` will emit for `v`.
#[inline]
pub fn varint64_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

/// Append a varint length prefix followed by the slice bytes.
#[inline]
pub fn put_length_prefixed(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint64(dst, slice.len() as u64);
    dst.extend_from_slice(slice);
}

/// Decode a length-prefixed slice from the front of `src`.
#[inline]
pub fn get_length_prefixed(src: &[u8]) -> Option<(&[u8], &[u8])> {
    let (len, rest) = get_varint64(src)?;
    let len = usize::try_from(len).ok()?;
    if rest.len() < len {
        return None;
    }
    Some((&rest[..len], &rest[len..]))
}

/// `get_varint64` lifted into a [`Result`], for decode paths that report
/// corruption with context.
#[inline]
pub fn require_varint64<'a>(src: &'a [u8], what: &str) -> Result<(u64, &'a [u8])> {
    get_varint64(src).ok_or_else(|| Error::corruption(format!("truncated varint in {what}")))
}

/// `get_length_prefixed` lifted into a [`Result`].
#[inline]
pub fn require_length_prefixed<'a>(src: &'a [u8], what: &str) -> Result<(&'a [u8], &'a [u8])> {
    get_length_prefixed(src)
        .ok_or_else(|| Error::corruption(format!("truncated length-prefixed slice in {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ints_round_trip() {
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xdead_beef);
        put_u64_le(&mut buf, 0x0123_4567_89ab_cdef);
        let (a, rest) = get_u32_le(&buf).unwrap();
        let (b, rest) = get_u64_le(rest).unwrap();
        assert_eq!(a, 0xdead_beef);
        assert_eq!(b, 0x0123_4567_89ab_cdef);
        assert!(rest.is_empty());
    }

    #[test]
    fn fixed_ints_reject_truncation() {
        assert!(get_u32_le(&[1, 2, 3]).is_none());
        assert!(get_u64_le(&[1, 2, 3, 4, 5, 6, 7]).is_none());
    }

    #[test]
    fn varint_round_trip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint64_len(v), "len mismatch for {v}");
            let (decoded, rest) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(get_varint64(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        // Eleven continuation bytes can never be valid.
        let bad = [0x80u8; 11];
        assert!(get_varint64(&bad).is_none());
        // A 10-byte encoding whose final byte has more than the top bit set
        // would overflow u64.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        assert!(get_varint64(&overflow).is_none());
    }

    #[test]
    fn varint32_rejects_out_of_range() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }

    #[test]
    fn length_prefixed_round_trip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        put_length_prefixed(&mut buf, &[0u8; 300]);
        let (a, rest) = get_length_prefixed(&buf).unwrap();
        let (b, rest) = get_length_prefixed(rest).unwrap();
        let (c, rest) = get_length_prefixed(rest).unwrap();
        assert_eq!(a, b"hello");
        assert_eq!(b, b"");
        assert_eq!(c.len(), 300);
        assert!(rest.is_empty());
    }

    #[test]
    fn length_prefixed_rejects_short_payload() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 10);
        buf.extend_from_slice(b"short");
        assert!(get_length_prefixed(&buf).is_none());
    }

    #[test]
    fn require_helpers_surface_context() {
        let err = require_varint64(&[0x80], "manifest header").unwrap_err();
        assert!(err.to_string().contains("manifest header"));
        let err = require_length_prefixed(&[5, b'a'], "wal record").unwrap_err();
        assert!(err.to_string().contains("wal record"));
    }

    #[test]
    fn varint64_len_matches_encoding_for_all_bit_widths() {
        for bits in 0..64 {
            let v = 1u64 << bits;
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint64_len(v), "bits={bits}");
        }
    }
}
