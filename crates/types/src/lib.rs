//! Core types shared by every layer of the Acheron LSM engine.
//!
//! This crate is dependency-light on purpose: it defines the vocabulary of
//! the engine — user and internal keys, sequence numbers, value kinds
//! (puts, point tombstones, secondary-range tombstones), the secondary
//! *delete key* attribute that Acheron/Lethe range-deletes operate on,
//! binary codecs, CRC32C checksums, and the clock abstraction used to
//! measure delete-persistence latency deterministically.
//!
//! Everything above (memtable, WAL, SSTables, the engine) speaks in these
//! types; nothing here performs I/O.

#![warn(missing_docs)]

pub mod checksum;
pub mod clock;
pub mod codec;
pub mod entry;
pub mod error;
pub mod key;
pub mod krange;
pub mod seq;
pub mod vptr;

pub use clock::{Clock, LogicalClock, SystemClock, Tick};
pub use entry::{DeleteKeyRange, Entry, RangeTombstone, DELETE_KEY_NONE};
pub use error::{Error, Result};
pub use key::{InternalKey, InternalKeyRef, UserKey};
pub use krange::{FragmentedRangeTombstones, KeyRangeTombstone, RangeFragment};
pub use seq::{SeqNo, ValueKind, MAX_SEQNO};
pub use vptr::{ValuePointer, VALUE_POINTER_SIZE};
