//! The fixed-size value-log pointer stored in the tree in place of a
//! separated value.
//!
//! When key-value separation is enabled, values above the configured
//! threshold are appended to a segmented value log at commit time and
//! the tree stores a [`ValuePointer`] (tagged [`ValueKind::ValuePointer`])
//! instead of the value bytes. The pointer names the whole CRC-framed
//! vlog record — segment id, byte offset, and framed length — so a
//! dereference is one positioned read plus a checksum, and dead-byte
//! accounting can charge the exact frame size when the pointer is
//! dropped.
//!
//! [`ValueKind::ValuePointer`]: crate::seq::ValueKind::ValuePointer

/// Size of the wire encoding: segment (8) + offset (8) + length (4).
pub const VALUE_POINTER_SIZE: usize = 20;

/// A reference to one framed record in the value log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValuePointer {
    /// Value-log segment id (the `{seq:06}` in `vlog-{seq:06}.vlg`).
    pub segment: u64,
    /// Byte offset of the frame within the segment.
    pub offset: u64,
    /// Length of the whole frame (header + key + value), in bytes.
    pub len: u32,
}

impl ValuePointer {
    /// Encode as 20 little-endian bytes.
    pub fn encode(&self) -> [u8; VALUE_POINTER_SIZE] {
        let mut out = [0u8; VALUE_POINTER_SIZE];
        out[..8].copy_from_slice(&self.segment.to_le_bytes());
        out[8..16].copy_from_slice(&self.offset.to_le_bytes());
        out[16..].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Decode from the exact 20-byte encoding; `None` on any other
    /// length (a pointer payload is fixed-size by construction, so a
    /// mismatch is corruption, not framing slack).
    pub fn decode(src: &[u8]) -> Option<ValuePointer> {
        if src.len() != VALUE_POINTER_SIZE {
            return None;
        }
        Some(ValuePointer {
            segment: u64::from_le_bytes(src[..8].try_into().unwrap()),
            offset: u64::from_le_bytes(src[8..16].try_into().unwrap()),
            len: u32::from_le_bytes(src[16..].try_into().unwrap()),
        })
    }

    /// End offset of the frame within its segment (`offset + len`).
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + u64::from(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for p in [
            ValuePointer {
                segment: 0,
                offset: 0,
                len: 0,
            },
            ValuePointer {
                segment: 7,
                offset: 4096,
                len: 1031,
            },
            ValuePointer {
                segment: u64::MAX,
                offset: u64::MAX,
                len: u32::MAX,
            },
        ] {
            assert_eq!(ValuePointer::decode(&p.encode()), Some(p));
        }
    }

    #[test]
    fn decode_rejects_wrong_sizes() {
        assert_eq!(ValuePointer::decode(&[0u8; 19]), None);
        assert_eq!(ValuePointer::decode(&[0u8; 21]), None);
        assert_eq!(ValuePointer::decode(&[]), None);
    }

    #[test]
    fn end_offset() {
        let p = ValuePointer {
            segment: 1,
            offset: 100,
            len: 32,
        };
        assert_eq!(p.end(), 132);
    }
}
