//! CRC32C (Castagnoli) checksums, implemented in software with a
//! slicing-by-8 table, plus the "masked" form used in on-disk formats.
//!
//! Every persistent artifact in the engine (WAL records, SSTable blocks,
//! manifest records) carries a CRC32C so that torn writes and bit rot are
//! detected on read rather than silently corrupting query results.
//!
//! The stored value is *masked* (rotated and offset, the same scheme
//! LevelDB/RocksDB use) so that checksumming a buffer that itself embeds
//! CRCs does not degenerate.

/// The CRC32C polynomial, reversed (0x1EDC6F41 bit-reflected).
const POLY: u32 = 0x82F6_3B78;

/// Delta added when masking a CRC before storing it.
const MASK_DELTA: u32 = 0xa282_ead8;

/// 8 tables of 256 entries for slicing-by-8.
struct Tables([[u32; 256]; 8]);

fn build_tables() -> Tables {
    let mut t = [[0u32; 256]; 8];
    for (i, slot) in t[0].iter_mut().enumerate() {
        let mut crc = i as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
        *slot = crc;
    }
    for i in 0..256 {
        let mut crc = t[0][i];
        for k in 1..8 {
            crc = t[0][(crc & 0xff) as usize] ^ (crc >> 8);
            t[k][i] = crc;
        }
    }
    Tables(t)
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(build_tables)
}

/// Compute the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extend a CRC computed over prior bytes with `data`.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let t = &tables().0;
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Mask a CRC for storage. It is problematic to compute the CRC of a
/// string that contains embedded CRCs, so stored CRCs are masked.
#[inline]
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Invert [`mask`].
#[inline]
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113f_db5c);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_equals_one_shot() {
        let data = b"hello world, this is a checksum test vector of odd length!";
        for split in 0..data.len() {
            let a = crc32c(data);
            let b = extend(crc32c(&data[..split]), &data[split..]);
            assert_eq!(a, b, "split={split}");
        }
    }

    #[test]
    fn mask_round_trip() {
        for crc in [0u32, 1, 0xdead_beef, u32::MAX, crc32c(b"foo")] {
            assert_eq!(unmask(mask(crc)), crc);
            // Masking must change the value (that is its whole point).
            assert_ne!(mask(crc), crc);
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
        assert_eq!(extend(1234, &[]), 1234);
    }
}
