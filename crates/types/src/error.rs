//! The error type shared across all Acheron crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Unified error type for the engine.
///
/// The variants deliberately mirror the failure classes a storage engine
/// must distinguish: environmental I/O failures, on-disk corruption
/// (checksum/format violations), caller mistakes, and lifecycle errors.
#[derive(Debug)]
pub enum Error {
    /// An operating-system I/O error, tagged with the operation context.
    Io {
        /// Human-readable description of what the engine was doing.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Data read back from storage failed validation (bad checksum, short
    /// read, malformed encoding, ordering violation).
    Corruption(String),
    /// The caller violated an API precondition.
    InvalidArgument(String),
    /// The database is shut down or the resource was already closed.
    Closed(String),
    /// The engine (or a service in front of it) is overloaded and shed
    /// this request instead of queueing it; the caller should back off
    /// and retry. Carried over the wire as the `Busy` status.
    Busy(String),
    /// An internal invariant was violated; indicates a bug in the engine.
    Internal(String),
}

impl Error {
    /// Wrap an [`std::io::Error`] with a context string.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Construct a corruption error.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Construct an invalid-argument error.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Construct a busy/overload error.
    pub fn busy(msg: impl Into<String>) -> Self {
        Error::Busy(msg.into())
    }

    /// True if this error indicates on-disk corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// True if this error is a transient overload signal ([`Error::Busy`]).
    pub fn is_busy(&self) -> bool {
        matches!(self, Error::Busy(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "io error during {context}: {source}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Closed(m) => write!(f, "closed: {m}"),
            Error::Busy(m) => write!(f, "busy: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            context: "unspecified".to_string(),
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::io("flush", std::io::Error::other("disk full"));
        let s = e.to_string();
        assert!(s.contains("flush"), "{s}");
        assert!(s.contains("disk full"), "{s}");
    }

    #[test]
    fn corruption_classification() {
        assert!(Error::corruption("bad crc").is_corruption());
        assert!(!Error::invalid_argument("x").is_corruption());
    }

    #[test]
    fn io_error_round_trip_via_from() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        match e {
            Error::Io { source, .. } => assert_eq!(source.kind(), std::io::ErrorKind::NotFound),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error as _;
        let e = Error::io("read", std::io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(Error::corruption("y").source().is_none());
    }
}
