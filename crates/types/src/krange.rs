//! Sort-key range tombstones.
//!
//! A [`KeyRangeTombstone`] deletes every user key in an inclusive range
//! `[start, end]` of the *sort key* domain. Unlike the secondary-key
//! [`RangeTombstone`](crate::entry::RangeTombstone) (which lives in the
//! manifest), sort-key range tombstones travel with the data path: they
//! are logged to the WAL, buffered alongside the memtable, flushed into
//! an SSTable's stats meta block, and purged by bottommost compactions.
//!
//! Lookups and scans never walk the deleted range. Instead the active
//! tombstones are *fragmented* into a [`FragmentedRangeTombstones`]
//! index — disjoint half-open intervals, each carrying the sequence
//! numbers that cover it — and shadow checks are a binary search over
//! fragment start keys. This is the fragment-based design from
//! "Don't Forget Range Delete!": correctness without O(range) scans.

use bytes::Bytes;

use crate::clock::Tick;
use crate::codec::{put_length_prefixed, put_varint64, require_length_prefixed, require_varint64};
use crate::error::Result;
use crate::key::UserKey;
use crate::seq::SeqNo;

/// A range tombstone over the sort-key domain: logically deletes every
/// older version of every user key in `[start, end]` (inclusive bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRangeTombstone {
    /// First user key covered (inclusive).
    pub start: UserKey,
    /// Last user key covered (inclusive).
    pub end: UserKey,
    /// Sequence number of the delete; entries with a seqno strictly
    /// below this are shadowed.
    pub seqno: SeqNo,
    /// Logical tick at which the delete was issued — the FADE deadline
    /// clock starts here, exactly as for point tombstones.
    pub dkey: Tick,
}

impl KeyRangeTombstone {
    /// True if this tombstone hides an entry with `entry_seqno` at
    /// `user_key`: the key falls inside the range and the entry is older
    /// than the delete.
    #[inline]
    pub fn shadows(&self, entry_seqno: SeqNo, user_key: &[u8]) -> bool {
        entry_seqno < self.seqno && self.contains(user_key)
    }

    /// True if `user_key` lies within `[start, end]`.
    #[inline]
    pub fn contains(&self, user_key: &[u8]) -> bool {
        user_key >= self.start.as_ref() && user_key <= self.end.as_ref()
    }

    /// Serialize: length-prefixed start and end, then seqno and dkey
    /// varints. Used by the WAL, the SSTable stats block, and the wire.
    pub fn encode(&self, dst: &mut Vec<u8>) {
        put_length_prefixed(dst, &self.start);
        put_length_prefixed(dst, &self.end);
        put_varint64(dst, self.seqno);
        put_varint64(dst, self.dkey);
    }

    /// Decode one tombstone from the front of `src`, returning the
    /// remainder. Total: malformed input yields a corruption error.
    pub fn decode<'a>(src: &'a [u8], what: &str) -> Result<(KeyRangeTombstone, &'a [u8])> {
        let (start, rest) = require_length_prefixed(src, what)?;
        let (end, rest) = require_length_prefixed(rest, what)?;
        let (seqno, rest) = require_varint64(rest, what)?;
        let (dkey, rest) = require_varint64(rest, what)?;
        Ok((
            KeyRangeTombstone {
                start: Bytes::copy_from_slice(start),
                end: Bytes::copy_from_slice(end),
                seqno,
                dkey,
            },
            rest,
        ))
    }
}

/// Smallest user key strictly greater than `k` in byte order: `k ++ 0x00`.
/// Converts an inclusive upper bound into an exclusive one.
fn key_successor(k: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(k.len() + 1);
    v.extend_from_slice(k);
    v.push(0);
    Bytes::from(v)
}

/// One fragment of the flattened tombstone index: a half-open key
/// interval `[start, end_ex)` and the seqnos of every tombstone covering
/// it, sorted descending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeFragment {
    /// Inclusive fragment start.
    pub start: Bytes,
    /// Exclusive fragment end.
    pub end_ex: Bytes,
    /// Covering tombstone seqnos, descending (newest first).
    pub seqnos: Vec<SeqNo>,
}

/// A search index over a set of [`KeyRangeTombstone`]s: the input ranges
/// are split at every boundary into disjoint, sorted fragments so that a
/// point query is a single binary search. Rebuilt wholesale on mutation;
/// range deletes are rare relative to reads, so build cost (quadratic in
/// the number of live tombstones) is irrelevant while query cost is not.
#[derive(Debug, Clone, Default)]
pub struct FragmentedRangeTombstones {
    fragments: Vec<RangeFragment>,
}

impl FragmentedRangeTombstones {
    /// Build the fragment index from a set of tombstones.
    pub fn build(tombstones: &[KeyRangeTombstone]) -> FragmentedRangeTombstones {
        if tombstones.is_empty() {
            return FragmentedRangeTombstones::default();
        }
        // Collect every interval boundary: starts, plus successors of the
        // inclusive ends. Between consecutive boundaries the covering set
        // is constant.
        let mut bounds: Vec<Bytes> = Vec::with_capacity(tombstones.len() * 2);
        for t in tombstones {
            bounds.push(t.start.clone());
            bounds.push(key_successor(&t.end));
        }
        bounds.sort();
        bounds.dedup();

        let mut fragments = Vec::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (&w[0], &w[1]);
            let mut seqnos: Vec<SeqNo> = tombstones
                .iter()
                .filter(|t| t.start.as_ref() <= lo.as_ref() && key_successor(&t.end) >= *hi)
                .map(|t| t.seqno)
                .collect();
            if seqnos.is_empty() {
                continue;
            }
            seqnos.sort_unstable_by(|a, b| b.cmp(a));
            seqnos.dedup();
            fragments.push(RangeFragment {
                start: lo.clone(),
                end_ex: hi.clone(),
                seqnos,
            });
        }
        FragmentedRangeTombstones { fragments }
    }

    /// True if no tombstone covers any key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The disjoint fragments, sorted by start key.
    #[inline]
    pub fn fragments(&self) -> &[RangeFragment] {
        &self.fragments
    }

    /// The newest tombstone seqno covering `user_key` that is visible at
    /// `snapshot` (seqno ≤ snapshot), or `None` if the key is uncovered.
    /// A binary search over fragment starts — never walks the range.
    pub fn max_seqno_covering(&self, user_key: &[u8], snapshot: SeqNo) -> Option<SeqNo> {
        // Find the last fragment with start <= user_key.
        let idx = self
            .fragments
            .partition_point(|f| f.start.as_ref() <= user_key);
        if idx == 0 {
            return None;
        }
        let frag = &self.fragments[idx - 1];
        if user_key >= frag.end_ex.as_ref() {
            return None;
        }
        // Seqnos are descending; take the first visible one.
        frag.seqnos.iter().copied().find(|&s| s <= snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn krt(start: &str, end: &str, seqno: SeqNo, dkey: Tick) -> KeyRangeTombstone {
        KeyRangeTombstone {
            start: Bytes::copy_from_slice(start.as_bytes()),
            end: Bytes::copy_from_slice(end.as_bytes()),
            seqno,
            dkey,
        }
    }

    #[test]
    fn shadows_requires_older_entry_inside_range() {
        let t = krt("b", "d", 10, 3);
        assert!(t.shadows(9, b"b"));
        assert!(t.shadows(0, b"d"));
        assert!(t.shadows(9, b"c"));
        assert!(!t.shadows(10, b"c"), "same seqno is not shadowed");
        assert!(!t.shadows(11, b"c"), "newer entry survives");
        assert!(!t.shadows(9, b"a"), "below range");
        assert!(!t.shadows(9, b"e"), "above range");
        assert!(!t.shadows(9, b"d\x00"), "successor of end is outside");
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = krt("alpha", "omega", 123_456, 789);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        buf.extend_from_slice(b"tail");
        let (decoded, rest) = KeyRangeTombstone::decode(&buf, "test").unwrap();
        assert_eq!(decoded, t);
        assert_eq!(rest, b"tail");
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let t = krt("k1", "k2", 7, 1);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                KeyRangeTombstone::decode(&buf[..cut], "test").is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn empty_build_covers_nothing() {
        let idx = FragmentedRangeTombstones::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.max_seqno_covering(b"anything", u64::MAX), None);
    }

    #[test]
    fn single_range_covers_inclusive_bounds() {
        let idx = FragmentedRangeTombstones::build(&[krt("b", "d", 10, 0)]);
        assert_eq!(idx.max_seqno_covering(b"a", 100), None);
        assert_eq!(idx.max_seqno_covering(b"b", 100), Some(10));
        assert_eq!(idx.max_seqno_covering(b"c", 100), Some(10));
        assert_eq!(idx.max_seqno_covering(b"d", 100), Some(10));
        assert_eq!(idx.max_seqno_covering(b"d\x00", 100), None);
        assert_eq!(idx.max_seqno_covering(b"e", 100), None);
    }

    #[test]
    fn snapshot_filters_invisible_tombstones() {
        let idx = FragmentedRangeTombstones::build(&[krt("a", "z", 50, 0)]);
        assert_eq!(idx.max_seqno_covering(b"m", 49), None);
        assert_eq!(idx.max_seqno_covering(b"m", 50), Some(50));
    }

    #[test]
    fn overlapping_ranges_fragment_correctly() {
        // [b, f]@10 and [d, j]@20 → [b,d):10, [d,f]:20 then 10, (f,j]:20.
        let idx = FragmentedRangeTombstones::build(&[krt("b", "f", 10, 0), krt("d", "j", 20, 0)]);
        assert_eq!(idx.max_seqno_covering(b"c", 100), Some(10));
        assert_eq!(idx.max_seqno_covering(b"e", 100), Some(20));
        assert_eq!(
            idx.max_seqno_covering(b"e", 15),
            Some(10),
            "older still covers"
        );
        assert_eq!(idx.max_seqno_covering(b"h", 100), Some(20));
        assert_eq!(idx.max_seqno_covering(b"h", 15), None);
        assert_eq!(idx.max_seqno_covering(b"k", 100), None);
    }

    #[test]
    fn disjoint_ranges_leave_gap_uncovered() {
        let idx = FragmentedRangeTombstones::build(&[krt("a", "b", 5, 0), krt("x", "y", 6, 0)]);
        assert_eq!(idx.max_seqno_covering(b"m", 100), None);
        assert_eq!(idx.max_seqno_covering(b"a", 100), Some(5));
        assert_eq!(idx.max_seqno_covering(b"y", 100), Some(6));
    }

    #[test]
    fn identical_ranges_dedup_seqnos() {
        let idx = FragmentedRangeTombstones::build(&[
            krt("a", "c", 5, 0),
            krt("a", "c", 9, 0),
            krt("a", "c", 9, 0),
        ]);
        assert_eq!(idx.fragments().len(), 1);
        assert_eq!(idx.fragments()[0].seqnos, vec![9, 5]);
    }

    #[test]
    fn single_key_range_works() {
        let idx = FragmentedRangeTombstones::build(&[krt("k", "k", 3, 0)]);
        assert_eq!(idx.max_seqno_covering(b"k", 100), Some(3));
        assert_eq!(idx.max_seqno_covering(b"j", 100), None);
        assert_eq!(idx.max_seqno_covering(b"k\x00", 100), None);
    }

    #[test]
    fn fragments_are_sorted_and_disjoint() {
        let idx = FragmentedRangeTombstones::build(&[
            krt("d", "j", 20, 0),
            krt("b", "f", 10, 0),
            krt("p", "q", 7, 0),
        ]);
        let frags = idx.fragments();
        for w in frags.windows(2) {
            assert!(w[0].end_ex <= w[1].start, "fragments overlap or unsorted");
        }
        for f in frags {
            assert!(f.start < f.end_ex, "empty fragment");
            assert!(!f.seqnos.is_empty());
        }
    }
}
